package wal

import (
	"bytes"
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sync"
	"testing"
	"time"
)

// collect replays the log into a slice of (typ, payload) pairs.
type rec struct {
	seq     uint64
	typ     byte
	payload []byte
}

func collect(t *testing.T, l *Log) []rec {
	t.Helper()
	var out []rec
	err := l.Replay(func(seq uint64, typ byte, payload []byte) error {
		cp := make([]byte, len(payload))
		copy(cp, payload)
		out = append(out, rec{seq, typ, cp})
		return nil
	})
	if err != nil {
		t.Fatalf("Replay: %v", err)
	}
	return out
}

func TestAppendReplayRoundTrip(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	want := make([]rec, 50)
	for i := range want {
		payload := []byte(fmt.Sprintf("record-%03d", i))
		seq, err := l.AppendSync(byte(i%3+1), payload)
		if err != nil {
			t.Fatalf("append %d: %v", i, err)
		}
		want[i] = rec{seq, byte(i%3 + 1), payload}
		if seq != uint64(i+1) {
			t.Fatalf("seq = %d, want %d", seq, i+1)
		}
	}
	got := collect(t, l)
	if len(got) != len(want) {
		t.Fatalf("replayed %d records, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i].seq != want[i].seq || got[i].typ != want[i].typ || !bytes.Equal(got[i].payload, want[i].payload) {
			t.Fatalf("record %d: got %+v want %+v", i, got[i], want[i])
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen: identical contents, appends continue the seq space.
	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	got = collect(t, l2)
	if len(got) != len(want) {
		t.Fatalf("after reopen: %d records, want %d", len(got), len(want))
	}
	seq, err := l2.AppendSync(9, []byte("after reopen"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(len(want)+1) {
		t.Fatalf("seq after reopen = %d, want %d", seq, len(want)+1)
	}
}

func TestSegmentRotationAndPrune(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("x"), 100)
	const n = 20
	for i := 0; i < n; i++ {
		if _, err := l.AppendSync(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	st := l.Stats()
	if st.Rotations == 0 || st.Segments < 2 {
		t.Fatalf("expected multiple segments, got stats %+v", st)
	}
	if got := collect(t, l); len(got) != n {
		t.Fatalf("replayed %d, want %d", len(got), n)
	}

	// Prune everything below the last few records: older segments go away,
	// replay starts at a retained seq, retained records survive.
	l.PruneTo(uint64(n - 2))
	l.pruneWG.Wait()
	st = l.Stats()
	if st.PrunedSegments == 0 {
		t.Fatalf("expected pruned segments, got stats %+v", st)
	}
	got := collect(t, l)
	if len(got) == 0 || got[len(got)-1].seq != uint64(n) {
		t.Fatalf("tail record missing after prune: %d records", len(got))
	}
	if got[0].seq > uint64(n-2) {
		t.Fatalf("pruned too much: first retained seq %d", got[0].seq)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}

	// Reopen after pruning: seq space is preserved.
	l2, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	defer l2.Close()
	seq, err := l2.AppendSync(1, []byte("post-prune"))
	if err != nil {
		t.Fatal(err)
	}
	if seq != uint64(n+1) {
		t.Fatalf("seq after prune+reopen = %d, want %d", seq, n+1)
	}
}

func TestGroupCommitBatchesFsyncs(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, GroupCommit: 5 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	const writers, each = 8, 25
	var wg sync.WaitGroup
	for w := 0; w < writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				if _, err := l.AppendSync(1, []byte(fmt.Sprintf("w%d-%d", w, i))); err != nil {
					t.Errorf("append: %v", err)
					return
				}
			}
		}(w)
	}
	wg.Wait()
	st := l.Stats()
	if st.Appends != writers*each {
		t.Fatalf("appends = %d, want %d", st.Appends, writers*each)
	}
	// The whole point of group commit: far fewer fsyncs than appends.
	if st.Syncs >= st.Appends {
		t.Fatalf("group commit did not batch: %d syncs for %d appends", st.Syncs, st.Appends)
	}
	if got := collect(t, l); len(got) != writers*each {
		t.Fatalf("replayed %d, want %d", len(got), writers*each)
	}
}

func TestCrashLosesOnlyUnacknowledged(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 10; i++ {
		if _, err := l.AppendSync(1, []byte(fmt.Sprintf("acked-%d", i))); err != nil {
			t.Fatal(err)
		}
	}
	// Buffered but never synced: allowed to vanish.
	if _, err := l.Append(1, []byte("unacked")); err != nil {
		t.Fatal(err)
	}
	l.Crash()

	l2, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen after crash: %v", err)
	}
	defer l2.Close()
	got := collect(t, l2)
	if len(got) < 10 {
		t.Fatalf("lost acknowledged records: %d < 10", len(got))
	}
	for i := 0; i < 10; i++ {
		if want := fmt.Sprintf("acked-%d", i); string(got[i].payload) != want {
			t.Fatalf("record %d = %q, want %q", i, got[i].payload, want)
		}
	}
}

func TestCorruptionMidLogFailsLoudly(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256})
	if err != nil {
		t.Fatal(err)
	}
	payload := bytes.Repeat([]byte("y"), 100)
	for i := 0; i < 20; i++ {
		if _, err := l.AppendSync(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	// Flip a byte in the FIRST segment — not the tail, so not a torn write.
	segs, err := listSegments(dir)
	if err != nil || len(segs) < 2 {
		t.Fatalf("want ≥2 segments, got %d (err %v)", len(segs), err)
	}
	data, err := os.ReadFile(segs[0].path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(segMagic)+10] ^= 0xff
	if err := os.WriteFile(segs[0].path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(Options{Dir: dir}); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("Open on mid-log corruption = %v, want ErrCorrupt", err)
	}
}

func TestSegmentCacheServesSealedReads(t *testing.T) {
	dir := t.TempDir()
	l, err := Open(Options{Dir: dir, SegmentBytes: 256, CacheSegments: 8})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	payload := bytes.Repeat([]byte("z"), 100)
	for i := 0; i < 20; i++ {
		if _, err := l.AppendSync(1, payload); err != nil {
			t.Fatal(err)
		}
	}
	collect(t, l)
	collect(t, l)
	st := l.Stats()
	if st.CacheHits == 0 {
		t.Fatalf("second replay produced no cache hits: %+v", st)
	}
}

func TestCloseIsIdempotentAndRejectsAppends(t *testing.T) {
	l, err := Open(Options{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	if err := l.Close(); err != nil {
		t.Fatalf("second close: %v", err)
	}
	if _, err := l.Append(1, []byte("nope")); !errors.Is(err, ErrClosed) {
		t.Fatalf("append after close = %v, want ErrClosed", err)
	}
}

func TestOpenIgnoresForeignFiles(t *testing.T) {
	dir := t.TempDir()
	if err := os.WriteFile(filepath.Join(dir, "notes.txt"), []byte("hi"), 0o644); err != nil {
		t.Fatal(err)
	}
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatal(err)
	}
	defer l.Close()
	if _, err := l.AppendSync(1, []byte("ok")); err != nil {
		t.Fatal(err)
	}
}
