package wal

// Torn-write recovery properties: whatever a crash does to the tail of the
// log — truncation at an arbitrary byte offset, or bit flips from a torn
// sector — reopening must either restore an exact prefix of the appended
// records or fail loudly with ErrCorrupt. It must never invent, reorder,
// or silently alter a record.

import (
	"bytes"
	"errors"
	"fmt"
	"math/rand"
	"os"
	"testing"
)

// buildLog appends n deterministic records and closes the log, returning
// the payloads in order.
func buildLog(t testing.TB, dir string, n, segmentBytes int) [][]byte {
	t.Helper()
	l, err := Open(Options{Dir: dir, SegmentBytes: segmentBytes})
	if err != nil {
		t.Fatal(err)
	}
	payloads := make([][]byte, n)
	for i := range payloads {
		payloads[i] = []byte(fmt.Sprintf("payload-%04d-%s", i, string(bytes.Repeat([]byte{byte(i)}, i%40))))
		if _, err := l.Append(byte(i%5+1), payloads[i]); err != nil {
			t.Fatal(err)
		}
	}
	if err := l.Close(); err != nil {
		t.Fatal(err)
	}
	return payloads
}

// lastSegment returns the path and size of the final segment.
func lastSegment(t testing.TB, dir string) (string, int64) {
	t.Helper()
	segs, err := listSegments(dir)
	if err != nil || len(segs) == 0 {
		t.Fatalf("listSegments: %v (%d)", err, len(segs))
	}
	p := segs[len(segs)-1].path
	st, err := os.Stat(p)
	if err != nil {
		t.Fatal(err)
	}
	return p, st.Size()
}

// checkPrefix asserts the reopened log replays an exact prefix of want.
func checkPrefix(t *testing.T, dir string, want [][]byte) int {
	t.Helper()
	l, err := Open(Options{Dir: dir})
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	defer l.Close()
	i := 0
	err = l.Replay(func(seq uint64, typ byte, payload []byte) error {
		if i >= len(want) {
			return fmt.Errorf("extra record %d beyond the %d appended", seq, len(want))
		}
		if seq != uint64(i+1) {
			return fmt.Errorf("record %d has seq %d", i, seq)
		}
		if !bytes.Equal(payload, want[i]) {
			return fmt.Errorf("record %d payload altered", i)
		}
		i++
		return nil
	})
	if err != nil {
		t.Fatalf("replay after damage: %v", err)
	}
	return i
}

func TestTornTailTruncationProperty(t *testing.T) {
	const records = 60
	rng := rand.New(rand.NewSource(0x7042))
	for trial := 0; trial < 30; trial++ {
		dir := t.TempDir()
		want := buildLog(t, dir, records, 1<<20) // single segment
		path, size := lastSegment(t, dir)
		// Truncate at an arbitrary offset inside the file.
		cut := int64(rng.Intn(int(size)))
		if err := os.Truncate(path, cut); err != nil {
			t.Fatal(err)
		}
		n := checkPrefix(t, dir, want)
		if n == records && cut < size {
			// Only legal if the cut landed exactly on the final frame
			// boundary — but cut < size means bytes were lost.
			t.Fatalf("trial %d: full log replayed after truncation to %d/%d", trial, cut, size)
		}
	}
}

func TestBitFlipTailProperty(t *testing.T) {
	const records = 60
	rng := rand.New(rand.NewSource(0xb17f))
	for trial := 0; trial < 30; trial++ {
		dir := t.TempDir()
		want := buildLog(t, dir, records, 1<<20)
		path, size := lastSegment(t, dir)
		data, err := os.ReadFile(path)
		if err != nil {
			t.Fatal(err)
		}
		off := rng.Intn(int(size))
		data[off] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// A flip in the single (= last) segment is indistinguishable from a
		// torn write: recovery keeps the valid prefix before the damage.
		// Flips in the magic header may legally drop the whole segment.
		checkPrefix(t, dir, want)
	}
}

func TestBitFlipSealedSegmentFailsLoudly(t *testing.T) {
	const records = 200
	rng := rand.New(rand.NewSource(0x5ea1))
	for trial := 0; trial < 20; trial++ {
		dir := t.TempDir()
		want := buildLog(t, dir, records, 1024) // many segments
		segs, err := listSegments(dir)
		if err != nil || len(segs) < 3 {
			t.Fatalf("want ≥3 segments, got %d", len(segs))
		}
		victim := segs[rng.Intn(len(segs)-1)] // any sealed segment
		data, err := os.ReadFile(victim.path)
		if err != nil {
			t.Fatal(err)
		}
		data[rng.Intn(len(data))] ^= 1 << uint(rng.Intn(8))
		if err := os.WriteFile(victim.path, data, 0o644); err != nil {
			t.Fatal(err)
		}
		// Either Open refuses outright (ErrCorrupt), or — if the flip hit
		// frame-boundary slack that still parses — replay must still yield
		// an unaltered prefix. It must never serve modified payloads.
		l, err := Open(Options{Dir: dir})
		if err != nil {
			if !errors.Is(err, ErrCorrupt) {
				t.Fatalf("trial %d: Open = %v, want ErrCorrupt", trial, err)
			}
			continue
		}
		i := 0
		rerr := l.Replay(func(seq uint64, typ byte, payload []byte) error {
			if i < len(want) && !bytes.Equal(payload, want[i]) {
				return fmt.Errorf("record %d altered", i)
			}
			i++
			return nil
		})
		l.Close()
		if rerr != nil && !errors.Is(rerr, ErrCorrupt) {
			t.Fatalf("trial %d: replay = %v", trial, rerr)
		}
	}
}

// FuzzTornReplay feeds arbitrary bytes as a segment file: parsing must
// never panic, and every frame it accepts must carry a valid CRC (checked
// implicitly by re-framing and comparing).
func FuzzTornReplay(f *testing.F) {
	// Seed with a well-formed segment.
	var buf bytes.Buffer
	buf.WriteString(segMagic)
	for i := 0; i < 5; i++ {
		writeFrame(&buf, byte(i+1), []byte(fmt.Sprintf("seed-%d", i))) //nolint:errcheck // bytes.Buffer cannot fail
	}
	f.Add(buf.Bytes())
	f.Add([]byte(segMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		n, keep, bad, err := parseFrames(data, func(typ byte, payload []byte) error { return nil })
		if err != nil {
			t.Fatalf("callback-less parse errored: %v", err)
		}
		if keep+bad != int64(len(data)) && n >= 0 {
			// keep is the boundary after the last valid frame; everything
			// after it must be accounted as bad.
			if int64(len(data))-keep != bad {
				t.Fatalf("accounting: len=%d keep=%d bad=%d", len(data), keep, bad)
			}
		}
		// Round-trip: writing the accepted frames back must parse to the
		// same count.
		var rt bytes.Buffer
		rt.WriteString(segMagic)
		parseFrames(data, func(typ byte, payload []byte) error { //nolint:errcheck // verified above
			return writeFrame(&rt, typ, payload)
		})
		n2, _, bad2, _ := parseFrames(rt.Bytes(), nil)
		if n2 != n || bad2 != 0 {
			t.Fatalf("round-trip: %d/%d frames, %d bad", n2, n, bad2)
		}
	})
}
