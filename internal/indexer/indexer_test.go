package indexer

import (
	"errors"
	"reflect"
	"testing"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
)

// synthBlock feeds ProcessBlock a fabricated block whose single receipt
// carries the given events — the fold logic does not care how a block was
// produced, only what it logged.
func synthBlock(ix *Indexer, number uint64, events ...chain.Event) chain.Hash {
	var h chain.Hash
	h[0] = byte(number)
	h[1] = 0xEE
	ix.ProcessBlock(
		chain.Block{Number: number, TxHashes: []chain.Hash{h}},
		[]*chain.Receipt{{TxHash: h, Logs: events}},
	)
	return h
}

func TestQueryFilterAndPagination(t *testing.T) {
	ix := New(Config{})
	// Blocks 1..5: "box"/"Put" everywhere, topic alternating A/B; one
	// unrelated event to prove isolation.
	for n := uint64(1); n <= 5; n++ {
		topic := []byte("A")
		if n%2 == 0 {
			topic = []byte("B")
		}
		synthBlock(ix, n,
			chain.Event{Contract: "box", Name: "Put", Topic: topic, Data: []byte{byte(n)}},
			chain.Event{Contract: "other", Name: "Noise"},
		)
	}

	if _, _, err := ix.Query(Filter{Contract: "box"}); !errors.Is(err, ErrBadFilter) {
		t.Fatalf("missing name: %v, want ErrBadFilter", err)
	}

	all, total, err := ix.Query(Filter{Contract: "box", Name: "Put"})
	if err != nil {
		t.Fatal(err)
	}
	if len(all) != 5 || total != 5 {
		t.Fatalf("got %d/%d entries, want 5/5", len(all), total)
	}
	for i, e := range all {
		if e.Block != uint64(i+1) || e.Event.Data[0] != byte(i+1) {
			t.Fatalf("entry %d out of chain order: %+v", i, e)
		}
	}

	// Topic narrows to odd blocks only.
	alpha, _, err := ix.Query(Filter{Contract: "box", Name: "Put", Topic: []byte("A")})
	if err != nil {
		t.Fatal(err)
	}
	if len(alpha) != 3 {
		t.Fatalf("topic A: %d entries, want 3", len(alpha))
	}
	for _, e := range alpha {
		if e.Block%2 == 0 {
			t.Fatalf("topic A matched even block %d", e.Block)
		}
	}

	// Block range [2,4].
	mid, total, err := ix.Query(Filter{Contract: "box", Name: "Put", FromBlock: 2, ToBlock: 4})
	if err != nil {
		t.Fatal(err)
	}
	if len(mid) != 3 || total != 3 || mid[0].Block != 2 || mid[2].Block != 4 {
		t.Fatalf("range [2,4]: %+v (total %d)", mid, total)
	}

	// Pagination: offset 1, limit 2 of the 5 total.
	page, total, err := ix.Query(Filter{Contract: "box", Name: "Put", Offset: 1, Limit: 2})
	if err != nil {
		t.Fatal(err)
	}
	if total != 5 || len(page) != 2 || page[0].Block != 2 || page[1].Block != 3 {
		t.Fatalf("page: %+v (total %d)", page, total)
	}
	// Offset past the end is an empty page, not an error.
	empty, total, err := ix.Query(Filter{Contract: "box", Name: "Put", Offset: 99})
	if err != nil || len(empty) != 0 || total != 5 {
		t.Fatalf("offset past end: %v entries, total %d, err %v", empty, total, err)
	}

	if s := ix.Stats(); s.Blocks != 5 || s.Events != 10 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestBloomBlockSkip(t *testing.T) {
	ix := New(Config{})
	// Only blocks 3 and 7 carry the needle.
	for n := uint64(1); n <= 10; n++ {
		evs := []chain.Event{{Contract: "hay", Name: "Stack", Data: []byte{byte(n)}}}
		if n == 3 || n == 7 {
			evs = append(evs, chain.Event{Contract: "box", Name: "Put", Topic: []byte("needle")})
		}
		synthBlock(ix, n, evs...)
	}
	got := ix.BlocksMaybeContaining("box", "Put", []byte("needle"), 1, 0)
	has := func(n uint64) bool {
		for _, b := range got {
			if b == n {
				return true
			}
		}
		return false
	}
	if !has(3) || !has(7) {
		t.Fatalf("bloom lost a real block: %v", got)
	}
	// Blooms may false-positive but must not pass everything: with 10 blocks
	// and 3 hash bits over 2048 positions, collisions on 8 clean blocks are
	// essentially impossible.
	if len(got) > 4 {
		t.Fatalf("bloom admitted %d of 10 blocks: %v", len(got), got)
	}
	if s := ix.Stats(); s.Skipped == 0 {
		t.Fatalf("no blocks skipped: %+v", s)
	}
}

// chainFixture drives the real DataNFT contract through mint / duplicate /
// aggregate / transfer / burn and returns the attached indexer plus the ids
// involved — the end-to-end path the provenance service must reproduce.
func chainFixture(t *testing.T) (*chain.Chain, *Indexer, chain.Address, []uint64) {
	t.Helper()
	c := chain.New()
	if _, err := c.Deploy(contracts.DataNFTName, &contracts.DataNFT{}, contracts.DataNFTCodeSize); err != nil {
		t.Fatal(err)
	}
	ix := New(Config{NFTContract: contracts.DataNFTName, EscrowContract: contracts.EscrowName})
	ix.Attach(c)

	alice := chain.AddressFromString("alice")
	c.Faucet(alice, 1<<40)

	nonce := uint64(0)
	call := func(method string, args []byte) []byte {
		t.Helper()
		r, err := c.Submit(chain.Transaction{From: alice, Contract: contracts.DataNFTName, Method: method, Args: args, Nonce: nonce})
		if err != nil {
			t.Fatalf("%s: %v", method, err)
		}
		if r.Err != nil {
			t.Fatalf("%s reverted: %v", method, r.Err)
		}
		nonce++
		return r.Return
	}
	mustID := func(raw []byte) uint64 {
		t.Helper()
		id, err := contracts.DecU64(raw)
		if err != nil {
			t.Fatal(err)
		}
		return id
	}

	a := mustID(call("mint", contracts.EncodeArgs([]byte("uri-a"), []byte("com-a"))))
	b := mustID(call("mint", contracts.EncodeArgs([]byte("uri-b"), []byte("com-b"))))
	dup := mustID(call("duplicate", contracts.EncodeArgs(contracts.U64(a), []byte("uri-dup"), []byte("com-dup"))))
	agg := mustID(call("aggregate", contracts.EncodeArgs(contracts.U64List([]uint64{dup, b}), []byte("uri-agg"), []byte("com-agg"))))
	bob := chain.AddressFromString("bob")
	call("transfer", contracts.EncodeArgs(contracts.U64(agg), bob[:]))
	call("burn", contracts.EncodeArgs(contracts.U64(b)))
	c.SealBlock()
	return c, ix, bob, []uint64{a, b, dup, agg}
}

func TestProvenanceMatchesStorageTrace(t *testing.T) {
	c, ix, bob, ids := chainFixture(t)
	a, b, dup, agg := ids[0], ids[1], ids[2], ids[3]

	// The indexed walk must reproduce contracts.Trace exactly, id for id.
	want, err := contracts.Trace(c, agg)
	if err != nil {
		t.Fatal(err)
	}
	wantIDs := make([]uint64, len(want))
	for i, tok := range want {
		wantIDs[i] = tok.ID
	}
	got, err := ix.AncestorIDs(agg)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, wantIDs) {
		t.Fatalf("AncestorIDs %v, storage trace %v", got, wantIDs)
	}

	rec, err := ix.Token(agg)
	if err != nil {
		t.Fatal(err)
	}
	if rec.Kind != contracts.KindAggregation || rec.Owner != bob {
		t.Fatalf("agg record: %+v", rec)
	}
	if !reflect.DeepEqual(rec.Parents, []uint64{dup, b}) {
		t.Fatalf("agg parents %v", rec.Parents)
	}
	burned, err := ix.Token(b)
	if err != nil {
		t.Fatal(err)
	}
	if !burned.Burned {
		t.Fatal("token b not marked burned")
	}
	if !reflect.DeepEqual(burned.Children, []uint64{agg}) {
		t.Fatalf("b children %v", burned.Children)
	}
	src, err := ix.Token(a)
	if err != nil {
		t.Fatal(err)
	}
	if src.Kind != contracts.KindMint || len(src.Parents) != 0 {
		t.Fatalf("mint record: %+v", src)
	}

	lin, err := ix.Lineage(agg)
	if err != nil {
		t.Fatal(err)
	}
	if len(lin.Tokens) != 4 {
		t.Fatalf("lineage has %d tokens, want 4", len(lin.Tokens))
	}
	wantEdges := map[Edge]bool{
		{Parent: dup, Child: agg}: true,
		{Parent: b, Child: agg}:   true,
		{Parent: a, Child: dup}:   true,
	}
	if len(lin.Edges) != len(wantEdges) {
		t.Fatalf("lineage edges %v", lin.Edges)
	}
	for _, e := range lin.Edges {
		if !wantEdges[e] {
			t.Fatalf("unexpected edge %+v", e)
		}
	}

	if _, err := ix.Token(9999); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("unknown token: %v", err)
	}
	if _, err := ix.AncestorIDs(9999); !errors.Is(err, ErrUnknownToken) {
		t.Fatalf("unknown trace: %v", err)
	}
}

func TestIndexerTracksRealReceipts(t *testing.T) {
	c, ix, _, ids := chainFixture(t)
	agg := ids[3]

	// Every Transfer is indexed under its topic (token id); agg has two
	// (mint + transfer to bob).
	entries, total, err := ix.Query(Filter{Contract: contracts.DataNFTName, Name: "Transfer", Topic: contracts.U64(agg)})
	if err != nil {
		t.Fatal(err)
	}
	if total != 2 || len(entries) != 2 {
		t.Fatalf("agg transfers: %d/%d, want 2", len(entries), total)
	}
	for _, e := range entries {
		if n, ok := ix.TxBlock(e.TxHash); !ok || n != e.Block {
			t.Fatalf("txBlock mismatch for %s: %d vs %d", e.TxHash, n, e.Block)
		}
		if _, ok := c.BlockByNumber(e.Block); !ok {
			t.Fatalf("entry references unknown block %d", e.Block)
		}
	}
	if s := ix.Stats(); s.Tokens != 4 || s.Blocks == 0 {
		t.Fatalf("stats: %+v", s)
	}
}

func TestProvenanceEscrowFold(t *testing.T) {
	ix := New(Config{EscrowContract: contracts.EscrowName})
	seller := chain.AddressFromString("seller")
	open := func(block, id, value uint64) {
		synthBlock(ix, block, chain.Event{
			Contract: contracts.EscrowName, Name: "Opened", Topic: contracts.U64(id),
			Data: contracts.EncodeArgs(contracts.U64(id), seller[:], []byte("hv"), []byte("c"), contracts.U64(value)),
		})
	}
	open(1, 7, 500)
	open(2, 8, 250)
	synthBlock(ix, 3, chain.Event{
		Contract: contracts.EscrowName, Name: "Settled", Topic: contracts.U64(7),
		Data: contracts.EncodeArgs(contracts.U64(7), []byte("kc-bytes")),
	})
	synthBlock(ix, 4, chain.Event{
		Contract: contracts.EscrowName, Name: "Refunded", Topic: contracts.U64(8),
		Data: contracts.EncodeArgs(contracts.U64(8), contracts.U64(250)),
	})

	settled, err := ix.Exchange(7)
	if err != nil {
		t.Fatal(err)
	}
	if settled.Status != ExchangeSettled || string(settled.KC) != "kc-bytes" ||
		settled.Seller != seller || settled.Value != 500 {
		t.Fatalf("settled exchange: %+v", settled)
	}
	if len(settled.History) != 2 || settled.History[0].Name != "Opened" || settled.History[1].Name != "Settled" {
		t.Fatalf("settled history: %+v", settled.History)
	}
	refunded, err := ix.Exchange(8)
	if err != nil {
		t.Fatal(err)
	}
	if refunded.Status != ExchangeRefunded {
		t.Fatalf("refunded exchange: %+v", refunded)
	}
	if _, err := ix.Exchange(99); err == nil {
		t.Fatal("unknown exchange did not error")
	}
}

func TestQuerySnapshotIsolation(t *testing.T) {
	// Results must be copies: appending more blocks after a query must not
	// mutate the slice a caller holds.
	ix := New(Config{})
	synthBlock(ix, 1, chain.Event{Contract: "box", Name: "Put", Data: []byte{1}})
	first, _, err := ix.Query(Filter{Contract: "box", Name: "Put"})
	if err != nil {
		t.Fatal(err)
	}
	for n := uint64(2); n <= 20; n++ {
		synthBlock(ix, n, chain.Event{Contract: "box", Name: "Put", Data: []byte{byte(n)}})
	}
	if len(first) != 1 || first[0].Event.Data[0] != 1 {
		t.Fatalf("earlier query page mutated: %+v", first)
	}
	for i := 0; i < 3; i++ {
		page, total, err := ix.Query(Filter{Contract: "box", Name: "Put", Offset: i * 7, Limit: 7})
		if err != nil || total != 20 {
			t.Fatalf("page %d: total %d err %v", i, total, err)
		}
		for j, e := range page {
			if want := uint64(i*7 + j + 1); e.Block != want {
				t.Fatalf("page %d entry %d: block %d want %d", i, j, e.Block, want)
			}
		}
	}
}
