package indexer

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
)

// HistoryEntry is one provenance-relevant event in a token's or exchange's
// life, pinned to the block and transaction that produced it.
type HistoryEntry struct {
	Block  uint64
	TxHash chain.Hash
	Name   string // Transfer | Transform | Burn | Opened | Settled | Refunded
}

// TokenRecord is the indexer's folded view of one DataNFT, reconstructed
// purely from events — it never reads contract storage, so it stays correct
// even if the chain later prunes cold state.
type TokenRecord struct {
	ID       uint64
	Kind     contracts.TransformKind
	Owner    chain.Address
	Parents  []uint64
	Children []uint64
	Burned   bool
	History  []HistoryEntry
}

func (r *TokenRecord) clone() *TokenRecord {
	cp := *r
	cp.Parents = append([]uint64(nil), r.Parents...)
	cp.Children = append([]uint64(nil), r.Children...)
	cp.History = append([]HistoryEntry(nil), r.History...)
	return &cp
}

// Exchange status labels.
const (
	ExchangeOpen     = "open"
	ExchangeSettled  = "settled"
	ExchangeRefunded = "refunded"
)

// ExchangeRecord is the folded view of one escrow exchange.
type ExchangeRecord struct {
	ID      uint64
	Seller  chain.Address
	HV      []byte
	C       []byte
	Value   uint64
	Status  string
	KC      []byte // blinded key k_c, present once settled
	History []HistoryEntry
}

// Edge is one parent→child derivation in a lineage DAG.
type Edge struct {
	Parent uint64
	Child  uint64
}

// Lineage is the provenance DAG reachable backwards from a token: the
// token's record plus every ancestor's, in BFS order, with the derivation
// edges among them.
type Lineage struct {
	Tokens []*TokenRecord
	Edges  []Edge
}

// Confidential-note status labels, mirroring the contract's status byte.
const (
	CTNoteUnspent = "unspent"
	CTNoteSpent   = "spent"
	CTNoteLocked  = "locked"
)

// CTNoteRecord is the folded view of one confidential note. Events carry
// only the commitment digest — never an amount or blinder — so the record
// is exactly what a non-auditor observer can learn from the chain.
type CTNoteRecord struct {
	ID      uint64
	Owner   chain.Address
	Digest  []byte // 32-byte commitment digest from the CTNote event
	Status  string // unspent | spent | locked
	History []HistoryEntry
}

func (r *CTNoteRecord) clone() *CTNoteRecord {
	cp := *r
	cp.Digest = append([]byte(nil), r.Digest...)
	cp.History = append([]HistoryEntry(nil), r.History...)
	return &cp
}

// CTExchangeRecord is the folded view of one confidential escrow: the same
// two-phase key-secure exchange as ExchangeRecord, but the price field is a
// Pedersen commitment instead of a plaintext value.
type CTExchangeRecord struct {
	ID      uint64
	TokenID uint64
	NoteID  uint64
	Seller  chain.Address
	Comm    []byte // 64-byte payment commitment, amount hidden
	KC      []byte // blinded key k_c, present once settled
	Status  string
	History []HistoryEntry
}

// provenance folds DataNFT, escrow, and confidential-token events into
// per-token, per-exchange, and per-note records. All methods run under the
// owning Indexer's lock.
type provenance struct {
	cfg         Config
	tokens      map[uint64]*TokenRecord
	exchanges   map[uint64]*ExchangeRecord
	ctNotes     map[uint64]*CTNoteRecord
	ctByDigest  map[string]uint64
	ctExchanges map[uint64]*CTExchangeRecord
}

func newProvenance(cfg Config) *provenance {
	return &provenance{
		cfg:         cfg,
		tokens:      make(map[uint64]*TokenRecord),
		exchanges:   make(map[uint64]*ExchangeRecord),
		ctNotes:     make(map[uint64]*CTNoteRecord),
		ctByDigest:  make(map[string]uint64),
		ctExchanges: make(map[uint64]*CTExchangeRecord),
	}
}

func (p *provenance) fold(block uint64, txHash chain.Hash, ev chain.Event) {
	switch ev.Contract {
	case p.cfg.NFTContract:
		if p.cfg.NFTContract != "" {
			p.foldNFT(block, txHash, ev)
		}
	case p.cfg.EscrowContract:
		if p.cfg.EscrowContract != "" {
			p.foldEscrow(block, txHash, ev)
		}
	case p.cfg.CTContract:
		if p.cfg.CTContract != "" {
			p.foldCT(block, txHash, ev)
		}
	}
}

func (p *provenance) token(id uint64) *TokenRecord {
	rec, ok := p.tokens[id]
	if !ok {
		rec = &TokenRecord{ID: id, Kind: contracts.KindMint}
		p.tokens[id] = rec
	}
	return rec
}

func (p *provenance) foldNFT(block uint64, txHash chain.Hash, ev chain.Event) {
	parts, err := contracts.DecodeArgsVariadic(ev.Data)
	if err != nil || len(parts) == 0 {
		return // not a payload we understand; leave the raw event queryable
	}
	id, err := contracts.DecU64(parts[0])
	if err != nil {
		return
	}
	h := HistoryEntry{Block: block, TxHash: txHash, Name: ev.Name}
	switch ev.Name {
	case "Transfer":
		// EncodeArgs(id, from, to); an empty from marks a mint.
		if len(parts) != 3 || len(parts[2]) != 20 {
			return
		}
		rec := p.token(id)
		copy(rec.Owner[:], parts[2])
		rec.History = append(rec.History, h)
	case "Transform":
		// EncodeArgs(id, kind, prevIds).
		if len(parts) != 3 || len(parts[1]) != 1 {
			return
		}
		prev, err := contracts.DecU64List(parts[2])
		if err != nil {
			return
		}
		rec := p.token(id)
		rec.Kind = contracts.TransformKind(parts[1][0])
		rec.Parents = prev
		rec.History = append(rec.History, h)
		for _, pid := range prev {
			parent := p.token(pid)
			parent.Children = append(parent.Children, id)
		}
	case "Burn":
		rec := p.token(id)
		rec.Burned = true
		rec.History = append(rec.History, h)
	}
}

func (p *provenance) foldEscrow(block uint64, txHash chain.Hash, ev chain.Event) {
	parts, err := contracts.DecodeArgsVariadic(ev.Data)
	if err != nil || len(parts) == 0 {
		return
	}
	id, err := contracts.DecU64(parts[0])
	if err != nil {
		return
	}
	h := HistoryEntry{Block: block, TxHash: txHash, Name: ev.Name}
	switch ev.Name {
	case "Opened":
		// EncodeArgs(id, seller, hv, c, value).
		if len(parts) != 5 || len(parts[1]) != 20 {
			return
		}
		rec := &ExchangeRecord{ID: id, Status: ExchangeOpen}
		copy(rec.Seller[:], parts[1])
		rec.HV = append([]byte(nil), parts[2]...)
		rec.C = append([]byte(nil), parts[3]...)
		rec.Value, _ = contracts.DecU64(parts[4])
		rec.History = append(rec.History, h)
		p.exchanges[id] = rec
	case "Settled":
		// EncodeArgs(id, kc).
		rec, ok := p.exchanges[id]
		if !ok || len(parts) != 2 {
			return
		}
		rec.Status = ExchangeSettled
		rec.KC = append([]byte(nil), parts[1]...)
		rec.History = append(rec.History, h)
	case "Refunded":
		rec, ok := p.exchanges[id]
		if !ok {
			return
		}
		rec.Status = ExchangeRefunded
		rec.History = append(rec.History, h)
	}
}

func (p *provenance) foldCT(block uint64, txHash chain.Hash, ev chain.Event) {
	parts, err := contracts.DecodeArgsVariadic(ev.Data)
	if err != nil || len(parts) == 0 {
		return
	}
	h := HistoryEntry{Block: block, TxHash: txHash, Name: ev.Name}
	switch ev.Name {
	case "CTNote":
		// EncodeArgs(id, recipient, digest): a fresh unspent note.
		if len(parts) != 3 || len(parts[1]) != 20 || len(parts[2]) != 32 {
			return
		}
		id, err := contracts.DecU64(parts[0])
		if err != nil {
			return
		}
		rec := &CTNoteRecord{ID: id, Status: CTNoteUnspent}
		copy(rec.Owner[:], parts[1])
		rec.Digest = append([]byte(nil), parts[2]...)
		rec.History = append(rec.History, h)
		p.ctNotes[id] = rec
		p.ctByDigest[string(rec.Digest)] = id
	case "CTMint", "CTTransfer":
		// EncodeArgs(inIDs, outIDs): every input note is consumed.
		if len(parts) != 2 {
			return
		}
		inIDs, err := contracts.DecU64List(parts[0])
		if err != nil {
			return
		}
		for _, id := range inIDs {
			if rec, ok := p.ctNotes[id]; ok {
				rec.Status = CTNoteSpent
				rec.History = append(rec.History, h)
			}
		}
	case "CTOpened":
		// EncodeArgs(exID, tokenID, noteID, seller, comm): the buyer's note
		// locks as the escrowed payment.
		if len(parts) != 5 || len(parts[3]) != 20 {
			return
		}
		exID, err := contracts.DecU64(parts[0])
		if err != nil {
			return
		}
		rec := &CTExchangeRecord{ID: exID, Status: ExchangeOpen}
		rec.TokenID, _ = contracts.DecU64(parts[1])
		rec.NoteID, _ = contracts.DecU64(parts[2])
		copy(rec.Seller[:], parts[3])
		rec.Comm = append([]byte(nil), parts[4]...)
		rec.History = append(rec.History, h)
		p.ctExchanges[exID] = rec
		if note, ok := p.ctNotes[rec.NoteID]; ok {
			note.Status = CTNoteLocked
			note.History = append(note.History, h)
		}
	case "CTSettled":
		// EncodeArgs(exID, tokenID, noteID, kc): the locked note changes
		// hands to the seller and is spendable again.
		if len(parts) != 4 {
			return
		}
		exID, err := contracts.DecU64(parts[0])
		if err != nil {
			return
		}
		rec, ok := p.ctExchanges[exID]
		if !ok {
			return
		}
		rec.Status = ExchangeSettled
		rec.KC = append([]byte(nil), parts[3]...)
		rec.History = append(rec.History, h)
		if note, ok := p.ctNotes[rec.NoteID]; ok {
			note.Owner = rec.Seller
			note.Status = CTNoteUnspent
			note.History = append(note.History, h)
		}
	case "CTRefunded":
		// EncodeArgs(exID, noteID): the note returns to the buyer unspent.
		if len(parts) != 2 {
			return
		}
		exID, err := contracts.DecU64(parts[0])
		if err != nil {
			return
		}
		rec, ok := p.ctExchanges[exID]
		if !ok {
			return
		}
		rec.Status = ExchangeRefunded
		rec.History = append(rec.History, h)
		if note, ok := p.ctNotes[rec.NoteID]; ok {
			note.Status = CTNoteUnspent
			note.History = append(note.History, h)
		}
	}
}

// ancestorIDs reproduces contracts.Trace's walk exactly — a breadth-first
// traversal of prevIds with the start token first — so callers can swap the
// storage walk for the index without reordering results.
func (p *provenance) ancestorIDs(id uint64) ([]uint64, error) {
	if _, ok := p.tokens[id]; !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownToken, id)
	}
	seen := map[uint64]bool{}
	queue := []uint64{id}
	var out []uint64
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		if seen[cur] {
			continue
		}
		seen[cur] = true
		rec, ok := p.tokens[cur]
		if !ok {
			return nil, fmt.Errorf("indexer: tracing %d: %w: %d", id, ErrUnknownToken, cur)
		}
		out = append(out, cur)
		queue = append(queue, rec.Parents...)
	}
	return out, nil
}

func (p *provenance) lineage(id uint64) (*Lineage, error) {
	ids, err := p.ancestorIDs(id)
	if err != nil {
		return nil, err
	}
	l := &Lineage{Tokens: make([]*TokenRecord, 0, len(ids))}
	inDAG := make(map[uint64]bool, len(ids))
	for _, tid := range ids {
		inDAG[tid] = true
	}
	for _, tid := range ids {
		rec := p.tokens[tid].clone()
		l.Tokens = append(l.Tokens, rec)
		for _, pid := range rec.Parents {
			if inDAG[pid] {
				l.Edges = append(l.Edges, Edge{Parent: pid, Child: tid})
			}
		}
	}
	return l, nil
}
