// Package indexer is ZKDET's off-chain query layer: it consumes sealed
// blocks (via chain.OnSeal) and maintains an inverted event index keyed by
// (contract, event name, topic) with per-block bloom filters and paginated
// range queries, plus a provenance service that folds DataNFT and escrow
// events into per-token lineage DAGs — the paper's traceability property
// (§III-B, Figure 2) exposed as a query API instead of a storage walk.
package indexer

import (
	"errors"
	"fmt"
	"sort"
	"sync"

	"github.com/zkdet/zkdet/internal/chain"
)

// Entry is one indexed event occurrence.
type Entry struct {
	Block    uint64
	TxIndex  int
	LogIndex int
	TxHash   chain.Hash
	Event    chain.Event
}

// Filter selects entries for Query. Contract and Name are required; Topic
// narrows to one indexed topic when non-empty. FromBlock/ToBlock bound the
// block range (ToBlock 0 means the indexed head). Offset/Limit paginate;
// Limit 0 means no limit.
type Filter struct {
	Contract  string
	Name      string
	Topic     []byte
	FromBlock uint64
	ToBlock   uint64
	Offset    int
	Limit     int
}

// Stats summarizes what the indexer holds.
type Stats struct {
	Blocks  uint64 // blocks processed
	Events  uint64 // events indexed
	Txs     uint64 // transactions mapped
	Tokens  int    // tokens known to the provenance service
	CTNotes int    // confidential notes known to the provenance service
	Keys    int    // distinct (contract, name[, topic]) index keys
	Skipped uint64 // range-scan blocks skipped by bloom filters
}

// Config names the contracts whose events the provenance service folds.
// Zero values disable provenance folding for that contract.
type Config struct {
	NFTContract    string
	EscrowContract string
	CTContract     string // confidential-token contract (commitment digests, never amounts)
}

// Indexer is the off-chain index. Feed it sealed blocks via Attach (the
// chain's OnSeal hook) or ProcessBlock directly; query it concurrently.
type Indexer struct {
	mu  sync.RWMutex
	cfg Config

	head    uint64                // guarded by mu
	blooms  map[uint64]*bloom     // guarded by mu; per processed block
	byKey   map[string][]Entry    // guarded by mu
	txBlock map[chain.Hash]uint64 // guarded by mu
	events  uint64                // guarded by mu
	blocks  uint64                // guarded by mu
	skipped uint64                // guarded by mu

	prov *provenance // pointer immutable; contents mutated under mu
}

// New returns an empty indexer.
func New(cfg Config) *Indexer {
	return &Indexer{
		cfg:     cfg,
		blooms:  make(map[uint64]*bloom),
		byKey:   make(map[string][]Entry),
		txBlock: make(map[chain.Hash]uint64),
		prov:    newProvenance(cfg),
	}
}

// Attach registers the indexer on the chain's seal hook so every sealed
// block is processed synchronously, in height order.
func (ix *Indexer) Attach(c *chain.Chain) {
	c.OnSeal(ix.ProcessBlock)
}

func indexKey(contract, name string, topic []byte) string {
	return contract + "\x00" + name + "\x00" + string(topic)
}

// ProcessBlock folds one sealed block into the index. Blocks must arrive in
// height order (chain.OnSeal guarantees this).
func (ix *Indexer) ProcessBlock(b chain.Block, receipts []*chain.Receipt) {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	bl := &bloom{}
	for txIdx, r := range receipts {
		if r == nil {
			continue
		}
		ix.txBlock[r.TxHash] = b.Number
		for logIdx, ev := range r.Logs {
			e := Entry{Block: b.Number, TxIndex: txIdx, LogIndex: logIdx, TxHash: r.TxHash, Event: ev}
			k := indexKey(ev.Contract, ev.Name, nil)
			ix.byKey[k] = append(ix.byKey[k], e)
			bl.add(k)
			if len(ev.Topic) > 0 {
				kt := indexKey(ev.Contract, ev.Name, ev.Topic)
				ix.byKey[kt] = append(ix.byKey[kt], e)
				bl.add(kt)
			}
			ix.events++
			ix.prov.fold(b.Number, r.TxHash, ev)
		}
	}
	ix.blooms[b.Number] = bl
	ix.head = b.Number
	ix.blocks++
}

// Head returns the highest indexed block number.
func (ix *Indexer) Head() uint64 {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.head
}

// TxBlock returns the block that included a transaction.
func (ix *Indexer) TxBlock(h chain.Hash) (uint64, bool) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	n, ok := ix.txBlock[h]
	return n, ok
}

// ErrBadFilter reports a malformed query filter.
var ErrBadFilter = errors.New("indexer: contract and event name are required")

// Query returns one page of entries matching the filter in chain order,
// plus the total match count in the range (for pagination UIs). Lookup is
// O(log n) into the key's posting list; block-range bounds use binary
// search, never a receipt walk.
func (ix *Indexer) Query(f Filter) ([]Entry, int, error) {
	if f.Contract == "" || f.Name == "" {
		return nil, 0, ErrBadFilter
	}
	ix.mu.RLock()
	defer ix.mu.RUnlock()

	entries := ix.byKey[indexKey(f.Contract, f.Name, f.Topic)]
	to := f.ToBlock
	if to == 0 {
		to = ix.head
	}
	lo := sort.Search(len(entries), func(i int) bool { return entries[i].Block >= f.FromBlock })
	hi := sort.Search(len(entries), func(i int) bool { return entries[i].Block > to })
	matched := entries[lo:hi]
	total := len(matched)

	if f.Offset > 0 {
		if f.Offset >= len(matched) {
			return nil, total, nil
		}
		matched = matched[f.Offset:]
	}
	if f.Limit > 0 && f.Limit < len(matched) {
		matched = matched[:f.Limit]
	}
	out := make([]Entry, len(matched))
	copy(out, matched)
	return out, total, nil
}

// BlocksMaybeContaining returns the block numbers in [from, to] whose bloom
// filter admits the (contract, name, topic) key — the block-skip primitive
// a cold-storage scan would use. Blocks whose blooms exclude the key are
// counted in Stats.Skipped.
func (ix *Indexer) BlocksMaybeContaining(contract, name string, topic []byte, from, to uint64) []uint64 {
	ix.mu.Lock()
	defer ix.mu.Unlock()
	if to == 0 || to > ix.head {
		to = ix.head
	}
	key := indexKey(contract, name, topic)
	var out []uint64
	for n := from; n <= to; n++ {
		bl, ok := ix.blooms[n]
		if !ok {
			continue
		}
		if bl.maybeContains(key) {
			out = append(out, n)
		} else {
			ix.skipped++
		}
	}
	return out
}

// Stats snapshots index counters.
func (ix *Indexer) Stats() Stats {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return Stats{
		Blocks:  ix.blocks,
		Events:  ix.events,
		Txs:     uint64(len(ix.txBlock)),
		Tokens:  len(ix.prov.tokens),
		CTNotes: len(ix.prov.ctNotes),
		Keys:    len(ix.byKey),
		Skipped: ix.skipped,
	}
}

// --- provenance accessors (implementation in provenance.go) ---

// ErrUnknownToken reports a provenance query for a token the indexer has
// not seen a mint event for.
var ErrUnknownToken = errors.New("indexer: unknown token")

// Token returns the folded record of one token.
func (ix *Indexer) Token(id uint64) (*TokenRecord, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rec, ok := ix.prov.tokens[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownToken, id)
	}
	cp := rec.clone()
	return cp, nil
}

// AncestorIDs walks the lineage DAG from a token back to its sources,
// returning ids in breadth-first order (the token itself first) — the same
// order as the on-chain storage walk contracts.Trace performs.
func (ix *Indexer) AncestorIDs(id uint64) ([]uint64, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.prov.ancestorIDs(id)
}

// Lineage returns the full provenance DAG reachable from a token: every
// ancestor's record plus the parent→child edge list, in BFS order.
func (ix *Indexer) Lineage(id uint64) (*Lineage, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	return ix.prov.lineage(id)
}

// Exchange returns the folded record of one escrow exchange.
func (ix *Indexer) Exchange(id uint64) (*ExchangeRecord, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rec, ok := ix.prov.exchanges[id]
	if !ok {
		return nil, fmt.Errorf("indexer: unknown exchange %d", id)
	}
	cp := *rec
	return &cp, nil
}

// ErrUnknownNote reports a query for a confidential note the indexer has
// not seen a CTNote event for.
var ErrUnknownNote = errors.New("indexer: unknown confidential note")

// CTNote returns the folded record of one confidential note. The record
// carries only public data — owner, status, and the commitment digest; no
// amount ever appears in events, so none can appear here.
func (ix *Indexer) CTNote(id uint64) (*CTNoteRecord, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rec, ok := ix.prov.ctNotes[id]
	if !ok {
		return nil, fmt.Errorf("%w: %d", ErrUnknownNote, id)
	}
	return rec.clone(), nil
}

// CTNoteByDigest resolves a 32-byte commitment digest — the only handle to
// a confidential note that appears in lineage events and audit reports —
// back to the note record. This is what lets an auditor pivot from an
// opened payment to the note's on-chain history without scanning blocks.
func (ix *Indexer) CTNoteByDigest(digest []byte) (*CTNoteRecord, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	id, ok := ix.prov.ctByDigest[string(digest)]
	if !ok {
		return nil, fmt.Errorf("%w: digest %x", ErrUnknownNote, digest)
	}
	return ix.prov.ctNotes[id].clone(), nil
}

// CTExchange returns the folded record of one confidential escrow exchange.
func (ix *Indexer) CTExchange(id uint64) (*CTExchangeRecord, error) {
	ix.mu.RLock()
	defer ix.mu.RUnlock()
	rec, ok := ix.prov.ctExchanges[id]
	if !ok {
		return nil, fmt.Errorf("indexer: unknown confidential exchange %d", id)
	}
	cp := *rec
	cp.History = append([]HistoryEntry(nil), rec.History...)
	return &cp, nil
}
