package indexer

import "hash/fnv"

// bloom is a fixed 2048-bit filter over event keys, one per sealed block —
// the per-block membership summary range queries consult before touching a
// block's entries (the EVM logsBloom, sized down for our event volume).
type bloom [256]byte

// bloomHashes is the number of bit positions set per key.
const bloomHashes = 3

func bloomPositions(key string) [bloomHashes]uint32 {
	h := fnv.New64a()
	h.Write([]byte(key))
	v := h.Sum64()
	var out [bloomHashes]uint32
	for i := 0; i < bloomHashes; i++ {
		out[i] = uint32((v >> (i * 16)) & 0x7FF) // 11 bits → 0..2047
	}
	return out
}

func (b *bloom) add(key string) {
	for _, p := range bloomPositions(key) {
		b[p/8] |= 1 << (p % 8)
	}
}

func (b *bloom) maybeContains(key string) bool {
	for _, p := range bloomPositions(key) {
		if b[p/8]&(1<<(p%8)) == 0 {
			return false
		}
	}
	return true
}
