package mimc

import (
	"testing"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/plonk"
)

// TestCustomGadgetMatchesNative checks the one-row-per-round lowering
// computes exactly Encrypt, end to end through Plonk prove/verify.
func TestCustomGadgetMatchesNative(t *testing.T) {
	k := fr.NewElement(0xbeef)
	x := fr.NewElement(0xcafe)
	want := Encrypt(k, x)

	b := circuit.NewBuilder()
	b.EnableCustomGates()
	kv := b.Secret(k)
	xv := b.Secret(x)
	ct := GadgetEncrypt(b, kv, xv)
	if got := b.Value(ct); !got.Equal(&want) {
		t.Fatalf("custom gadget value %s, native %s", got.String(), want.String())
	}
	pub := b.Public(want)
	b.AssertEqual(pub, ct)

	cs, witness, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if !cs.HasCustomGates() {
		t.Fatal("no custom rows emitted")
	}
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatal(err)
	}

	tau := fr.NewElement(0x717c)
	srs, err := kzg.NewSRSFromSecret(1<<10, &tau)
	if err != nil {
		t.Fatal(err)
	}
	pk, vk, err := plonk.Setup(cs, srs)
	if err != nil {
		t.Fatal(err)
	}
	if !vk.Custom {
		t.Fatal("custom circuit compiled to a non-custom key")
	}
	proof, err := plonk.Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if err := plonk.Verify(vk, proof, b.PublicValues()); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	one := fr.One()
	var wrong fr.Element
	wrong.Add(&want, &one)
	if err := plonk.Verify(vk, proof, []fr.Element{wrong}); err == nil {
		t.Fatal("wrong ciphertext accepted")
	}
}

// TestCustomGadgetConstraintCount pins the ≥3x saving: one block must cost
// about Rounds+2 gates instead of ~6·Rounds.
func TestCustomGadgetConstraintCount(t *testing.T) {
	classic := ConstraintsPerBlock()

	b := circuit.NewBuilder()
	b.EnableCustomGates()
	k := b.Secret(fr.NewElement(1))
	x := b.Secret(fr.NewElement(2))
	before := b.NbGates()
	GadgetEncrypt(b, k, x)
	custom := b.NbGates() - before

	if custom > Rounds+2 {
		t.Fatalf("custom MiMC block costs %d gates, want ≤ %d", custom, Rounds+2)
	}
	if custom*3 > classic {
		t.Fatalf("custom lowering not ≥3x cheaper: %d vs %d", custom, classic)
	}
}

// TestCustomGadgetHashMatchesNative runs the Miyaguchi–Preneel mode on the
// custom lowering (chained permutations with interleaved arithmetic rows).
func TestCustomGadgetHashMatchesNative(t *testing.T) {
	msg := []fr.Element{fr.NewElement(5), fr.NewElement(17), fr.NewElement(99)}
	want := Hash(msg)

	b := circuit.NewBuilder()
	b.EnableCustomGates()
	vars := make([]circuit.Variable, len(msg))
	for i, m := range msg {
		vars[i] = b.Secret(m)
	}
	h := GadgetHash(b, vars)
	if got := b.Value(h); !got.Equal(&want) {
		t.Fatalf("custom gadget hash %s, native %s", got.String(), want.String())
	}
	cs, witness, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatal(err)
	}
}
