// Package mimc implements the MiMC-p/p block cipher (Albrecht et al.,
// ASIACRYPT 2016) over the BN254 scalar field, with the parameters the
// paper selects in §VI-A: 91 rounds and a degree-7 non-linear permutation.
//
// MiMC is the encryption primitive of ZKDET because its circuit is tiny:
// proving one block costs ~4 multiplication gates per round instead of the
// thousands a boolean cipher like AES would need (§IV-C1).
//
// The package provides the keyed permutation, CTR-mode vector encryption
// (the paper's construction ĉ_i = d_i + MiMC(k, nonce+i)), a
// Miyaguchi–Preneel hash mode, and the matching circuit gadget.
package mimc

import (
	"crypto/sha256"
	"encoding/binary"
	"fmt"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
)

// Rounds is the number of MiMC rounds (paper §VI-A: r = 91).
const Rounds = 91

// Degree is the S-box exponent (paper §VI-A: d = 7).
const Degree = 7

// roundConstants holds the nothing-up-my-sleeve constants c_0 = 0,
// c_i = SHA-256("zkdet/mimc" ‖ i) mod r.
var roundConstants = func() [Rounds]fr.Element {
	var cs [Rounds]fr.Element
	for i := 1; i < Rounds; i++ {
		var buf [8]byte
		binary.BigEndian.PutUint64(buf[:], uint64(i))
		h := sha256.Sum256(append([]byte("zkdet/mimc"), buf[:]...))
		cs[i] = fr.FromBytes(h[:])
	}
	return cs
}()

// Encrypt applies the keyed MiMC permutation E_k to one block:
// t ← (t + k + c_i)^7 for each round, then t + k.
func Encrypt(k, x fr.Element) fr.Element {
	t := x
	for i := 0; i < Rounds; i++ {
		var u fr.Element
		u.Add(&t, &k)
		u.Add(&u, &roundConstants[i])
		t = pow7(u)
	}
	t.Add(&t, &k)
	return t
}

func pow7(x fr.Element) fr.Element {
	var x2, x4, x6, x7 fr.Element
	x2.Square(&x)
	x4.Square(&x2)
	x6.Mul(&x4, &x2)
	x7.Mul(&x6, &x)
	return x7
}

// EncryptCTR encrypts a vector of field elements in counter mode:
// ct[i] = pt[i] + E_k(nonce + i).
func EncryptCTR(k, nonce fr.Element, pt []fr.Element) []fr.Element {
	ct := make([]fr.Element, len(pt))
	ctr := nonce
	one := fr.One()
	for i := range pt {
		ks := Encrypt(k, ctr)
		ct[i].Add(&pt[i], &ks)
		ctr.Add(&ctr, &one)
	}
	return ct
}

// DecryptCTR inverts EncryptCTR.
func DecryptCTR(k, nonce fr.Element, ct []fr.Element) []fr.Element {
	pt := make([]fr.Element, len(ct))
	ctr := nonce
	one := fr.One()
	for i := range ct {
		ks := Encrypt(k, ctr)
		pt[i].Sub(&ct[i], &ks)
		ctr.Add(&ctr, &one)
	}
	return pt
}

// Hash computes a Miyaguchi–Preneel hash over field elements:
// h ← E_h(m) + h + m, starting from h = 0.
func Hash(msg []fr.Element) fr.Element {
	var h fr.Element
	for i := range msg {
		e := Encrypt(h, msg[i])
		h.Add(&h, &e)
		h.Add(&h, &msg[i])
	}
	return h
}

// HashBytes hashes arbitrary bytes by packing them into field elements
// (31 bytes per element to stay canonical) and applying Hash.
func HashBytes(data []byte) fr.Element {
	const chunk = 31
	var msg []fr.Element
	for off := 0; off < len(data); off += chunk {
		end := off + chunk
		if end > len(data) {
			end = len(data)
		}
		msg = append(msg, fr.FromBytes(data[off:end]))
	}
	msg = append(msg, fr.NewElement(uint64(len(data)))) // length padding
	return Hash(msg)
}

// GadgetEncrypt emits the MiMC permutation as circuit constraints,
// returning the ciphertext wire. It mirrors Encrypt exactly. With custom
// gates enabled each round is a single KindMiMC row (plus one closing
// row); classically a round costs ~6 multiplication gates.
func GadgetEncrypt(b *circuit.Builder, k, x circuit.Variable) circuit.Variable {
	if b.CustomGatesEnabled() {
		return gadgetEncryptCustom(b, k, x)
	}
	t := x
	for i := 0; i < Rounds; i++ {
		u := b.Add(t, k)
		u = b.AddConst(u, roundConstants[i])
		// u^7 = ((u²)²·u²)·u
		u2 := b.Square(u)
		u4 := b.Square(u2)
		u6 := b.Mul(u4, u2)
		t = b.Mul(u6, u)
	}
	return b.Add(t, k)
}

// gadgetEncryptCustom lowers the permutation to one KindMiMC row per
// round: row wires (t, k, u²) with u = t + k + c_i, the gate constraining
// c = u² and nextrow.a = c³·u = u⁷. Rounds chain through the a-wire, so
// the rows are emitted back-to-back and closed with a no-op row carrying
// the final state.
func gadgetEncryptCustom(b *circuit.Builder, k, x circuit.Variable) circuit.Variable {
	t := x
	for i := 0; i < Rounds; i++ {
		var u fr.Element
		tv, kv := b.Value(t), b.Value(k)
		u.Add(&tv, &kv)
		u.Add(&u, &roundConstants[i])
		var u2 fr.Element
		u2.Square(&u)
		sq := b.Secret(u2)
		b.CustomGate(circuit.KindMiMC, t, k, sq, [3]fr.Element{roundConstants[i]})
		t = b.Secret(pow7(u))
	}
	b.NoOpRow(t, t, t)
	return b.Add(t, k)
}

// GadgetEncryptCTR emits CTR-mode encryption constraints for a vector,
// returning the ciphertext wires.
func GadgetEncryptCTR(b *circuit.Builder, k, nonce circuit.Variable, pt []circuit.Variable) []circuit.Variable {
	ct := make([]circuit.Variable, len(pt))
	ctr := nonce
	for i := range pt {
		ks := GadgetEncrypt(b, k, ctr)
		ct[i] = b.Add(pt[i], ks)
		if i != len(pt)-1 {
			ctr = b.AddConst(ctr, fr.One())
		}
	}
	return ct
}

// GadgetHash emits the Miyaguchi–Preneel hash as constraints.
func GadgetHash(b *circuit.Builder, msg []circuit.Variable) circuit.Variable {
	h := b.Zero()
	for i := range msg {
		e := GadgetEncrypt(b, h, msg[i])
		h = b.Add(h, e)
		h = b.Add(h, msg[i])
	}
	return h
}

// ConstraintsPerBlock reports the number of gates one block encryption
// costs — the figure behind the paper's MiMC-vs-AES argument (§IV-C1).
func ConstraintsPerBlock() int {
	b := circuit.NewBuilder()
	k := b.Secret(fr.NewElement(1))
	x := b.Secret(fr.NewElement(2))
	before := b.NbGates()
	GadgetEncrypt(b, k, x)
	return b.NbGates() - before
}

// String describes the instantiation.
func String() string {
	return fmt.Sprintf("MiMC-p/p over BN254 Fr, %d rounds, x^%d S-box, CTR mode", Rounds, Degree)
}
