package mimc

import (
	"testing"
	"testing/quick"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
)

func TestEncryptIsPermutation(t *testing.T) {
	// Distinct plaintexts under the same key must map to distinct
	// ciphertexts (x^7 is a bijection since gcd(7, r-1) = 1).
	k := fr.NewElement(42)
	seen := map[string]bool{}
	for i := uint64(0); i < 50; i++ {
		c := Encrypt(k, fr.NewElement(i))
		s := c.String()
		if seen[s] {
			t.Fatalf("collision at input %d", i)
		}
		seen[s] = true
	}
}

func TestEncryptKeyDependence(t *testing.T) {
	x := fr.NewElement(7)
	c1 := Encrypt(fr.NewElement(1), x)
	c2 := Encrypt(fr.NewElement(2), x)
	if c1.Equal(&c2) {
		t.Fatal("ciphertext independent of key")
	}
}

func TestCTRRoundTrip(t *testing.T) {
	k := fr.MustRandom()
	nonce := fr.MustRandom()
	pt := make([]fr.Element, 33)
	for i := range pt {
		pt[i] = fr.MustRandom()
	}
	ct := EncryptCTR(k, nonce, pt)
	back := DecryptCTR(k, nonce, ct)
	for i := range pt {
		if !back[i].Equal(&pt[i]) {
			t.Fatalf("round trip mismatch at %d", i)
		}
		if ct[i].Equal(&pt[i]) {
			t.Fatalf("ciphertext equals plaintext at %d", i)
		}
	}
	// Wrong key must not decrypt.
	wrongK := fr.MustRandom()
	bad := DecryptCTR(wrongK, nonce, ct)
	same := 0
	for i := range pt {
		if bad[i].Equal(&pt[i]) {
			same++
		}
	}
	if same != 0 {
		t.Fatalf("%d blocks decrypted under wrong key", same)
	}
	// Wrong nonce must not decrypt either.
	var nonce2 fr.Element
	one := fr.One()
	nonce2.Add(&nonce, &one)
	bad = DecryptCTR(k, nonce2, ct)
	if bad[0].Equal(&pt[0]) {
		t.Fatal("decrypted under wrong nonce")
	}
}

func TestCTREmpty(t *testing.T) {
	k := fr.NewElement(1)
	if got := EncryptCTR(k, fr.Zero(), nil); len(got) != 0 {
		t.Fatal("empty encryption not empty")
	}
}

func TestHashProperties(t *testing.T) {
	m1 := []fr.Element{fr.NewElement(1), fr.NewElement(2)}
	m2 := []fr.Element{fr.NewElement(1), fr.NewElement(3)}
	h1 := Hash(m1)
	h1Again := Hash(m1)
	h2 := Hash(m2)
	if !h1.Equal(&h1Again) {
		t.Fatal("hash not deterministic")
	}
	if h1.Equal(&h2) {
		t.Fatal("trivial collision")
	}
}

func TestHashBytes(t *testing.T) {
	h1 := HashBytes([]byte("hello world"))
	h2 := HashBytes([]byte("hello worlc"))
	if h1.Equal(&h2) {
		t.Fatal("byte hash collision")
	}
	// Length padding: prefixes must not collide.
	h3 := HashBytes([]byte{0, 0, 0})
	h4 := HashBytes([]byte{0, 0})
	if h3.Equal(&h4) {
		t.Fatal("length extension collision")
	}
	// Long input crosses chunk boundaries.
	long := make([]byte, 100)
	for i := range long {
		long[i] = byte(i)
	}
	_ = HashBytes(long)
}

func TestGadgetMatchesNative(t *testing.T) {
	b := circuit.NewBuilder()
	kVal, xVal := fr.NewElement(111), fr.NewElement(222)
	k := b.Secret(kVal)
	x := b.Secret(xVal)
	ct := GadgetEncrypt(b, k, x)
	want := Encrypt(kVal, xVal)
	if got := b.Value(ct); !got.Equal(&want) {
		t.Fatal("gadget encryption disagrees with native")
	}
	cs, w, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(w); err != nil {
		t.Fatalf("gadget constraints unsatisfied: %v", err)
	}
}

func TestGadgetCTRMatchesNative(t *testing.T) {
	b := circuit.NewBuilder()
	kVal := fr.NewElement(5)
	nonceVal := fr.NewElement(1000)
	ptVals := []fr.Element{fr.NewElement(10), fr.NewElement(20), fr.NewElement(30)}
	k := b.Secret(kVal)
	nonce := b.Secret(nonceVal)
	pt := make([]circuit.Variable, len(ptVals))
	for i := range ptVals {
		pt[i] = b.Secret(ptVals[i])
	}
	ct := GadgetEncryptCTR(b, k, nonce, pt)
	want := EncryptCTR(kVal, nonceVal, ptVals)
	for i := range want {
		if got := b.Value(ct[i]); !got.Equal(&want[i]) {
			t.Fatalf("gadget CTR mismatch at %d", i)
		}
	}
	cs, w, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(w); err != nil {
		t.Fatal(err)
	}
}

func TestGadgetHashMatchesNative(t *testing.T) {
	b := circuit.NewBuilder()
	vals := []fr.Element{fr.NewElement(1), fr.NewElement(2), fr.NewElement(3)}
	msg := make([]circuit.Variable, len(vals))
	for i := range vals {
		msg[i] = b.Secret(vals[i])
	}
	h := GadgetHash(b, msg)
	want := Hash(vals)
	if got := b.Value(h); !got.Equal(&want) {
		t.Fatal("gadget hash disagrees with native")
	}
	checkCompiles(t, b)
}

func checkCompiles(t *testing.T, b *circuit.Builder) {
	t.Helper()
	cs, w, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(w); err != nil {
		t.Fatal(err)
	}
}

func TestConstraintsPerBlock(t *testing.T) {
	n := ConstraintsPerBlock()
	// 91 rounds × ~6 gates — the point is it is hundreds, not the
	// millions an AES circuit needs (§IV-C1).
	if n < 300 || n > 800 {
		t.Fatalf("MiMC block costs %d constraints, expected a few hundred", n)
	}
}

func TestQuickCTRRoundTrip(t *testing.T) {
	prop := func(k, nonce, m uint64) bool {
		key := fr.NewElement(k)
		nc := fr.NewElement(nonce)
		pt := []fr.Element{fr.NewElement(m)}
		back := DecryptCTR(key, nc, EncryptCTR(key, nc, pt))
		return back[0].Equal(&pt[0])
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 25}); err != nil {
		t.Fatal(err)
	}
}

func TestString(t *testing.T) {
	if String() == "" {
		t.Fatal("empty description")
	}
}

func BenchmarkEncrypt(b *testing.B) {
	k := fr.NewElement(1)
	x := fr.NewElement(2)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Encrypt(k, x)
	}
}
