package kzg

import (
	"crypto/sha256"
	"errors"
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/parallel"
)

// This file implements a simulated multi-party Powers-of-Tau ceremony,
// standing in for the Perpetual Powers of Tau (Zcash/Semaphore) the paper
// uses. Each contributor replaces τ with τ·s for a fresh secret s, by
// raising every SRS element to the appropriate power of s. As long as one
// contributor is honest (destroys s), nobody knows the final τ.

// Contribution records one ceremony update so the chain can be publicly
// verified: the contributor publishes [s]G1 and [s]G2 for its secret s.
type Contribution struct {
	// SG1 is [s]G1 and SG2 is [s]G2 for the contributor's secret s.
	SG1 bn254.G1Affine
	SG2 bn254.G2Affine
	// After is [τ·s]G1 (the new power-1 element), linking this update to
	// the resulting SRS.
	After bn254.G1Affine
}

// Ceremony is an in-progress Powers-of-Tau ceremony. It starts from the
// identity SRS ([1·G, 1·G, ...] is not usable, so it starts from τ = 1,
// i.e. G1[i] = G for all i) and accumulates contributions.
type Ceremony struct {
	srs           *SRS
	contributions []Contribution
}

// ErrCeremonyInvalid reports a broken contribution chain.
var ErrCeremonyInvalid = errors.New("kzg: ceremony transcript verification failed")

// NewCeremony starts a ceremony for an SRS of the given size (τ = 1).
func NewCeremony(size int) (*Ceremony, error) {
	if size < 2 {
		return nil, fmt.Errorf("kzg: ceremony size must be at least 2, got %d", size)
	}
	g1 := bn254.G1Generator()
	g2 := bn254.G2Generator()
	srs := &SRS{G1: make([]bn254.G1Affine, size)}
	for i := range srs.G1 {
		srs.G1[i] = g1
	}
	srs.G2[0] = g2
	srs.G2[1] = g2
	return &Ceremony{srs: srs}, nil
}

// Contribute mixes the given entropy into the SRS as one participant's
// secret. The secret is derived from entropy plus fresh system randomness,
// used, and discarded; only the public update proof is retained.
func (c *Ceremony) Contribute(entropy []byte) error {
	fresh := fr.MustRandom()
	defer fresh.SetZero()
	h := sha256.New()
	h.Write(entropy)
	b := fresh.Bytes()
	h.Write(b[:])
	for i := range b {
		b[i] = 0
	}
	// toxic: s is this contributor's ceremony secret (the "waste" of the
	// powers-of-tau update); it and everything derived from it must be
	// destroyed before Contribute returns.
	s := fr.FromBytes(h.Sum(nil))
	defer s.SetZero()
	if s.IsZero() {
		return errors.New("kzg: derived zero contribution secret")
	}
	// New G1[i] = [s^i] old G1[i]; new [τs]G2 = [s] old [τ]G2.
	scalars := fr.Powers(&s, len(c.srs.G1))
	defer zeroizeScalars(scalars)
	// Each power update is an independent scalar multiplication.
	parallel.Execute(len(c.srs.G1)-1, func(start, end int) {
		for i := start + 1; i < end+1; i++ {
			c.srs.G1[i] = bn254.G1ScalarMul(&c.srs.G1[i], &scalars[i])
		}
	})
	c.srs.G2[1] = bn254.G2ScalarMul(&c.srs.G2[1], &s)

	g1 := bn254.G1Generator()
	g2 := bn254.G2Generator()
	c.contributions = append(c.contributions, Contribution{
		SG1:   bn254.G1ScalarMul(&g1, &s),
		SG2:   bn254.G2ScalarMul(&g2, &s),
		After: c.srs.G1[1],
	})
	return nil
}

// zeroizeScalars overwrites a slice of secret scalars in place; ceremony
// code calls it (usually deferred) on anything derived from a contribution
// secret.
func zeroizeScalars(xs []fr.Element) {
	for i := range xs {
		xs[i].SetZero()
	}
}

// Contributions returns the public update chain.
func (c *Ceremony) Contributions() []Contribution {
	out := make([]Contribution, len(c.contributions))
	copy(out, c.contributions)
	return out
}

// SRS finalizes the ceremony, verifying internal consistency of the result
// before releasing it.
func (c *Ceremony) SRS() (*SRS, error) {
	if len(c.contributions) == 0 {
		return nil, fmt.Errorf("%w: no contributions", ErrCeremonyInvalid)
	}
	if err := VerifySRS(c.srs); err != nil {
		return nil, err
	}
	return c.srs, nil
}

// VerifyChain checks the public contribution chain: each update's secret
// links the previous power-1 element to the next, and the G1/G2 halves of
// each update agree (e([s]G1, G2) == e(G1, [s]G2)).
func VerifyChain(contribs []Contribution, final *SRS) error {
	if len(contribs) == 0 {
		return fmt.Errorf("%w: empty chain", ErrCeremonyInvalid)
	}
	g1 := bn254.G1Generator()
	g2 := bn254.G2Generator()
	prev := g1 // power-1 element starts at [1]G1 (τ = 1)
	for i, ct := range contribs {
		// G1/G2 halves agree: e(SG1, G2) == e(G1, SG2)
		// ⇔ e(SG1, G2) · e(-G1, SG2) == 1.
		var negG1 bn254.G1Affine
		negG1.Neg(&g1)
		ok, err := bn254.PairingCheck(
			[]bn254.G1Affine{ct.SG1, negG1},
			[]bn254.G2Affine{g2, ct.SG2},
		)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: contribution %d halves disagree", ErrCeremonyInvalid, i)
		}
		// After == [s]·prev: e(After, G2) == e(prev, SG2).
		var negAfter bn254.G1Affine
		negAfter.Neg(&ct.After)
		ok, err = bn254.PairingCheck(
			[]bn254.G1Affine{prev, negAfter},
			[]bn254.G2Affine{ct.SG2, g2},
		)
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("%w: contribution %d does not chain", ErrCeremonyInvalid, i)
		}
		prev = ct.After
	}
	if !prev.Equal(&final.G1[1]) {
		return fmt.Errorf("%w: chain head does not match final SRS", ErrCeremonyInvalid)
	}
	return VerifySRS(final)
}

// VerifySRS checks the structural consistency of an SRS: consecutive powers
// are related by τ, batched into a single pairing check with a random
// combiner: e(Σ ρ^i G1[i+1], G2) == e(Σ ρ^i G1[i], [τ]G2).
func VerifySRS(srs *SRS) error {
	if len(srs.G1) < 2 {
		return fmt.Errorf("%w: too small", ErrInvalidSRS)
	}
	g1 := bn254.G1Generator()
	g2 := bn254.G2Generator()
	if !srs.G1[0].Equal(&g1) || !srs.G2[0].Equal(&g2) {
		return fmt.Errorf("%w: generators corrupted", ErrInvalidSRS)
	}
	rho := fr.MustRandom()
	defer rho.SetZero()
	n := len(srs.G1)
	coeffs := make([]fr.Element, n-1)
	acc := fr.One()
	for i := range coeffs {
		coeffs[i] = acc
		acc.Mul(&acc, &rho)
	}
	lo, err := bn254.G1MSM(srs.G1[:n-1], coeffs)
	if err != nil {
		return err
	}
	hi, err := bn254.G1MSM(srs.G1[1:], coeffs)
	if err != nil {
		return err
	}
	var negHi bn254.G1Affine
	negHi.Neg(&hi)
	ok, err := bn254.PairingCheck(
		[]bn254.G1Affine{lo, negHi},
		[]bn254.G2Affine{srs.G2[1], srs.G2[0]},
	)
	if err != nil {
		return err
	}
	if !ok {
		return fmt.Errorf("%w: power chain broken", ErrInvalidSRS)
	}
	return nil
}
