package kzg

import (
	"encoding/binary"
	"fmt"

	"github.com/zkdet/zkdet/internal/bn254"
)

// SRS serialization: a magic header, the G1 power count, the G1 powers
// uncompressed, then the two G2 points. Ceremony outputs are distributed in
// this format so participants can verify them with VerifySRS/VerifyChain.

const srsMagic = "zkdet-srs-v1\x00\x00\x00\x00"

// g2ByteLen is the uncompressed G2 encoding size (two Fp2 coordinates).
const g2ByteLen = 128

func g2Bytes(p *bn254.G2Affine) [g2ByteLen]byte {
	var out [g2ByteLen]byte
	x0 := p.X.A0.Bytes()
	x1 := p.X.A1.Bytes()
	y0 := p.Y.A0.Bytes()
	y1 := p.Y.A1.Bytes()
	copy(out[0:32], x0[:])
	copy(out[32:64], x1[:])
	copy(out[64:96], y0[:])
	copy(out[96:128], y1[:])
	return out
}

func g2FromBytes(b []byte) (bn254.G2Affine, error) {
	if len(b) != g2ByteLen {
		return bn254.G2Affine{}, fmt.Errorf("kzg: g2 encoding must be %d bytes", g2ByteLen)
	}
	var p bn254.G2Affine
	var err error
	if p.X.A0, err = bn254.FpFromBytesCanonical(b[0:32]); err != nil {
		return bn254.G2Affine{}, fmt.Errorf("kzg: g2 x0: %w", err)
	}
	if p.X.A1, err = bn254.FpFromBytesCanonical(b[32:64]); err != nil {
		return bn254.G2Affine{}, fmt.Errorf("kzg: g2 x1: %w", err)
	}
	if p.Y.A0, err = bn254.FpFromBytesCanonical(b[64:96]); err != nil {
		return bn254.G2Affine{}, fmt.Errorf("kzg: g2 y0: %w", err)
	}
	if p.Y.A1, err = bn254.FpFromBytesCanonical(b[96:128]); err != nil {
		return bn254.G2Affine{}, fmt.Errorf("kzg: g2 y1: %w", err)
	}
	if !p.IsOnCurve() {
		return bn254.G2Affine{}, fmt.Errorf("kzg: g2 point not on curve")
	}
	return p, nil
}

// Bytes serializes the SRS.
func (s *SRS) Bytes() []byte {
	out := make([]byte, 0, len(srsMagic)+8+64*len(s.G1)+2*g2ByteLen)
	out = append(out, srsMagic...)
	var n [8]byte
	binary.BigEndian.PutUint64(n[:], uint64(len(s.G1)))
	out = append(out, n[:]...)
	for i := range s.G1 {
		b := s.G1[i].Bytes()
		out = append(out, b[:]...)
	}
	for i := range s.G2 {
		b := g2Bytes(&s.G2[i])
		out = append(out, b[:]...)
	}
	return out
}

// SRSFromBytes deserializes and structurally validates an SRS: every point
// must be on its curve and the power chain must verify (one batched pairing
// check), so a tampered file cannot produce a usable-but-wrong SRS.
func SRSFromBytes(data []byte) (*SRS, error) {
	if len(data) < len(srsMagic)+8 {
		return nil, fmt.Errorf("%w: truncated header", ErrInvalidSRS)
	}
	if string(data[:len(srsMagic)]) != srsMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrInvalidSRS)
	}
	data = data[len(srsMagic):]
	n := binary.BigEndian.Uint64(data[:8])
	data = data[8:]
	if n < 2 || n > 1<<30 {
		return nil, fmt.Errorf("%w: implausible size %d", ErrInvalidSRS, n)
	}
	want := int(n)*64 + 2*g2ByteLen
	if len(data) != want {
		return nil, fmt.Errorf("%w: body is %d bytes, want %d", ErrInvalidSRS, len(data), want)
	}
	srs := &SRS{G1: make([]bn254.G1Affine, n)}
	for i := range srs.G1 {
		p, err := bn254.G1FromBytes(data[:64])
		if err != nil {
			return nil, fmt.Errorf("kzg: srs g1[%d]: %w", i, err)
		}
		srs.G1[i] = p
		data = data[64:]
	}
	for i := range srs.G2 {
		p, err := g2FromBytes(data[:g2ByteLen])
		if err != nil {
			return nil, fmt.Errorf("kzg: srs g2[%d]: %w", i, err)
		}
		srs.G2[i] = p
		data = data[g2ByteLen:]
	}
	if err := VerifySRS(srs); err != nil {
		return nil, err
	}
	return srs, nil
}
