package kzg

import (
	"testing"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/poly"
)

func testSRS(t *testing.T, size int) *SRS {
	t.Helper()
	tau := fr.NewElement(0xbeef1234)
	srs, err := NewSRSFromSecret(size, &tau)
	if err != nil {
		t.Fatal(err)
	}
	return srs
}

func randPoly(n int) poly.Polynomial {
	p := make(poly.Polynomial, n)
	for i := range p {
		p[i] = fr.MustRandom()
	}
	return p
}

func TestSRSStructure(t *testing.T) {
	srs := testSRS(t, 16)
	if err := VerifySRS(srs); err != nil {
		t.Fatalf("VerifySRS on honest SRS: %v", err)
	}
	// G1[1] must be [τ]G1.
	g := bn254.G1Generator()
	tau := fr.NewElement(0xbeef1234)
	want := bn254.G1ScalarMul(&g, &tau)
	if !srs.G1[1].Equal(&want) {
		t.Fatal("SRS power 1 mismatch")
	}
	// Corrupt a power: VerifySRS must notice.
	srs.G1[7] = g
	if err := VerifySRS(srs); err == nil {
		t.Fatal("VerifySRS accepted corrupted SRS")
	}
}

func TestCommitOpenVerify(t *testing.T) {
	srs := testSRS(t, 64)
	p := randPoly(50)
	c, err := Commit(srs, p)
	if err != nil {
		t.Fatal(err)
	}
	z := fr.MustRandom()
	proof, err := Open(srs, p, &z)
	if err != nil {
		t.Fatal(err)
	}
	if want := p.Eval(&z); !proof.ClaimedValue.Equal(&want) {
		t.Fatal("claimed value != p(z)")
	}
	if err := Verify(srs, &c, &z, &proof); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

func TestVerifyRejectsTampering(t *testing.T) {
	srs := testSRS(t, 64)
	p := randPoly(40)
	c, err := Commit(srs, p)
	if err != nil {
		t.Fatal(err)
	}
	z := fr.MustRandom()
	proof, err := Open(srs, p, &z)
	if err != nil {
		t.Fatal(err)
	}

	// Wrong claimed value.
	bad := proof
	bad.ClaimedValue.Add(&bad.ClaimedValue, &[]fr.Element{fr.One()}[0])
	if err := Verify(srs, &c, &z, &bad); err == nil {
		t.Fatal("accepted wrong claimed value")
	}

	// Wrong point.
	zBad := fr.MustRandom()
	if err := Verify(srs, &c, &zBad, &proof); err == nil {
		t.Fatal("accepted wrong evaluation point")
	}

	// Wrong commitment (different polynomial).
	q := randPoly(40)
	cq, err := Commit(srs, q)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(srs, &cq, &z, &proof); err == nil {
		t.Fatal("accepted proof against wrong commitment")
	}

	// Corrupted quotient point.
	bad = proof
	g := bn254.G1Generator()
	bad.Quotient = bn254.G1Add(&bad.Quotient, &g)
	if err := Verify(srs, &c, &z, &bad); err == nil {
		t.Fatal("accepted corrupted quotient")
	}
}

func TestCommitmentHomomorphism(t *testing.T) {
	// KZG commitments are additively homomorphic: C(p+q) = C(p) + C(q).
	srs := testSRS(t, 32)
	p, q := randPoly(20), randPoly(25)
	cp, err := Commit(srs, p)
	if err != nil {
		t.Fatal(err)
	}
	cq, err := Commit(srs, q)
	if err != nil {
		t.Fatal(err)
	}
	cpq, err := Commit(srs, poly.Add(p, q))
	if err != nil {
		t.Fatal(err)
	}
	sum := bn254.G1Add(&cp, &cq)
	if !cpq.Equal(&sum) {
		t.Fatal("commitment homomorphism fails")
	}
}

func TestCommitDegreeBound(t *testing.T) {
	srs := testSRS(t, 8)
	if _, err := Commit(srs, randPoly(9)); err == nil {
		t.Fatal("commit beyond SRS size should fail")
	}
	// Exactly at the bound is fine.
	if _, err := Commit(srs, randPoly(8)); err != nil {
		t.Fatalf("commit at SRS size: %v", err)
	}
}

func TestBatchVerifySamePoint(t *testing.T) {
	srs := testSRS(t, 32)
	z := fr.MustRandom()
	rho := fr.MustRandom()
	var cs []Commitment
	var proofs []OpeningProof
	for i := 0; i < 4; i++ {
		p := randPoly(16 + i)
		c, err := Commit(srs, p)
		if err != nil {
			t.Fatal(err)
		}
		pr, err := Open(srs, p, &z)
		if err != nil {
			t.Fatal(err)
		}
		cs = append(cs, c)
		proofs = append(proofs, pr)
	}
	if err := BatchVerifySamePoint(srs, cs, &z, proofs, &rho); err != nil {
		t.Fatalf("valid batch rejected: %v", err)
	}
	// Corrupt one claimed value.
	proofs[2].ClaimedValue.Add(&proofs[2].ClaimedValue, &[]fr.Element{fr.One()}[0])
	if err := BatchVerifySamePoint(srs, cs, &z, proofs, &rho); err == nil {
		t.Fatal("batch with corrupted value accepted")
	}
	if err := BatchVerifySamePoint(srs, cs[:2], &z, proofs, &rho); err == nil {
		t.Fatal("length mismatch not reported")
	}
	if err := BatchVerifySamePoint(srs, nil, &z, nil, &rho); err != nil {
		t.Fatalf("empty batch should verify trivially: %v", err)
	}
}

func TestCeremonyProducesValidSRS(t *testing.T) {
	cer, err := NewCeremony(16)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if err := cer.Contribute([]byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	srs, err := cer.SRS()
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyChain(cer.Contributions(), srs); err != nil {
		t.Fatalf("honest chain rejected: %v", err)
	}

	// The resulting SRS must actually work for commit/open/verify.
	p := randPoly(10)
	c, err := Commit(srs, p)
	if err != nil {
		t.Fatal(err)
	}
	z := fr.MustRandom()
	proof, err := Open(srs, p, &z)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(srs, &c, &z, &proof); err != nil {
		t.Fatalf("ceremony SRS does not verify proofs: %v", err)
	}
}

func TestCeremonyDetectsTampering(t *testing.T) {
	cer, err := NewCeremony(8)
	if err != nil {
		t.Fatal(err)
	}
	if err := cer.Contribute([]byte("a")); err != nil {
		t.Fatal(err)
	}
	if err := cer.Contribute([]byte("b")); err != nil {
		t.Fatal(err)
	}
	srs, err := cer.SRS()
	if err != nil {
		t.Fatal(err)
	}
	contribs := cer.Contributions()

	// Tamper with a contribution's G2 half.
	badContribs := make([]Contribution, len(contribs))
	copy(badContribs, contribs)
	g2 := bn254.G2Generator()
	badContribs[1].SG2 = g2
	if err := VerifyChain(badContribs, srs); err == nil {
		t.Fatal("tampered chain accepted")
	}

	// Empty chain.
	if err := VerifyChain(nil, srs); err == nil {
		t.Fatal("empty chain accepted")
	}

	// Chain head not matching final SRS.
	g1 := bn254.G1Generator()
	badSRS := &SRS{G1: append([]bn254.G1Affine{}, srs.G1...), G2: srs.G2}
	badSRS.G1[1] = g1
	if err := VerifyChain(contribs, badSRS); err == nil {
		t.Fatal("mismatched final SRS accepted")
	}

	// Ceremony with zero contributions cannot finalize.
	empty, err := NewCeremony(8)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := empty.SRS(); err == nil {
		t.Fatal("ceremony without contributions finalized")
	}
}

func BenchmarkSRSGen(b *testing.B) {
	tau := fr.NewElement(0x9999)
	for _, n := range []int{1 << 10, 1 << 14} {
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := NewSRSFromSecret(n, &tau); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestSRSSerializationRoundTrip(t *testing.T) {
	srs := testSRS(t, 16)
	data := srs.Bytes()
	back, err := SRSFromBytes(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(back.G1) != len(srs.G1) {
		t.Fatal("power count changed")
	}
	for i := range srs.G1 {
		if !back.G1[i].Equal(&srs.G1[i]) {
			t.Fatalf("g1[%d] mismatch", i)
		}
	}
	for i := range srs.G2 {
		if !back.G2[i].Equal(&srs.G2[i]) {
			t.Fatalf("g2[%d] mismatch", i)
		}
	}
	// The deserialized SRS works.
	p := randPoly(10)
	c, err := Commit(back, p)
	if err != nil {
		t.Fatal(err)
	}
	z := fr.MustRandom()
	proof, err := Open(back, p, &z)
	if err != nil {
		t.Fatal(err)
	}
	if err := Verify(back, &c, &z, &proof); err != nil {
		t.Fatal(err)
	}
}

func TestSRSFromBytesRejectsTampering(t *testing.T) {
	srs := testSRS(t, 8)
	good := srs.Bytes()

	// Truncated.
	if _, err := SRSFromBytes(good[:50]); err == nil {
		t.Fatal("truncated SRS accepted")
	}
	// Bad magic.
	bad := append([]byte{}, good...)
	bad[0] ^= 0xff
	if _, err := SRSFromBytes(bad); err == nil {
		t.Fatal("bad magic accepted")
	}
	// Corrupt a G1 power: either decode fails (off-curve) or the power
	// chain check fails.
	bad = append([]byte{}, good...)
	off := len(srsMagic) + 8 + 64*3 // inside G1[3]
	bad[off] ^= 0x01
	if _, err := SRSFromBytes(bad); err == nil {
		t.Fatal("corrupted power accepted")
	}
	// Swap two powers (all points stay on-curve): the pairing check must
	// catch it.
	bad = append([]byte{}, good...)
	a := len(srsMagic) + 8 + 64*2
	b := len(srsMagic) + 8 + 64*5
	for i := 0; i < 64; i++ {
		bad[a+i], bad[b+i] = bad[b+i], bad[a+i]
	}
	if _, err := SRSFromBytes(bad); err == nil {
		t.Fatal("swapped powers accepted")
	}
}
