// Package kzg implements the KZG (Kate–Zaverucha–Goldberg) polynomial
// commitment scheme over BN254, the commitment layer underneath Plonk.
//
// It also implements a simulated multi-party "Powers of Tau" ceremony
// (Ceremony) standing in for the Perpetual Powers of Tau used by the paper:
// each contributor multiplies the structured reference string by powers of
// a fresh secret, and publishes an update proof that lets anyone verify the
// chain without trusting any single contributor.
package kzg

import (
	"crypto/rand"
	"errors"
	"fmt"
	"sync"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/poly"
)

// Common errors returned by this package.
var (
	ErrPolynomialTooLarge = errors.New("kzg: polynomial degree exceeds SRS size")
	ErrInvalidSRS         = errors.New("kzg: invalid SRS")
	ErrVerifyFailed       = errors.New("kzg: proof verification failed")
)

// SRS is a structured reference string: powers of a secret τ in G1 plus
// [1]G2 and [τ]G2. The secret itself is "toxic waste" and is never stored.
type SRS struct {
	// G1 holds [τ^i]G1 for i = 0 … size-1.
	G1 []bn254.G1Affine
	// G2 holds [1]G2 and [τ]G2.
	G2 [2]bn254.G2Affine

	// Verifier caches, built once on first Verify: Miller-loop line tables
	// for the two fixed G2 points and a fixed-base table for the G1
	// generator. Unexported so serialization round-trips stay unchanged.
	verifyOnce sync.Once
	g2Lines    [2]*bn254.G2LinePrecomp
	g1Table    *bn254.G1FixedBaseTable
}

// verifierCache returns the fixed-point tables for Verify, building them
// on first use. The G2 points of an SRS never change, so every subsequent
// pairing check skips all G2 arithmetic.
func (s *SRS) verifierCache() ([2]*bn254.G2LinePrecomp, *bn254.G1FixedBaseTable) {
	s.verifyOnce.Do(func() {
		s.g2Lines[0] = bn254.NewG2LinePrecomp(&s.G2[0])
		s.g2Lines[1] = bn254.NewG2LinePrecomp(&s.G2[1])
		if s.g1Table == nil {
			g1 := bn254.G1Generator()
			s.g1Table = bn254.NewG1FixedBaseTable(&g1)
		}
	})
	return s.g2Lines, s.g1Table
}

// MaxDegree returns the largest polynomial degree this SRS can commit to.
func (s *SRS) MaxDegree() int { return len(s.G1) - 1 }

// NewSRSFromSecret derives an SRS of the given size directly from a known
// secret τ. Exposed for tests and as the ceremony's building block; real
// deployments must use Setup or a Ceremony so τ is never known to anyone.
func NewSRSFromSecret(size int, tau *fr.Element) (*SRS, error) {
	if size < 2 {
		return nil, fmt.Errorf("kzg: srs size must be at least 2, got %d", size)
	}
	scalars := fr.Powers(tau, size)
	g1 := bn254.G1Generator()
	table := bn254.NewG1FixedBaseTable(&g1)
	// The table is keyed to the generator, exactly what Verify's [y]G1
	// computation needs — seed the verifier cache with it.
	srs := &SRS{G1: table.MulMany(scalars), g1Table: table}
	g2 := bn254.G2Generator()
	srs.G2[0] = g2
	srs.G2[1] = bn254.G2ScalarMul(&g2, tau)
	return srs, nil
}

// Setup generates an SRS from fresh randomness and discards the secret:
// τ is zeroized before Setup returns, whatever path it takes.
func Setup(size int) (*SRS, error) {
	tau, err := fr.Random(rand.Reader)
	if err != nil {
		return nil, fmt.Errorf("kzg: setup: %w", err)
	}
	defer tau.SetZero()
	srs, err := NewSRSFromSecret(size, &tau)
	if err != nil {
		return nil, fmt.Errorf("kzg: setup: %w", err)
	}
	return srs, nil
}

// Commitment is a KZG commitment: a single G1 point, independent of the
// committed polynomial's degree.
type Commitment = bn254.G1Affine

// OpeningProof attests that the committed polynomial evaluates to
// ClaimedValue at some point; the proof is the single point [q(τ)]G1 for
// the quotient q(X) = (p(X) - y)/(X - z).
type OpeningProof struct {
	Quotient     bn254.G1Affine
	ClaimedValue fr.Element
}

// Commit returns the commitment [p(τ)]G1.
func Commit(srs *SRS, p poly.Polynomial) (Commitment, error) {
	p = p.Trim()
	if len(p) > len(srs.G1) {
		return Commitment{}, fmt.Errorf("%w: degree %d > %d", ErrPolynomialTooLarge, len(p)-1, srs.MaxDegree())
	}
	return bn254.G1MSM(srs.G1[:len(p)], p)
}

// Open produces an opening proof for p at point z.
func Open(srs *SRS, p poly.Polynomial, z *fr.Element) (OpeningProof, error) {
	q, y := poly.DivideByLinear(p, z)
	c, err := Commit(srs, q)
	if err != nil {
		return OpeningProof{}, fmt.Errorf("kzg: committing quotient: %w", err)
	}
	return OpeningProof{Quotient: c, ClaimedValue: y}, nil
}

// Verify checks an opening proof: e(C - [y]G1 + z·π, G2) · e(-π, [τ]G2) == 1.
//
// All fixed-point work is cached on the SRS after the first call: [y]G1
// goes through the generator's fixed-base table, the combination
// C - [y]G1 + z·π is a single three-term MSM, and the two G2 arguments
// use precomputed Miller-loop line tables.
func Verify(srs *SRS, c *Commitment, z *fr.Element, proof *OpeningProof) error {
	lines, table := srs.verifierCache()
	yG1 := table.Mul(&proof.ClaimedValue)

	one := fr.One()
	var negOne fr.Element
	negOne.Neg(&one)
	f, err := bn254.G1MSM(
		[]bn254.G1Affine{*c, yG1, proof.Quotient},
		[]fr.Element{one, negOne, *z},
	)
	if err != nil {
		return fmt.Errorf("kzg: %w", err)
	}

	var negPi bn254.G1Affine
	negPi.Neg(&proof.Quotient)

	ok, err := bn254.PairingCheckPrecomp(
		[]bn254.G1Affine{f, negPi},
		lines[:],
	)
	if err != nil {
		return fmt.Errorf("kzg: %w", err)
	}
	if !ok {
		return ErrVerifyFailed
	}
	return nil
}

// BatchVerifySamePoint checks several openings at the same point z with a
// single pairing check, by taking a random linear combination of the
// individual checks with powers of rho (which the caller should derive from
// a transcript).
func BatchVerifySamePoint(srs *SRS, cs []Commitment, z *fr.Element, proofs []OpeningProof, rho *fr.Element) error {
	if len(cs) != len(proofs) {
		return fmt.Errorf("kzg: %d commitments, %d proofs", len(cs), len(proofs))
	}
	if len(cs) == 0 {
		return nil
	}
	// Fold commitments, values and quotients with powers of rho.
	coeff := fr.One()
	var foldC bn254.G1Jac
	var foldQ bn254.G1Jac
	foldC.SetInfinity()
	foldQ.SetInfinity()
	foldY := fr.Zero()
	for i := range cs {
		var t bn254.G1Jac
		t.ScalarMul(&cs[i], &coeff)
		foldC.AddAssign(&t)
		t.ScalarMul(&proofs[i].Quotient, &coeff)
		foldQ.AddAssign(&t)
		var ty fr.Element
		ty.Mul(&proofs[i].ClaimedValue, &coeff)
		foldY.Add(&foldY, &ty)
		coeff.Mul(&coeff, rho)
	}
	var cAff, qAff bn254.G1Affine
	cAff.FromJacobian(&foldC)
	qAff.FromJacobian(&foldQ)
	folded := OpeningProof{Quotient: qAff, ClaimedValue: foldY}
	return Verify(srs, &cAff, z, &folded)
}
