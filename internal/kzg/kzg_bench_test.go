package kzg

import (
	"fmt"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/poly"
)

func BenchmarkCommit(b *testing.B) {
	const maxLog = 16
	tau := fr.NewElement(0x5eed)
	srs, err := NewSRSFromSecret((1<<maxLog)+1, &tau)
	if err != nil {
		b.Fatal(err)
	}
	for _, logN := range []int{10, 12, 14, 16} {
		n := 1 << logN
		p := make(poly.Polynomial, n)
		for i := range p {
			p[i] = fr.NewElement(uint64(i)*2654435761 + 1)
		}
		b.Run(fmt.Sprintf("2^%d", logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := Commit(srs, p); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
