// Package storage implements the decentralized storage substrate of ZKDET:
// a content-addressed network of nodes with Kademlia-style DHT routing
// (XOR metric, k-buckets, iterative lookup) standing in for IPFS.
//
// As in the paper's model (§III-A, §IV-A): a dataset's URI is the digest of
// its (encrypted) content, so the URI doubles as a hash commitment; any
// tampering changes the digest and is detected on retrieval; data is
// publicly retrievable by anyone who knows the URI; and content is only
// removed at its owner's request.
package storage

import (
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
	"math/bits"
	"sort"
	"sync"
)

// URI is a content address: the SHA-256 digest of the stored bytes.
type URI [32]byte

// String returns the hex form of the URI.
func (u URI) String() string { return hex.EncodeToString(u[:]) }

// URIOf computes the content address of a byte string.
func URIOf(data []byte) URI { return sha256.Sum256(data) }

// Errors returned by the network.
var (
	ErrNotFound = errors.New("storage: content not found")
	ErrTampered = errors.New("storage: content digest mismatch")
	ErrNotOwner = errors.New("storage: only the owner may remove content")
	ErrNoNodes  = errors.New("storage: network has no nodes")
)

// nodeID is a DHT node identifier in the same 256-bit space as URIs.
type nodeID [32]byte

func xorDistanceBucket(a, b [32]byte) int {
	// Index of the highest differing bit (0..255); 256 when equal.
	for i := 0; i < 32; i++ {
		x := a[i] ^ b[i]
		if x != 0 {
			return i*8 + bits.LeadingZeros8(x)
		}
	}
	return 256
}

func xorLess(target [32]byte, a, b [32]byte) bool {
	for i := 0; i < 32; i++ {
		da := target[i] ^ a[i]
		db := target[i] ^ b[i]
		if da != db {
			return da < db
		}
	}
	return false
}

// node is one storage peer: a blob store plus a k-bucket routing table.
type node struct {
	id      nodeID
	blobs   map[URI][]byte
	owners  map[URI]string
	buckets [257][]*node // peers by shared-prefix bucket
}

const bucketSize = 8

func (n *node) addPeer(p *node) {
	if p == n {
		return
	}
	b := xorDistanceBucket(n.id, p.id)
	for _, existing := range n.buckets[b] {
		if existing == p {
			return
		}
	}
	if len(n.buckets[b]) < bucketSize {
		n.buckets[b] = append(n.buckets[b], p)
	}
}

// closestKnown returns up to k peers from n's routing table closest to the
// target, possibly including n itself.
func (n *node) closestKnown(target [32]byte, k int) []*node {
	var cands []*node
	cands = append(cands, n)
	for _, b := range n.buckets {
		cands = append(cands, b...)
	}
	sort.Slice(cands, func(i, j int) bool {
		return xorLess(target, [32]byte(cands[i].id), [32]byte(cands[j].id))
	})
	if len(cands) > k {
		cands = cands[:k]
	}
	return cands
}

// Network is a simulated DHT storage network.
type Network struct {
	mu    sync.Mutex
	nodes []*node // guarded by mu
	// replication is the number of closest nodes a blob is stored on;
	// immutable after construction.
	replication int
	// lookupHops counts routing hops, exposed for observability.
	lookupHops int // guarded by mu
}

// NewNetwork creates a network of n nodes with deterministic IDs and
// Kademlia-style routing tables.
func NewNetwork(n int) (*Network, error) {
	if n <= 0 {
		return nil, ErrNoNodes
	}
	net := &Network{replication: 3}
	if net.replication > n {
		net.replication = n
	}
	for i := 0; i < n; i++ {
		id := sha256.Sum256([]byte(fmt.Sprintf("zkdet/storage-node/%d", i)))
		net.nodes = append(net.nodes, &node{
			id:     nodeID(id),
			blobs:  make(map[URI][]byte),
			owners: make(map[URI]string),
		})
	}
	// Populate routing tables: every node learns every other (small
	// networks) — k-buckets cap the per-bucket fanout as in Kademlia.
	for _, a := range net.nodes {
		for _, b := range net.nodes {
			a.addPeer(b)
		}
	}
	return net, nil
}

// lookup performs an iterative closest-node search from an arbitrary entry
// node, counting hops; caller holds net.mu.
func (net *Network) lookup(target [32]byte) []*node {
	cur := net.nodes[0]
	for {
		net.lookupHops++
		best := cur.closestKnown(target, 1)[0]
		if best == cur {
			break
		}
		cur = best
	}
	return cur.closestKnown(target, net.replication)
}

// Put stores data under its content address on the replication set of
// closest nodes, recording the owner, and returns the URI.
func (net *Network) Put(owner string, data []byte) (URI, error) {
	net.mu.Lock()
	defer net.mu.Unlock()
	if len(net.nodes) == 0 {
		return URI{}, ErrNoNodes
	}
	uri := URIOf(data)
	holders := net.lookup([32]byte(uri))
	cp := make([]byte, len(data))
	copy(cp, data)
	for _, h := range holders {
		h.blobs[uri] = cp
		h.owners[uri] = owner
	}
	return uri, nil
}

// Get retrieves content by URI from the DHT, verifying its digest.
func (net *Network) Get(uri URI) ([]byte, error) {
	net.mu.Lock()
	defer net.mu.Unlock()
	if len(net.nodes) == 0 {
		return nil, ErrNoNodes
	}
	for _, h := range net.lookup([32]byte(uri)) {
		if data, ok := h.blobs[uri]; ok {
			if URIOf(data) != uri {
				return nil, ErrTampered
			}
			out := make([]byte, len(data))
			copy(out, data)
			return out, nil
		}
	}
	// Fall back to a full sweep (replication-set drift in tiny networks).
	for _, n := range net.nodes {
		if data, ok := n.blobs[uri]; ok {
			if URIOf(data) != uri {
				return nil, ErrTampered
			}
			out := make([]byte, len(data))
			copy(out, data)
			return out, nil
		}
	}
	return nil, fmt.Errorf("%w: %s", ErrNotFound, uri)
}

// Remove deletes content at the owner's request (the only allowed removal
// per the threat model).
func (net *Network) Remove(owner string, uri URI) error {
	net.mu.Lock()
	defer net.mu.Unlock()
	found := false
	for _, n := range net.nodes {
		if _, ok := n.blobs[uri]; !ok {
			continue
		}
		if n.owners[uri] != owner {
			return ErrNotOwner
		}
		found = true
	}
	if !found {
		return fmt.Errorf("%w: %s", ErrNotFound, uri)
	}
	for _, n := range net.nodes {
		delete(n.blobs, uri)
		delete(n.owners, uri)
	}
	return nil
}

// Corrupt flips a byte of the stored blob on every holder — test hook for
// the tamper-evidence property.
func (net *Network) Corrupt(uri URI) bool {
	net.mu.Lock()
	defer net.mu.Unlock()
	hit := false
	for _, n := range net.nodes {
		if data, ok := n.blobs[uri]; ok && len(data) > 0 {
			data[0] ^= 0xff
			hit = true
		}
	}
	return hit
}

// Stats reports network-level counters.
type Stats struct {
	Nodes      int
	Blobs      int
	LookupHops int
}

// Stats returns current counters.
func (net *Network) Stats() Stats {
	net.mu.Lock()
	defer net.mu.Unlock()
	seen := map[URI]bool{}
	for _, n := range net.nodes {
		for u := range n.blobs {
			seen[u] = true
		}
	}
	return Stats{Nodes: len(net.nodes), Blobs: len(seen), LookupHops: net.lookupHops}
}

// FailNode takes a node offline (drops its blobs and removes it from every
// routing table), simulating churn. Content within the replication factor
// survives; Get transparently finds surviving replicas.
func (net *Network) FailNode(i int) error {
	net.mu.Lock()
	defer net.mu.Unlock()
	if i < 0 || i >= len(net.nodes) {
		return fmt.Errorf("storage: no node %d", i)
	}
	failed := net.nodes[i]
	net.nodes = append(net.nodes[:i], net.nodes[i+1:]...)
	if len(net.nodes) == 0 {
		return ErrNoNodes
	}
	for _, n := range net.nodes {
		for b := range n.buckets {
			peers := n.buckets[b][:0]
			for _, p := range n.buckets[b] {
				if p != failed {
					peers = append(peers, p)
				}
			}
			n.buckets[b] = peers
		}
	}
	return nil
}

// Repair re-replicates every blob onto its current closest nodes, restoring
// the replication factor after churn.
func (net *Network) Repair() int {
	net.mu.Lock()
	defer net.mu.Unlock()
	type blob struct {
		data  []byte
		owner string
	}
	blobs := map[URI]blob{}
	for _, n := range net.nodes {
		for u, d := range n.blobs {
			blobs[u] = blob{data: d, owner: n.owners[u]}
		}
	}
	moved := 0
	for u, bl := range blobs {
		for _, h := range net.lookup([32]byte(u)) {
			if _, ok := h.blobs[u]; !ok {
				h.blobs[u] = bl.data
				h.owners[u] = bl.owner
				moved++
			}
		}
	}
	return moved
}
