package storage

import (
	"bytes"
	"errors"
	"testing"
	"testing/quick"
)

func TestPutGetRoundTrip(t *testing.T) {
	net, err := NewNetwork(16)
	if err != nil {
		t.Fatal(err)
	}
	data := []byte("encrypted dataset bytes")
	uri, err := net.Put("alice", data)
	if err != nil {
		t.Fatal(err)
	}
	if uri != URIOf(data) {
		t.Fatal("URI is not the content digest")
	}
	got, err := net.Get(uri)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("retrieved data differs")
	}
	// Returned slice must be a copy.
	got[0] ^= 0xff
	again, err := net.Get(uri)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(again, data) {
		t.Fatal("caller mutation leaked into the store")
	}
}

func TestGetUnknown(t *testing.T) {
	net, err := NewNetwork(4)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Get(URIOf([]byte("nothing"))); !errors.Is(err, ErrNotFound) {
		t.Fatalf("want ErrNotFound, got %v", err)
	}
}

func TestTamperDetection(t *testing.T) {
	net, err := NewNetwork(8)
	if err != nil {
		t.Fatal(err)
	}
	uri, err := net.Put("alice", []byte("original"))
	if err != nil {
		t.Fatal(err)
	}
	if !net.Corrupt(uri) {
		t.Fatal("corrupt hook found nothing")
	}
	if _, err := net.Get(uri); !errors.Is(err, ErrTampered) {
		t.Fatalf("want ErrTampered, got %v", err)
	}
}

func TestOwnerOnlyRemoval(t *testing.T) {
	net, err := NewNetwork(8)
	if err != nil {
		t.Fatal(err)
	}
	uri, err := net.Put("alice", []byte("dataset"))
	if err != nil {
		t.Fatal(err)
	}
	if err := net.Remove("mallory", uri); !errors.Is(err, ErrNotOwner) {
		t.Fatalf("non-owner removal: %v", err)
	}
	if err := net.Remove("alice", uri); err != nil {
		t.Fatal(err)
	}
	if _, err := net.Get(uri); !errors.Is(err, ErrNotFound) {
		t.Fatal("removed content still retrievable")
	}
	if err := net.Remove("alice", uri); !errors.Is(err, ErrNotFound) {
		t.Fatal("double removal succeeded")
	}
}

func TestReplication(t *testing.T) {
	net, err := NewNetwork(16)
	if err != nil {
		t.Fatal(err)
	}
	uri, err := net.Put("a", []byte("replicated blob"))
	if err != nil {
		t.Fatal(err)
	}
	holders := 0
	for _, n := range net.nodes {
		if _, ok := n.blobs[uri]; ok {
			holders++
		}
	}
	if holders != net.replication {
		t.Fatalf("blob on %d nodes, want %d", holders, net.replication)
	}
}

func TestSingleNodeNetwork(t *testing.T) {
	net, err := NewNetwork(1)
	if err != nil {
		t.Fatal(err)
	}
	uri, err := net.Put("a", []byte("x"))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := net.Get(uri); err != nil {
		t.Fatal(err)
	}
}

func TestNewNetworkRejectsZeroNodes(t *testing.T) {
	if _, err := NewNetwork(0); !errors.Is(err, ErrNoNodes) {
		t.Fatal("zero-node network created")
	}
}

func TestStats(t *testing.T) {
	net, err := NewNetwork(8)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		if _, err := net.Put("o", []byte{byte(i)}); err != nil {
			t.Fatal(err)
		}
	}
	s := net.Stats()
	if s.Nodes != 8 || s.Blobs != 5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.LookupHops == 0 {
		t.Fatal("no lookup hops recorded")
	}
}

func TestQuickContentAddressing(t *testing.T) {
	net, err := NewNetwork(8)
	if err != nil {
		t.Fatal(err)
	}
	prop := func(data []byte) bool {
		if len(data) == 0 {
			data = []byte{0}
		}
		uri, err := net.Put("q", data)
		if err != nil {
			return false
		}
		got, err := net.Get(uri)
		return err == nil && bytes.Equal(got, data)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestNodeFailureAndRepair(t *testing.T) {
	net, err := NewNetwork(8)
	if err != nil {
		t.Fatal(err)
	}
	uri, err := net.Put("alice", []byte("churn-resilient blob"))
	if err != nil {
		t.Fatal(err)
	}
	// Fail one replica holder: the blob must survive (replication = 3).
	failedHolders := 0
	for i := 0; i < len(net.nodes); i++ {
		if _, ok := net.nodes[i].blobs[uri]; ok {
			if err := net.FailNode(i); err != nil {
				t.Fatal(err)
			}
			failedHolders++
			break
		}
	}
	if failedHolders == 0 {
		t.Fatal("no holder found to fail")
	}
	if _, err := net.Get(uri); err != nil {
		t.Fatalf("blob lost after single node failure: %v", err)
	}
	// Repair restores the replication factor.
	moved := net.Repair()
	if moved == 0 {
		t.Fatal("repair moved nothing")
	}
	holders := 0
	for _, n := range net.nodes {
		if _, ok := n.blobs[uri]; ok {
			holders++
		}
	}
	if holders < net.replication {
		t.Fatalf("replication %d after repair, want ≥ %d", holders, net.replication)
	}
	// Failing an out-of-range node errors.
	if err := net.FailNode(99); err == nil {
		t.Fatal("failed phantom node")
	}
}
