package storage

import (
	"bytes"
	"fmt"
	"sort"
	"sync"
)

// BlobStore is the content-addressed storage interface the upper layers
// (core.Marketplace, the node gateway) program against. Three
// implementations exist: Network (the in-process simulated DHT), Store (a
// single node's local blob store), and p2p's transport-backed store that
// resolves misses from cluster peers. All of them report misses with a
// typed ErrNotFound — callers distinguish "nobody has it" from corruption
// (ErrTampered) with errors.Is.
type BlobStore interface {
	// Put stores data under its content address, recording the owner, and
	// returns the URI.
	Put(owner string, data []byte) (URI, error)
	// Get retrieves content by URI, verifying its digest. A miss wraps
	// ErrNotFound; a digest mismatch wraps ErrTampered.
	Get(uri URI) ([]byte, error)
	// Remove deletes content at the owner's request.
	Remove(owner string, uri URI) error
}

// LocalStore is the interface of one node's local blob store: BlobStore
// plus the inspection methods the p2p layer needs to serve peers (ownership
// lookups for replication, existence checks). Store implements it directly;
// the durable engine's logging wrapper (internal/snapshot.DurableBlobs)
// implements it by delegation, which is what lets a cluster member persist
// its blob half without the p2p layer knowing.
type LocalStore interface {
	BlobStore
	// Owner returns the recorded owner of a blob; ok is false on a miss.
	Owner(uri URI) (string, bool)
	// Has reports whether the store holds a blob.
	Has(uri URI) bool
	// Len reports the number of stored blobs.
	Len() int
}

// Interface conformance.
var (
	_ BlobStore  = (*Network)(nil)
	_ BlobStore  = (*Store)(nil)
	_ LocalStore = (*Store)(nil)
)

// Store is one node's local content-addressed blob store — the storage a
// single cluster member contributes. Unlike Network it has no routing; a
// p2p layer composes Stores across a transport so URIs resolve anywhere in
// the cluster. Safe for concurrent use.
type Store struct {
	mu     sync.Mutex
	blobs  map[URI][]byte // guarded by mu
	owners map[URI]string // guarded by mu
}

// NewStore returns an empty local store.
func NewStore() *Store {
	return &Store{blobs: make(map[URI][]byte), owners: make(map[URI]string)}
}

// Put stores data under its content address and returns the URI.
func (s *Store) Put(owner string, data []byte) (URI, error) {
	uri := URIOf(data)
	cp := make([]byte, len(data))
	copy(cp, data)
	s.mu.Lock()
	s.blobs[uri] = cp
	s.owners[uri] = owner
	s.mu.Unlock()
	return uri, nil
}

// Get retrieves content by URI, verifying its digest. Misses return a typed
// ErrNotFound (so a networked caller can fall through to peers); a digest
// mismatch returns ErrTampered.
func (s *Store) Get(uri URI) ([]byte, error) {
	s.mu.Lock()
	data, ok := s.blobs[uri]
	s.mu.Unlock()
	if !ok {
		return nil, fmt.Errorf("%w: %s", ErrNotFound, uri)
	}
	if URIOf(data) != uri {
		return nil, fmt.Errorf("%w: %s", ErrTampered, uri)
	}
	out := make([]byte, len(data))
	copy(out, data)
	return out, nil
}

// Owner returns the recorded owner of a blob; ok is false on a miss.
func (s *Store) Owner(uri URI) (string, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	owner, ok := s.owners[uri]
	return owner, ok
}

// Remove deletes content at the owner's request; removing someone else's
// blob returns ErrNotOwner, a miss returns ErrNotFound.
func (s *Store) Remove(owner string, uri URI) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	if _, ok := s.blobs[uri]; !ok {
		return fmt.Errorf("%w: %s", ErrNotFound, uri)
	}
	if s.owners[uri] != owner {
		return ErrNotOwner
	}
	delete(s.blobs, uri)
	delete(s.owners, uri)
	return nil
}

// Has reports whether the store holds a blob.
func (s *Store) Has(uri URI) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	_, ok := s.blobs[uri]
	return ok
}

// Len reports the number of stored blobs.
func (s *Store) Len() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.blobs)
}

// BlobExport is one exported blob: its content address, recorded owner,
// and bytes.
type BlobExport struct {
	URI   URI
	Owner string
	Data  []byte
}

// Export deep-copies every stored blob, sorted by URI so serializations of
// the same store are byte-identical — the blob half of a state snapshot.
func (s *Store) Export() []BlobExport {
	s.mu.Lock()
	defer s.mu.Unlock()
	out := make([]BlobExport, 0, len(s.blobs))
	for uri, data := range s.blobs {
		cp := make([]byte, len(data))
		copy(cp, data)
		out = append(out, BlobExport{URI: uri, Owner: s.owners[uri], Data: cp})
	}
	sort.Slice(out, func(i, j int) bool {
		return bytes.Compare(out[i].URI[:], out[j].URI[:]) < 0
	})
	return out
}

// Corrupt flips a byte of a stored blob — test hook for tamper evidence.
func (s *Store) Corrupt(uri URI) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	data, ok := s.blobs[uri]
	if !ok || len(data) == 0 {
		return false
	}
	data[0] ^= 0xff
	return true
}
