package circuit

import (
	"math/big"

	"github.com/zkdet/zkdet/internal/fr"
)

// This file implements the gadget library of §IV-D: the "fundamental
// cryptographic and mathematical gadgets" predicates are composed from.
// Cryptographic gadgets (MiMC, Poseidon, Merkle) live next to their native
// implementations and build on these primitives.

// IsZero returns a boolean variable that is 1 iff x == 0.
//
// It uses the classic two-constraint construction: allocate y (the claimed
// bit) and m (a pseudo-inverse of x); constrain y·x = 0 and y = 1 - m·x.
func (b *Builder) IsZero(x Variable) Variable {
	vx := b.values[x.id]
	var yVal, mVal fr.Element
	if vx.IsZero() {
		yVal.SetOne()
	} else {
		mVal.Inverse(&vx)
	}
	y := b.newVar(yVal)
	m := b.newVar(mVal)
	b.markHint(y)
	b.markHint(m)
	// y·x = 0
	b.gates = append(b.gates, gateTmpl{qM: frOne, a: y.id, b: x.id, c: y.id})
	// m·x + y - 1 = 0
	b.gates = append(b.gates, gateTmpl{qM: frOne, qO: frOne, qC: frNeg(frOne), a: m.id, b: x.id, c: y.id})
	// y is boolean by the two-gate structural argument (y·x=0 forces y=0
	// whenever x≠0; m·x+y=1 forces y=1 when x=0); both gates must survive.
	b.auditStructBools = append(b.auditStructBools, AuditStructBool{
		Var: y.id, Gates: []int{len(b.gates) - 2, len(b.gates) - 1},
	})
	b.markBoolDerived(y)
	return y
}

// IsEqual returns 1 iff x == y.
func (b *Builder) IsEqual(x, y Variable) Variable {
	return b.IsZero(b.Sub(x, y))
}

// And returns x ∧ y for boolean inputs (callers must have asserted
// booleanity).
func (b *Builder) And(x, y Variable) Variable {
	b.markBoolUse(x, "And")
	b.markBoolUse(y, "And")
	out := b.Mul(x, y)
	b.markBoolDerived(out)
	return out
}

// Or returns x ∨ y for boolean inputs.
func (b *Builder) Or(x, y Variable) Variable {
	b.markBoolUse(x, "Or")
	b.markBoolUse(y, "Or")
	// x + y - x·y
	m := b.Mul(x, y)
	s := b.Add(x, y)
	out := b.Sub(s, m)
	b.markBoolDerived(out)
	return out
}

// Not returns ¬x for a boolean input.
func (b *Builder) Not(x Variable) Variable {
	b.markBoolUse(x, "Not")
	var minusOne fr.Element
	minusOne.Neg(&frOne)
	out := b.AddConst(b.MulConst(x, minusOne), frOne)
	b.markBoolDerived(out)
	return out
}

// Xor returns x ⊕ y for boolean inputs.
func (b *Builder) Xor(x, y Variable) Variable {
	b.markBoolUse(x, "Xor")
	b.markBoolUse(y, "Xor")
	// x + y - 2xy
	m := b.Mul(x, y)
	two := fr.NewElement(2)
	var minusTwo fr.Element
	minusTwo.Neg(&two)
	s := b.Add(x, y)
	out := b.Add(s, b.MulConst(m, minusTwo))
	b.markBoolDerived(out)
	return out
}

// Select returns cond ? a : b for a boolean cond.
func (b *Builder) Select(cond, a, bb Variable) Variable {
	b.markBoolUse(cond, "Select")
	d := b.Sub(a, bb)
	m := b.Mul(cond, d)
	return b.Add(bb, m)
}

// ToBits decomposes x into n little-endian boolean variables and constrains
// Σ 2^i·bit_i == x. It costs ~2n gates; n must cover the value's range for
// the witness to satisfy the constraints.
func (b *Builder) ToBits(x Variable, n int) []Variable {
	before := len(b.gates)
	vx := b.values[x.id]
	val := vx.BigInt()
	bits := make([]Variable, n)
	for i := 0; i < n; i++ {
		bit := fr.NewElement(uint64(val.Bit(i)))
		bits[i] = b.newVar(bit)
		b.markHint(bits[i])
		b.AssertBoolean(bits[i])
	}
	// Accumulate: acc_{i+1} = acc_i + 2^i·bit_i, then acc == x.
	acc := b.MulConst(bits[0], frOne)
	coeff := new(big.Int).SetUint64(2)
	for i := 1; i < n; i++ {
		c := fr.FromBig(coeff)
		acc = b.Lc2(acc, frOne, bits[i], c)
		coeff.Lsh(coeff, 1)
	}
	b.AssertEqual(acc, x)
	b.auditRanges = append(b.auditRanges, AuditRange{
		Var: x.id, Bits: n, Booleans: n, Start: before, End: len(b.gates),
	})
	return bits
}

// FromBits recomposes little-endian boolean variables into a field element.
func (b *Builder) FromBits(bits []Variable) Variable {
	if len(bits) == 0 {
		return b.Zero()
	}
	acc := b.MulConst(bits[0], frOne)
	coeff := new(big.Int).SetUint64(2)
	for i := 1; i < len(bits); i++ {
		c := fr.FromBig(coeff)
		acc = b.Lc2(acc, frOne, bits[i], c)
		coeff.Lsh(coeff, 1)
	}
	return acc
}

// AssertRange constrains x < 2^n. With lookups enabled it decomposes x
// into ⌈n/k⌉ k-bit limbs, each checked by one range-table lookup row;
// classically it bit-decomposes (one boolean gate per bit).
func (b *Builder) AssertRange(x Variable, n int) {
	before := len(b.gates)
	if b.lookupBits == 0 {
		b.ToBits(x, n)
	} else {
		b.assertRangeLookup(x, n)
	}
	b.rangeGates += len(b.gates) - before
}

// assertRangeLookup is the lookup lowering of AssertRange. The final limb
// of width w < k is checked by looking up limb·2^(k−w), which lies in the
// table exactly when limb < 2^w.
func (b *Builder) assertRangeLookup(x Variable, n int) {
	if n <= 0 {
		b.Fail("circuit: AssertRange with %d bits", n)
		return
	}
	before := len(b.gates)
	k := b.lookupBits
	lookupLimb := func(limb Variable, width int) {
		if width == k {
			b.Lookup(limb)
			return
		}
		scale := fr.FromBig(new(big.Int).Lsh(big.NewInt(1), uint(k-width)))
		b.Lookup(b.MulConst(limb, scale))
	}
	if n <= k {
		lookupLimb(x, n)
		b.auditRanges = append(b.auditRanges, AuditRange{
			Var: x.id, Bits: n, Lookups: 1, Start: before, End: len(b.gates),
		})
		return
	}
	nLimbs := (n + k - 1) / k
	lastW := n - (nLimbs-1)*k
	val := b.values[x.id].BigInt()
	mask := new(big.Int).Sub(new(big.Int).Lsh(big.NewInt(1), uint(k)), big.NewInt(1))
	limbs := make([]Variable, nLimbs)
	for j := 0; j < nLimbs; j++ {
		lv := new(big.Int).Rsh(val, uint(j*k))
		lv.And(lv, mask)
		limbs[j] = b.newVar(fr.FromBig(lv))
		b.markHint(limbs[j])
		w := k
		if j == nLimbs-1 {
			w = lastW
		}
		lookupLimb(limbs[j], w)
	}
	// Recompose: Σ limb_j·2^{j·k} == x.
	base := new(big.Int).Lsh(big.NewInt(1), uint(k))
	coeff := new(big.Int).Set(base)
	acc := b.Lc2(limbs[0], frOne, limbs[1], fr.FromBig(coeff))
	for j := 2; j < nLimbs; j++ {
		coeff.Mul(coeff, base)
		acc = b.Lc2(acc, frOne, limbs[j], fr.FromBig(coeff))
	}
	b.AssertEqual(acc, x)
	b.auditRanges = append(b.auditRanges, AuditRange{
		Var: x.id, Bits: n, Lookups: nLimbs, Start: before, End: len(b.gates),
	})
}

// topBit returns bit n of x for x < 2^{n+1} — the sign probe behind the
// comparison gadgets. With lookups it allocates (high, low) witnesses with
// x = high·2^n + low, high boolean and low range-checked by lookups,
// instead of a full bit decomposition.
func (b *Builder) topBit(x Variable, n int) Variable {
	if b.lookupBits == 0 {
		return b.ToBits(x, n+1)[n]
	}
	before := len(b.gates)
	val := b.values[x.id].BigInt()
	highVal := new(big.Int).Rsh(val, uint(n))
	lowVal := new(big.Int).Sub(val, new(big.Int).Lsh(highVal, uint(n)))
	high := b.newVar(fr.FromBig(highVal))
	low := b.newVar(fr.FromBig(lowVal))
	b.markHint(high)
	b.markHint(low)
	b.AssertBoolean(high)
	pow := fr.FromBig(new(big.Int).Lsh(big.NewInt(1), uint(n)))
	recon := b.Lc2(high, pow, low, frOne)
	b.AssertEqual(recon, x)
	b.assertRangeLookup(low, n)
	b.rangeGates += len(b.gates) - before
	return high
}

// IsLess returns 1 iff x < y, treating both as n-bit unsigned integers
// (callers must ensure x, y < 2^n).
func (b *Builder) IsLess(x, y Variable, n int) Variable {
	// z = 2^n + x - y ∈ (0, 2^{n+1}); bit n of z is 1 iff x >= y.
	pow := fr.FromBig(new(big.Int).Lsh(big.NewInt(1), uint(n)))
	z := b.AddConst(b.Sub(x, y), pow)
	return b.Not(b.topBit(z, n))
}

// IsLessOrEqual returns 1 iff x <= y for n-bit values.
func (b *Builder) IsLessOrEqual(x, y Variable, n int) Variable {
	lt := b.IsLess(y, x, n) // y < x
	return b.Not(lt)
}

// AssertLess constrains x < y for n-bit values.
func (b *Builder) AssertLess(x, y Variable, n int) {
	lt := b.IsLess(x, y, n)
	b.AssertConst(lt, frOne)
}

// AssertLessOrEqual constrains x <= y for n-bit values.
func (b *Builder) AssertLessOrEqual(x, y Variable, n int) {
	le := b.IsLessOrEqual(x, y, n)
	b.AssertConst(le, frOne)
}

// Exp returns x^e for a fixed public exponent via square-and-multiply
// (log2(e) squarings).
func (b *Builder) Exp(x Variable, e uint64) Variable {
	if e == 0 {
		return b.One()
	}
	// Find the highest bit.
	hi := 63
	for hi > 0 && (e>>uint(hi))&1 == 0 {
		hi--
	}
	acc := x
	for i := hi - 1; i >= 0; i-- {
		acc = b.Square(acc)
		if (e>>uint(i))&1 == 1 {
			acc = b.Mul(acc, x)
		}
	}
	return acc
}

// Sum returns Σ xs.
func (b *Builder) Sum(xs []Variable) Variable {
	if len(xs) == 0 {
		return b.Zero()
	}
	acc := xs[0]
	for _, x := range xs[1:] {
		acc = b.Add(acc, x)
	}
	return acc
}

// InnerProduct returns Σ xs[i]·ys[i]; the core of the matrix and ML gadgets.
func (b *Builder) InnerProduct(xs, ys []Variable) Variable {
	if len(xs) != len(ys) {
		b.Fail("circuit: inner product length mismatch (%d vs %d)", len(xs), len(ys))
		return b.Zero()
	}
	if len(xs) == 0 {
		return b.Zero()
	}
	acc := b.Mul(xs[0], ys[0])
	for i := 1; i < len(xs); i++ {
		acc = b.MulAdd(xs[i], ys[i], acc)
	}
	return acc
}

// MatVecMul returns M·v for an r×c matrix (row-major slices of Variables).
func (b *Builder) MatVecMul(m [][]Variable, v []Variable) []Variable {
	out := make([]Variable, len(m))
	for i, row := range m {
		out[i] = b.InnerProduct(row, v)
	}
	return out
}

// Fixed-point arithmetic: values are integers scaled by 2^FixedShift,
// letting ML circuits (§IV-E) approximate reals in the field. Negative
// numbers use the field's high range (two's-complement-like); comparisons
// on fixed-point values must go through the signed gadgets below.

// FixedShift is the binary scaling factor of fixed-point gadget values.
const FixedShift = 16

// FixedFromFloat converts a float to its fixed-point field representation.
func FixedFromFloat(f float64) fr.Element {
	scaled := int64(f * (1 << FixedShift))
	return fr.NewFromInt64(scaled)
}

// FixedToFloat converts a fixed-point field value back to a float
// (interpreting the top half of the field as negatives).
func FixedToFloat(e fr.Element) float64 {
	half := new(big.Int).Rsh(fr.Modulus(), 1)
	v := e.BigInt()
	neg := false
	if v.Cmp(half) > 0 {
		v.Sub(fr.Modulus(), v)
		neg = true
	}
	f, _ := new(big.Float).SetInt(v).Float64()
	f /= float64(int64(1) << FixedShift)
	if neg {
		f = -f
	}
	return f
}

// FixedMul multiplies two fixed-point values and rescales by 2^FixedShift.
// The truncated quotient is provided as a witness and bound by the
// constraint x·y = q·2^shift + rem with rem < 2^shift.
func (b *Builder) FixedMul(x, y Variable) Variable {
	prod := b.Mul(x, y)
	return b.fixedRescale(prod)
}

// fixedBound is the bit bound on |v| accepted by fixedRescale; fixed-point
// circuit values must stay below 2^fixedBound in magnitude.
const fixedBound = 100

// fixedRescale divides v by 2^FixedShift (floor division on the offset
// representation). The construction is witness-independent: shift v into
// the non-negative range by adding 2^fixedBound, decompose as
// w = q'·2^shift + r with range checks, and return q' - 2^(fixedBound-shift).
func (b *Builder) fixedRescale(v Variable) Variable {
	offset := new(big.Int).Lsh(big.NewInt(1), fixedBound)
	w := b.AddConst(v, fr.FromBig(offset))

	// Witness computation of quotient and remainder of w.
	wVal := b.values[w.id].BigInt()
	q := new(big.Int).Rsh(wVal, FixedShift)
	r := new(big.Int).And(wVal, new(big.Int).SetUint64((1<<FixedShift)-1))
	quot := b.newVar(fr.FromBig(q))
	rem := b.newVar(fr.FromBig(r))
	b.markHint(quot)
	b.markHint(rem)

	// w = quot·2^shift + rem, rem < 2^shift, quot < 2^(fixedBound+1-shift).
	pow := fr.FromBig(new(big.Int).Lsh(big.NewInt(1), FixedShift))
	recon := b.Lc2(quot, pow, rem, frOne)
	b.AssertEqual(recon, w)
	b.AssertRange(rem, FixedShift)
	b.AssertRange(quot, fixedBound+1-FixedShift)

	// Undo the (scaled) offset.
	off := fr.FromBig(new(big.Int).Lsh(big.NewInt(1), fixedBound-FixedShift))
	var negOff fr.Element
	negOff.Neg(&off)
	return b.AddConst(quot, negOff)
}

// ReLU returns max(0, x) for a signed fixed-point value known to have
// magnitude < 2^n.
func (b *Builder) ReLU(x Variable, n int) Variable {
	isNeg := b.isNegative(x, n)
	return b.Select(isNeg, b.Zero(), x)
}

// isNegative returns 1 iff x represents a negative number (top half of the
// field), for |x| < 2^n.
func (b *Builder) isNegative(x Variable, n int) Variable {
	// x + 2^n ∈ (0, 2^{n+1}); bit n is 0 exactly when x is negative.
	pow := fr.FromBig(new(big.Int).Lsh(big.NewInt(1), uint(n)))
	shifted := b.AddConst(x, pow)
	return b.Not(b.topBit(shifted, n))
}

// AbsDiffLessOrEqual constrains |x - y| <= bound for signed fixed-point
// values with magnitude < 2^n. This is the convergence predicate
// ‖J(β^{k+1}) - J(β^k)‖ ≤ ε of §IV-E1.
func (b *Builder) AbsDiffLessOrEqual(x, y Variable, bound fr.Element, n int) {
	d := b.Sub(x, y)
	isNeg := b.isNegative(d, n)
	abs := b.Select(isNeg, b.Neg(d), d)
	bv := b.Constant(bound)
	b.AssertLessOrEqual(abs, bv, n)
}

// FixedDivPos divides two positive fixed-point values: out ≈ x/y scaled by
// 2^FixedShift, via the witness-quotient construction
// x·2^shift = q·y + r with 0 ≤ r < y. Both operands must be positive and
// below 2^n; attention-style normalizations are the intended use.
func (b *Builder) FixedDivPos(x, y Variable, n int) Variable {
	xv := b.values[x.id].BigInt()
	yv := b.values[y.id].BigInt()
	num := new(big.Int).Lsh(xv, FixedShift)
	q := new(big.Int)
	r := new(big.Int)
	if yv.Sign() > 0 {
		q.DivMod(num, yv, r)
	}
	quot := b.newVar(fr.FromBig(q))
	rem := b.newVar(fr.FromBig(r))
	b.markHint(quot)
	b.markHint(rem)

	pow := fr.FromBig(new(big.Int).Lsh(big.NewInt(1), FixedShift))
	lhs := b.MulConst(x, pow)
	qy := b.Mul(quot, y)
	recon := b.Add(qy, rem)
	b.AssertEqual(recon, lhs)
	b.AssertRange(rem, n)
	b.AssertLess(rem, y, n)
	b.AssertRange(quot, n)
	return quot
}
