// Package circuit is the arithmetic-circuit front-end for the Plonk
// backend: a builder that records Plonk gates while eagerly computing
// concrete wire values, plus the gadget library of §IV-D (boolean logic,
// comparisons, range checks, selection, fixed-point arithmetic) that
// ZKDET's transformation and exchange predicates are assembled from.
//
// Circuits are written as ordinary Go functions over the builder API. The
// recorded gate structure must not depend on witness values (only on
// circuit parameters such as sizes), which is the usual contract for SNARK
// front-ends; values are carried along so the witness is produced by the
// same pass.
package circuit

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
)

// Variable is a wire in the circuit. The zero value is invalid; obtain
// Variables from a Builder.
type Variable struct {
	id int
}

type gateTmpl struct {
	qL, qR, qO, qM, qC fr.Element
	kind               plonk.GateKind
	k                  [3]fr.Element
	a, b, c            int
}

// AuditVarKind classifies how a wire came into existence — the soundness
// auditor (internal/circuit/audit) treats each kind differently: inputs
// are free by design, internal wires must be determined by their defining
// gate, and hint wires are witness-computed helpers whose correctness is
// carried by accompanying assertion gates (range checks, recompositions).
type AuditVarKind uint8

// Wire origin kinds, exported through AuditInfo.
const (
	AuditVarInternal AuditVarKind = iota // operation output; must be gate-determined
	AuditVarPublic                       // public input
	AuditVarSecret                       // private witness input (free by design)
	AuditVarConstant                     // pinned by a constant gate
	AuditVarHint                         // witness-computed helper pinned by assertions
)

// Builder records gates and wire values. It is not safe for concurrent use.
//
// Gadget misuse (mismatched slice lengths, malformed shapes) does not
// panic: the first such error is recorded on the builder and surfaced by
// Compile, so circuit construction keeps the chainable Variable API while
// staying panic-free (the usual SNARK front-end contract).
type Builder struct {
	values    []fr.Element
	public    []int // variable ids designated public, in order
	gates     []gateTmpl
	constants map[string]Variable
	err       error // first deferred gadget error, reported by Compile

	// Lookup/custom-gate configuration (see EnableLookups and
	// EnableCustomGates). Zero values keep the classic compilation, which
	// produces bit-identical circuits to the pre-lookup builder.
	lookupBits  int
	customGates bool
	mds         [3][3]fr.Element
	mdsSet      bool
	rangeGates  int // gates spent on range/comparison checks, for Stats

	// Audit ledger: gadgets record their proof obligations (which wires
	// must be boolean, which spans of gates realize a range check, which
	// wires are witness-computed hints) as they emit gates. The soundness
	// auditor later checks that the emitted constraints actually discharge
	// every recorded obligation; see AuditInfo.
	kinds            []AuditVarKind
	auditBoolCons    []AuditBoolCon
	auditBoolUses    []AuditBoolUse
	auditBoolDerived []int
	auditStructBools []AuditStructBool
	auditRanges      []AuditRange
	auditConstPins   []AuditConstPin
	auditDiscards    []int
}

// Fail records a deferred circuit-construction error. The first error
// wins; Compile reports it. Gadgets (including external ones, e.g. the
// merkle package) call this instead of panicking on malformed shapes.
func (b *Builder) Fail(format string, args ...any) {
	if b.err == nil {
		b.err = fmt.Errorf(format, args...)
	}
}

// Err returns the first deferred gadget error, if any.
func (b *Builder) Err() error { return b.err }

// NewBuilder returns an empty circuit builder.
func NewBuilder() *Builder {
	return &Builder{constants: make(map[string]Variable)}
}

// Gate kinds, re-exported so gadget packages (mimc, poseidon) can emit
// custom rows without importing the backend.
const (
	KindArith           = plonk.KindArith
	KindLookup          = plonk.KindLookup
	KindMiMC            = plonk.KindMiMC
	KindPoseidonFull    = plonk.KindPoseidonFull
	KindPoseidonPartial = plonk.KindPoseidonPartial
)

// DefaultRangeTableBits is the range-table width circuits opt into by
// default: 2^12 = 4096 table rows, so a 16-bit range check costs 2
// lookups and an 85-bit one costs 8, versus one gate per bit classically.
const DefaultRangeTableBits = 12

// EnableLookups switches AssertRange and the comparison gadgets to the
// k-bit range-table lookup lowering. The domain (and hence the SRS) must
// cover 2^bits rows; call before emitting any range checks.
func (b *Builder) EnableLookups(bits int) {
	if bits < 1 || bits > plonk.MaxTableBits {
		b.Fail("circuit: lookup table bits %d out of range", bits)
		return
	}
	b.lookupBits = bits
}

// LookupBits returns the enabled range-table width, 0 if lookups are off.
func (b *Builder) LookupBits() int { return b.lookupBits }

// EnableCustomGates lets hash gadgets (Poseidon, MiMC) emit one custom
// gate per round instead of the generic arithmetic lowering.
func (b *Builder) EnableCustomGates() { b.customGates = true }

// CustomGatesEnabled reports whether hash gadgets should use custom rows.
func (b *Builder) CustomGatesEnabled() bool { return b.customGates }

// SetPoseidonMDS records the MDS matrix the Poseidon custom gates
// multiply by; the Poseidon gadget calls this before emitting rounds.
func (b *Builder) SetPoseidonMDS(m [3][3]fr.Element) {
	b.mds = m
	b.mdsSet = true
}

// Lookup emits one lookup row asserting x ∈ [0, 2^LookupBits).
func (b *Builder) Lookup(x Variable) {
	if b.lookupBits == 0 {
		b.Fail("circuit: Lookup without EnableLookups")
		return
	}
	b.gates = append(b.gates, gateTmpl{kind: plonk.KindLookup, a: x.id, b: x.id, c: x.id})
}

// CustomGate emits one custom-gate row (a Poseidon or MiMC round). The
// row's constraint reads the NEXT emitted row's wires, so callers must
// emit round rows back-to-back and close the sequence with NoOpRow
// carrying the final state.
func (b *Builder) CustomGate(kind plonk.GateKind, x, y, z Variable, k [3]fr.Element) {
	if !b.customGates {
		b.Fail("circuit: CustomGate without EnableCustomGates")
		return
	}
	b.gates = append(b.gates, gateTmpl{kind: kind, k: k, a: x.id, b: y.id, c: z.id})
}

// NoOpRow emits a constraint-free row wiring (x, y, z), terminating a
// custom-gate sequence so the last round's next-row read lands on the
// final state.
func (b *Builder) NoOpRow(x, y, z Variable) {
	b.gates = append(b.gates, gateTmpl{a: x.id, b: y.id, c: z.id})
}

// Stats summarizes the recorded gates by constraint family — the data
// behind zkdet-bench's constraint report.
type Stats struct {
	Total  int // all recorded gates (excluding public exposure rows)
	Arith  int
	Lookup int
	Custom int // hash-round custom gates
	Range  int // subset of gates attributable to range/comparison checks
}

// Stats returns the current per-family gate counts.
func (b *Builder) Stats() Stats {
	st := Stats{Total: len(b.gates), Range: b.rangeGates}
	for i := range b.gates {
		switch b.gates[i].kind {
		case plonk.KindLookup:
			st.Lookup++
		case plonk.KindArith:
			st.Arith++
		default:
			st.Custom++
		}
	}
	return st
}

// NbGates returns the number of gates recorded so far (excluding the
// public-input gates added at compile time).
func (b *Builder) NbGates() int { return len(b.gates) }

// NbConstraints returns the total constraint count the compiled circuit
// will have, the paper's cost metric.
func (b *Builder) NbConstraints() int { return len(b.gates) + len(b.public) }

func (b *Builder) newVar(val fr.Element) Variable {
	b.values = append(b.values, val)
	b.kinds = append(b.kinds, AuditVarInternal)
	return Variable{id: len(b.values) - 1}
}

// markHint reclassifies an internal wire as a witness-computed hint: its
// value is filled in by out-of-circuit computation (bit decomposition,
// quotient/remainder, inverse helpers) and its correctness is carried by
// accompanying assertion gates rather than a defining gate. The auditor
// exempts hints from the must-be-determined rule but still requires them
// to be live and anchored to an assertion.
func (b *Builder) markHint(v Variable) {
	if b.kinds[v.id] == AuditVarInternal {
		b.kinds[v.id] = AuditVarHint
	}
}

// markBoolUse records that a gadget relies on v being boolean (e.g. a
// Select condition or a comparison top bit). The auditor checks every
// such wire against the set of boolean-constrained or boolean-derived
// wires.
func (b *Builder) markBoolUse(v Variable, site string) {
	b.auditBoolUses = append(b.auditBoolUses, AuditBoolUse{Var: v.id, Site: site})
}

// markBoolDerived records that v is boolean by construction (output of a
// boolean gadget over boolean inputs), so downstream boolean uses need no
// separate x²=x gate.
func (b *Builder) markBoolDerived(v Variable) {
	b.auditBoolDerived = append(b.auditBoolDerived, v.id)
}

// MarkDiscard records that a gadget deliberately leaves wire v unconsumed
// — e.g. the sponge capacity lanes after a hash's final permutation. The
// soundness auditor exempts marked wires (and the computation feeding
// them) from the dangling-output rule; an output that dangles without
// such a mark is a forgotten assertion.
func (b *Builder) MarkDiscard(v Variable) {
	b.auditDiscards = append(b.auditDiscards, v.id)
}

// Value returns the concrete value currently assigned to v.
func (b *Builder) Value(v Variable) fr.Element { return b.values[v.id] }

// Public allocates a public-input variable with the given value.
func (b *Builder) Public(val fr.Element) Variable {
	v := b.newVar(val)
	b.kinds[v.id] = AuditVarPublic
	b.public = append(b.public, v.id)
	return v
}

// Secret allocates a private witness variable with the given value.
func (b *Builder) Secret(val fr.Element) Variable {
	v := b.newVar(val)
	b.kinds[v.id] = AuditVarSecret
	return v
}

// Constant returns a variable constrained to equal the constant c.
// Identical constants share one variable.
func (b *Builder) Constant(c fr.Element) Variable {
	key := c.String()
	if v, ok := b.constants[key]; ok {
		return v
	}
	v := b.newVar(c)
	b.kinds[v.id] = AuditVarConstant
	var negC fr.Element
	negC.Neg(&c)
	// v - c = 0
	b.gates = append(b.gates, gateTmpl{qL: fr.One(), qC: negC, a: v.id, b: v.id, c: v.id})
	b.auditConstPins = append(b.auditConstPins, AuditConstPin{Var: v.id, Gate: len(b.gates) - 1})
	b.constants[key] = v
	return v
}

// Zero returns the constant 0 and One the constant 1.
func (b *Builder) Zero() Variable { return b.Constant(fr.Zero()) }

// One returns the constant 1.
func (b *Builder) One() Variable { return b.Constant(fr.One()) }

var frOne = fr.One()

func frNeg(x fr.Element) fr.Element {
	var out fr.Element
	out.Neg(&x)
	return out
}

// Add returns x + y.
func (b *Builder) Add(x, y Variable) Variable {
	var val fr.Element
	vx, vy := b.values[x.id], b.values[y.id]
	val.Add(&vx, &vy)
	out := b.newVar(val)
	b.gates = append(b.gates, gateTmpl{qL: frOne, qR: frOne, qO: frNeg(frOne), a: x.id, b: y.id, c: out.id})
	return out
}

// Sub returns x - y.
func (b *Builder) Sub(x, y Variable) Variable {
	var val fr.Element
	vx, vy := b.values[x.id], b.values[y.id]
	val.Sub(&vx, &vy)
	out := b.newVar(val)
	b.gates = append(b.gates, gateTmpl{qL: frOne, qR: frNeg(frOne), qO: frNeg(frOne), a: x.id, b: y.id, c: out.id})
	return out
}

// Mul returns x · y.
func (b *Builder) Mul(x, y Variable) Variable {
	var val fr.Element
	vx, vy := b.values[x.id], b.values[y.id]
	val.Mul(&vx, &vy)
	out := b.newVar(val)
	b.gates = append(b.gates, gateTmpl{qM: frOne, qO: frNeg(frOne), a: x.id, b: y.id, c: out.id})
	return out
}

// Square returns x².
func (b *Builder) Square(x Variable) Variable { return b.Mul(x, x) }

// Neg returns -x.
func (b *Builder) Neg(x Variable) Variable {
	return b.MulConst(x, frNeg(frOne))
}

// AddConst returns x + c.
func (b *Builder) AddConst(x Variable, c fr.Element) Variable {
	var val fr.Element
	vx := b.values[x.id]
	val.Add(&vx, &c)
	out := b.newVar(val)
	b.gates = append(b.gates, gateTmpl{qL: frOne, qC: c, qO: frNeg(frOne), a: x.id, b: x.id, c: out.id})
	return out
}

// MulConst returns c · x.
func (b *Builder) MulConst(x Variable, c fr.Element) Variable {
	var val fr.Element
	vx := b.values[x.id]
	val.Mul(&vx, &c)
	out := b.newVar(val)
	b.gates = append(b.gates, gateTmpl{qL: c, qO: frNeg(frOne), a: x.id, b: x.id, c: out.id})
	return out
}

// MulAdd returns x·y + z in a single gate pair.
func (b *Builder) MulAdd(x, y, z Variable) Variable {
	m := b.Mul(x, y)
	return b.Add(m, z)
}

// Lc2 returns c1·x + c2·y in one gate.
func (b *Builder) Lc2(x Variable, c1 fr.Element, y Variable, c2 fr.Element) Variable {
	var val, t fr.Element
	vx, vy := b.values[x.id], b.values[y.id]
	val.Mul(&vx, &c1)
	t.Mul(&vy, &c2)
	val.Add(&val, &t)
	out := b.newVar(val)
	b.gates = append(b.gates, gateTmpl{qL: c1, qR: c2, qO: frNeg(frOne), a: x.id, b: y.id, c: out.id})
	return out
}

// Inverse returns x⁻¹, constraining x·out = 1 (hence also x ≠ 0).
func (b *Builder) Inverse(x Variable) Variable {
	var val fr.Element
	vx := b.values[x.id]
	val.Inverse(&vx)
	out := b.newVar(val)
	// x·out - 1 = 0
	b.gates = append(b.gates, gateTmpl{qM: frOne, qC: frNeg(frOne), a: x.id, b: out.id, c: out.id})
	return out
}

// Div returns x / y, constraining y·out = x (hence y ≠ 0).
func (b *Builder) Div(x, y Variable) Variable {
	var val, inv fr.Element
	vx, vy := b.values[x.id], b.values[y.id]
	inv.Inverse(&vy)
	val.Mul(&vx, &inv)
	out := b.newVar(val)
	// y·out - x = 0
	b.gates = append(b.gates, gateTmpl{qM: frOne, qO: frNeg(frOne), a: y.id, b: out.id, c: x.id})
	return out
}

// AssertEqual constrains x == y.
func (b *Builder) AssertEqual(x, y Variable) {
	b.gates = append(b.gates, gateTmpl{qL: frOne, qR: frNeg(frOne), a: x.id, b: y.id, c: x.id})
}

// AssertZero constrains x == 0.
func (b *Builder) AssertZero(x Variable) {
	b.gates = append(b.gates, gateTmpl{qL: frOne, a: x.id, b: x.id, c: x.id})
}

// AssertConst constrains x == c.
func (b *Builder) AssertConst(x Variable, c fr.Element) {
	b.gates = append(b.gates, gateTmpl{qL: frOne, qC: frNeg(c), a: x.id, b: x.id, c: x.id})
}

// AssertBoolean constrains x ∈ {0, 1} via x² = x.
func (b *Builder) AssertBoolean(x Variable) {
	// x·x - x = 0
	b.gates = append(b.gates, gateTmpl{qM: frOne, qL: frNeg(frOne), a: x.id, b: x.id, c: x.id})
	b.auditBoolCons = append(b.auditBoolCons, AuditBoolCon{Var: x.id, Gate: len(b.gates) - 1})
}

// AssertNonZero constrains x ≠ 0 (by exhibiting an inverse).
func (b *Builder) AssertNonZero(x Variable) {
	b.Inverse(x)
}

// Compile produces the Plonk constraint system and the witness vector.
// Public variables are renumbered to the front, matching the backend's
// convention.
func (b *Builder) Compile() (*plonk.ConstraintSystem, []fr.Element, error) {
	if b.err != nil {
		return nil, nil, b.err
	}
	if len(b.values) == 0 {
		return nil, nil, fmt.Errorf("circuit: empty circuit")
	}
	remap := make([]int, len(b.values))
	for i := range remap {
		remap[i] = -1
	}
	for newID, oldID := range b.public {
		remap[oldID] = newID
	}
	next := len(b.public)
	for old := range b.values {
		if remap[old] == -1 {
			remap[old] = next
			next++
		}
	}
	cs := plonk.NewConstraintSystem(len(b.public))
	for next > cs.NbVariables() {
		cs.NewVariable()
	}
	hasLookupRows := false
	for i := range b.gates {
		if b.gates[i].kind == plonk.KindLookup {
			hasLookupRows = true
			break
		}
	}
	if hasLookupRows {
		if err := cs.UseRangeTable(b.lookupBits); err != nil {
			return nil, nil, fmt.Errorf("circuit: %w", err)
		}
	}
	if b.mdsSet {
		cs.SetPoseidonMDS(b.mds)
	}
	witness := make([]fr.Element, len(b.values))
	for old, val := range b.values {
		witness[remap[old]] = val
	}
	for _, g := range b.gates {
		if err := cs.AddGate(plonk.Gate{
			QL: g.qL, QR: g.qR, QO: g.qO, QM: g.qM, QC: g.qC,
			Kind: g.kind, K: g.k,
			A: remap[g.a], B: remap[g.b], C: remap[g.c],
		}); err != nil {
			return nil, nil, fmt.Errorf("circuit: %w", err)
		}
	}
	return cs, witness, nil
}

// PublicValues returns the current values of the public inputs, in order.
func (b *Builder) PublicValues() []fr.Element {
	out := make([]fr.Element, len(b.public))
	for i, id := range b.public {
		out[i] = b.values[id]
	}
	return out
}
