package circuit

import (
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
)

// TestAssertRangeLookupMatchesClassic checks the lookup lowering of
// AssertRange accepts exactly the values the classic lowering accepts,
// across widths below, at, and above the table width.
func TestAssertRangeLookupMatchesClassic(t *testing.T) {
	cases := []struct {
		bits  int
		value uint64
		ok    bool
	}{
		{8, 255, true},
		{8, 256, false},
		{12, 4095, true},
		{12, 4096, false},
		{16, 65535, true},
		{16, 65536, false},
		{40, 1 << 39, true},
		{40, 1 << 40, false},
		{85, 1 << 62, true},
	}
	for _, tc := range cases {
		b := NewBuilder()
		b.EnableLookups(DefaultRangeTableBits)
		x := b.Secret(fr.NewElement(tc.value))
		b.AssertRange(x, tc.bits)
		cs, witness, err := b.Compile()
		if err != nil {
			t.Fatalf("bits=%d value=%d: compile: %v", tc.bits, tc.value, err)
		}
		if !cs.HasLookup() {
			t.Fatalf("bits=%d: no lookup rows emitted", tc.bits)
		}
		err = cs.IsSatisfied(witness)
		if tc.ok && err != nil {
			t.Fatalf("bits=%d value=%d: rejected: %v", tc.bits, tc.value, err)
		}
		if !tc.ok && err == nil {
			t.Fatalf("bits=%d value=%d: out-of-range accepted", tc.bits, tc.value)
		}
	}
}

// TestAssertRangeLookupCheaper pins the constraint saving: an 85-bit range
// check must cost several times fewer gates with lookups than classically.
func TestAssertRangeLookupCheaper(t *testing.T) {
	classic := NewBuilder()
	x := classic.Secret(fr.NewElement(7))
	classic.AssertRange(x, 85)
	lk := NewBuilder()
	lk.EnableLookups(DefaultRangeTableBits)
	y := lk.Secret(fr.NewElement(7))
	lk.AssertRange(y, 85)
	if lk.NbGates()*3 > classic.NbGates() {
		t.Fatalf("lookup range check too expensive: %d gates vs %d classic", lk.NbGates(), classic.NbGates())
	}
	st := lk.Stats()
	if st.Lookup == 0 || st.Range != lk.NbGates() {
		t.Fatalf("stats mismatch: %+v (total %d)", st, lk.NbGates())
	}
}

// TestComparisonGadgetsWithLookups re-runs the comparison suite under the
// lookup lowering: the gadgets must compute the same booleans.
func TestComparisonGadgetsWithLookups(t *testing.T) {
	b := NewBuilder()
	b.EnableLookups(DefaultRangeTableBits)
	x := b.Secret(fr.NewElement(100))
	y := b.Secret(fr.NewElement(250))
	lt := b.IsLess(x, y, 16)
	b.AssertConst(lt, fr.One())
	ge := b.IsLess(y, x, 16)
	b.AssertConst(ge, fr.Zero())
	le := b.IsLessOrEqual(x, x, 16)
	b.AssertConst(le, fr.One())
	b.AssertLess(x, y, 16)
	b.AssertLessOrEqual(x, y, 16)

	neg := b.Secret(fr.NewFromInt64(-5))
	isNeg := b.isNegative(neg, 20)
	b.AssertConst(isNeg, fr.One())
	pos := b.Secret(fr.NewElement(5))
	isNeg2 := b.isNegative(pos, 20)
	b.AssertConst(isNeg2, fr.Zero())

	r := b.ReLU(neg, 20)
	b.AssertConst(r, fr.Zero())
	r2 := b.ReLU(pos, 20)
	b.AssertConst(r2, fr.NewElement(5))
	checkSatisfied(t, b)
}

// TestFixedPointWithLookups exercises the fixed-point gadgets (whose range
// checks dominate ML circuits) under the lookup lowering, end to end.
func TestFixedPointWithLookups(t *testing.T) {
	b := NewBuilder()
	b.EnableLookups(DefaultRangeTableBits)
	x := b.Secret(FixedFromFloat(1.5))
	y := b.Secret(FixedFromFloat(-2.25))
	p := b.FixedMul(x, y)
	got := FixedToFloat(b.Value(p))
	if got < -3.376 || got > -3.374 {
		t.Fatalf("FixedMul under lookups: got %v, want -3.375", got)
	}
	num := b.Secret(FixedFromFloat(3.0))
	den := b.Secret(FixedFromFloat(2.0))
	q := b.FixedDivPos(num, den, 40)
	if gq := FixedToFloat(b.Value(q)); gq < 1.49 || gq > 1.51 {
		t.Fatalf("FixedDivPos under lookups: got %v, want 1.5", gq)
	}
	b.AbsDiffLessOrEqual(x, x, FixedFromFloat(0.01), 40)

	cs, witness, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatal(err)
	}
	pk, vk, err := plonk.Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	if !vk.Extended {
		t.Fatal("lookup circuit compiled to a classic key")
	}
	proof, err := plonk.Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if err := plonk.Verify(vk, proof, b.PublicValues()); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
}

// TestEndToEndSNARKWithLookups is TestEndToEndSNARK's statement compiled
// with the lookup lowering, proving the full pipeline handles the extended
// proof shape.
func TestEndToEndSNARKWithLookups(t *testing.T) {
	b := NewBuilder()
	b.EnableLookups(DefaultRangeTableBits)
	x := b.Secret(fr.NewElement(123))
	sq := b.Square(x)
	three := b.MulConst(x, fr.NewElement(3))
	s := b.Add(sq, three)
	s = b.AddConst(s, fr.NewElement(7))
	pub := b.Public(b.Value(s))
	b.AssertEqual(pub, s)
	b.AssertRange(x, 10)

	cs, witness, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	pk, vk, err := plonk.Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := plonk.Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if err := plonk.Verify(vk, proof, b.PublicValues()); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	if err := plonk.Verify(vk, proof, []fr.Element{fr.NewElement(15506)}); err == nil {
		t.Fatal("wrong public accepted")
	}
}

// TestLookupMisuseDeferred checks builder misconfigurations surface as
// deferred Compile errors, not panics.
func TestLookupMisuseDeferred(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(fr.NewElement(1))
	b.Lookup(x) // without EnableLookups
	if _, _, err := b.Compile(); err == nil {
		t.Fatal("Lookup without EnableLookups compiled")
	}

	b2 := NewBuilder()
	b2.EnableLookups(plonk.MaxTableBits + 1)
	if _, _, err := b2.Compile(); err == nil {
		t.Fatal("oversized table compiled")
	}

	b3 := NewBuilder()
	y := b3.Secret(fr.NewElement(1))
	b3.CustomGate(KindMiMC, y, y, y, [3]fr.Element{})
	if _, _, err := b3.Compile(); err == nil {
		t.Fatal("CustomGate without EnableCustomGates compiled")
	}
}

// TestClassicCompilationUnchanged pins that a builder with lookups off
// produces gates free of lookup/custom markers, so pre-existing circuits
// keep their classic (bit-identical) keys.
func TestClassicCompilationUnchanged(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(fr.NewElement(9))
	b.AssertRange(x, 16)
	b.IsLess(x, b.Secret(fr.NewElement(10)), 8)
	cs, _, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if cs.HasLookup() || cs.HasCustomGates() || cs.RangeTableBits() != 0 {
		t.Fatal("classic compilation emitted extended gates")
	}
	st := b.Stats()
	if st.Lookup != 0 || st.Custom != 0 {
		t.Fatalf("classic stats show extended gates: %+v", st)
	}
	if st.Range == 0 {
		t.Fatal("range gate accounting missing")
	}
}
