package circuit

import (
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
)

// This file is the read-only export surface for the soundness auditor
// (internal/circuit/audit): a structural snapshot of the builder's gates,
// wire values, and the annotation ledger gadgets maintain while emitting
// constraints. The auditor consumes AuditInfo instead of the Builder so
// mutation tests can copy and perturb the snapshot without touching
// builder internals.

// AuditGate is one recorded gate row in builder numbering (before the
// public-input renumbering Compile performs).
type AuditGate struct {
	QL, QR, QO, QM, QC fr.Element
	Kind               plonk.GateKind
	K                  [3]fr.Element
	A, B, C            int
}

// AuditBoolCon records an x²=x gate emitted for Var.
type AuditBoolCon struct {
	Var  int
	Gate int // gate index, -1 once the gate has been deleted (mutation)
}

// AuditBoolUse records that a gadget consumed Var assuming it is boolean.
type AuditBoolUse struct {
	Var  int
	Site string // gadget name, for diagnostics ("Select", "Not", ...)
}

// AuditStructBool records a wire that is boolean by a structural argument
// spanning several gates (the IsZero y·x=0 ∧ m·x+y=1 construction); all
// listed gates must survive for the argument to hold.
type AuditStructBool struct {
	Var   int
	Gates []int // supporting gate indices; -1 marks a deleted gate
}

// AuditRange records a range-check obligation: the gates in [Start, End)
// realize "Var fits in Bits bits", using either Booleans x²=x rows
// (classic bit decomposition) or Lookups table rows (limb decomposition).
// The auditor recounts the rows inside the span and compares against the
// width the obligation asserts.
type AuditRange struct {
	Var        int
	Bits       int
	Booleans   int // expected x²=x rows in the span (classic lowering)
	Lookups    int // expected lookup rows in the span (lookup lowering)
	Start, End int // half-open gate-index span
}

// AuditConstPin records the v−c=0 gate pinning a Constant wire.
type AuditConstPin struct {
	Var  int
	Gate int // gate index, -1 once the gate has been deleted (mutation)
}

// AuditInfo is a self-contained snapshot of a built circuit plus the
// gadget annotation ledger, in builder wire numbering.
type AuditInfo struct {
	Name string // optional label for diagnostics

	NbVars int
	Values []fr.Element   // eager wire values (the witness, builder order)
	Kinds  []AuditVarKind // wire origin classification
	Gates  []AuditGate

	LookupBits  int
	CustomGates bool
	MDS         [3][3]fr.Element
	MDSSet      bool

	BoolCons    []AuditBoolCon
	BoolUses    []AuditBoolUse
	BoolDerived []int
	StructBools []AuditStructBool
	Ranges      []AuditRange
	ConstPins   []AuditConstPin
	Discards    []int // wires deliberately left unconsumed (MarkDiscard)

	Err error // deferred builder error, if any
}

// AuditInfo snapshots the builder for the soundness auditor. All slices
// are deep copies; mutating the result does not affect the builder.
func (b *Builder) AuditInfo() *AuditInfo {
	info := &AuditInfo{
		NbVars:      len(b.values),
		Values:      append([]fr.Element(nil), b.values...),
		Kinds:       append([]AuditVarKind(nil), b.kinds...),
		Gates:       make([]AuditGate, len(b.gates)),
		LookupBits:  b.lookupBits,
		CustomGates: b.customGates,
		MDS:         b.mds,
		MDSSet:      b.mdsSet,
		BoolCons:    append([]AuditBoolCon(nil), b.auditBoolCons...),
		BoolUses:    append([]AuditBoolUse(nil), b.auditBoolUses...),
		BoolDerived: append([]int(nil), b.auditBoolDerived...),
		Ranges:      append([]AuditRange(nil), b.auditRanges...),
		ConstPins:   append([]AuditConstPin(nil), b.auditConstPins...),
		Discards:    append([]int(nil), b.auditDiscards...),
		Err:         b.err,
	}
	for i, g := range b.gates {
		info.Gates[i] = AuditGate{
			QL: g.qL, QR: g.qR, QO: g.qO, QM: g.qM, QC: g.qC,
			Kind: g.kind, K: g.k, A: g.a, B: g.b, C: g.c,
		}
	}
	info.StructBools = make([]AuditStructBool, len(b.auditStructBools))
	for i, sb := range b.auditStructBools {
		info.StructBools[i] = AuditStructBool{Var: sb.Var, Gates: append([]int(nil), sb.Gates...)}
	}
	return info
}

// PublicIDs returns the builder-numbering ids of the public inputs, in
// declaration order.
func (b *Builder) PublicIDs() []int { return append([]int(nil), b.public...) }
