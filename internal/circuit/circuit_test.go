package circuit

import (
	"sync"
	"testing"
	"testing/quick"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/plonk"
)

var testSRSOnce = sync.OnceValue(func() *kzg.SRS {
	tau := fr.NewElement(0x7e57)
	srs, err := kzg.NewSRSFromSecret(1<<13, &tau)
	if err != nil {
		panic(err)
	}
	return srs
})

// checkSatisfied compiles the builder and verifies the witness against the
// constraint system directly.
func checkSatisfied(t *testing.T, b *Builder) {
	t.Helper()
	cs, witness, err := b.Compile()
	if err != nil {
		t.Fatalf("compile: %v", err)
	}
	if err := cs.IsSatisfied(witness); err != nil {
		t.Fatalf("constraints not satisfied: %v", err)
	}
}

func TestArithmeticGates(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(fr.NewElement(6))
	y := b.Secret(fr.NewElement(7))
	sum := b.Add(x, y)
	if v := b.Value(sum); v.String() != "13" {
		t.Fatalf("add value = %s", v.String())
	}
	prod := b.Mul(x, y)
	if v := b.Value(prod); v.String() != "42" {
		t.Fatalf("mul value = %s", v.String())
	}
	diff := b.Sub(prod, sum)
	if v := b.Value(diff); v.String() != "29" {
		t.Fatalf("sub value = %s", v.String())
	}
	sq := b.Square(x)
	if v := b.Value(sq); v.String() != "36" {
		t.Fatalf("square value = %s", v.String())
	}
	n := b.Neg(x)
	back := b.Neg(n)
	if v1, v2 := b.Value(back), b.Value(x); !v1.Equal(&v2) {
		t.Fatal("double negation")
	}
	c := b.AddConst(x, fr.NewElement(100))
	if v := b.Value(c); v.String() != "106" {
		t.Fatalf("addconst value = %s", v.String())
	}
	m := b.MulConst(y, fr.NewElement(3))
	if v := b.Value(m); v.String() != "21" {
		t.Fatalf("mulconst value = %s", v.String())
	}
	lc := b.Lc2(x, fr.NewElement(10), y, fr.NewElement(100))
	if v := b.Value(lc); v.String() != "760" {
		t.Fatalf("lc2 value = %s", v.String())
	}
	checkSatisfied(t, b)
}

func TestInverseAndDiv(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(fr.NewElement(42))
	inv := b.Inverse(x)
	prod := b.Mul(x, inv)
	one := b.Value(prod)
	if !one.IsOne() {
		t.Fatal("x * x^-1 != 1")
	}
	y := b.Secret(fr.NewElement(6))
	q := b.Div(x, y)
	if v := b.Value(q); v.String() != "7" {
		t.Fatalf("div value = %s", v.String())
	}
	checkSatisfied(t, b)
}

func TestConstantsDeduplicated(t *testing.T) {
	b := NewBuilder()
	c1 := b.Constant(fr.NewElement(5))
	c2 := b.Constant(fr.NewElement(5))
	if c1 != c2 {
		t.Fatal("identical constants not shared")
	}
	before := b.NbGates()
	b.Constant(fr.NewElement(5))
	if b.NbGates() != before {
		t.Fatal("duplicate constant added a gate")
	}
	checkSatisfied(t, b)
}

func TestBooleanGadgets(t *testing.T) {
	cases := []struct{ x, y uint64 }{{0, 0}, {0, 1}, {1, 0}, {1, 1}}
	for _, tc := range cases {
		b := NewBuilder()
		x := b.Secret(fr.NewElement(tc.x))
		y := b.Secret(fr.NewElement(tc.y))
		b.AssertBoolean(x)
		b.AssertBoolean(y)
		and := b.Value(b.And(x, y))
		or := b.Value(b.Or(x, y))
		xor := b.Value(b.Xor(x, y))
		not := b.Value(b.Not(x))
		if got, want := and.String(), fr.NewElement(tc.x&tc.y).String(); got != want {
			t.Fatalf("and(%d,%d)=%s", tc.x, tc.y, got)
		}
		if got, want := or.String(), fr.NewElement(tc.x|tc.y).String(); got != want {
			t.Fatalf("or(%d,%d)=%s", tc.x, tc.y, got)
		}
		if got, want := xor.String(), fr.NewElement(tc.x^tc.y).String(); got != want {
			t.Fatalf("xor(%d,%d)=%s", tc.x, tc.y, got)
		}
		if got, want := not.String(), fr.NewElement(1-tc.x).String(); got != want {
			t.Fatalf("not(%d)=%s", tc.x, got)
		}
		checkSatisfied(t, b)
	}
}

func TestIsZeroIsEqual(t *testing.T) {
	b := NewBuilder()
	zero := b.Secret(fr.Zero())
	nz := b.Secret(fr.NewElement(99))
	if v := b.Value(b.IsZero(zero)); !v.IsOne() {
		t.Fatal("IsZero(0) != 1")
	}
	if v := b.Value(b.IsZero(nz)); !v.IsZero() {
		t.Fatal("IsZero(99) != 0")
	}
	a := b.Secret(fr.NewElement(7))
	c := b.Secret(fr.NewElement(7))
	d := b.Secret(fr.NewElement(8))
	if v := b.Value(b.IsEqual(a, c)); !v.IsOne() {
		t.Fatal("IsEqual(7,7) != 1")
	}
	if v := b.Value(b.IsEqual(a, d)); !v.IsZero() {
		t.Fatal("IsEqual(7,8) != 0")
	}
	checkSatisfied(t, b)
}

func TestSelect(t *testing.T) {
	b := NewBuilder()
	a := b.Secret(fr.NewElement(10))
	c := b.Secret(fr.NewElement(20))
	one := b.Secret(fr.One())
	zero := b.Secret(fr.Zero())
	b.AssertBoolean(one)
	b.AssertBoolean(zero)
	if v := b.Value(b.Select(one, a, c)); v.String() != "10" {
		t.Fatal("select(1, 10, 20) != 10")
	}
	if v := b.Value(b.Select(zero, a, c)); v.String() != "20" {
		t.Fatal("select(0, 10, 20) != 20")
	}
	checkSatisfied(t, b)
}

func TestToBitsFromBits(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(fr.NewElement(0b1011_0110))
	bits := b.ToBits(x, 10)
	wantBits := []uint64{0, 1, 1, 0, 1, 1, 0, 1, 0, 0}
	for i, bit := range bits {
		v := b.Value(bit)
		if v.String() != fr.NewElement(wantBits[i]).String() {
			t.Fatalf("bit %d = %s, want %d", i, v.String(), wantBits[i])
		}
	}
	back := b.FromBits(bits)
	vb, vx := b.Value(back), b.Value(x)
	if !vb.Equal(&vx) {
		t.Fatal("FromBits(ToBits(x)) != x")
	}
	checkSatisfied(t, b)
}

func TestComparisons(t *testing.T) {
	cases := []struct {
		x, y   uint64
		lt, le uint64
	}{
		{3, 5, 1, 1}, {5, 3, 0, 0}, {4, 4, 0, 1}, {0, 0, 0, 1}, {0, 255, 1, 1},
	}
	for _, tc := range cases {
		b := NewBuilder()
		x := b.Secret(fr.NewElement(tc.x))
		y := b.Secret(fr.NewElement(tc.y))
		lt := b.Value(b.IsLess(x, y, 8))
		le := b.Value(b.IsLessOrEqual(x, y, 8))
		if lt.String() != fr.NewElement(tc.lt).String() {
			t.Fatalf("IsLess(%d,%d) = %s", tc.x, tc.y, lt.String())
		}
		if le.String() != fr.NewElement(tc.le).String() {
			t.Fatalf("IsLessOrEqual(%d,%d) = %s", tc.x, tc.y, le.String())
		}
		checkSatisfied(t, b)
	}
}

func TestAssertLessCatchesViolation(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(fr.NewElement(9))
	y := b.Secret(fr.NewElement(5))
	b.AssertLess(x, y, 8) // false: witness must not satisfy
	cs, witness, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(witness); err == nil {
		t.Fatal("9 < 5 accepted")
	}
}

func TestExpGadget(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(fr.NewElement(3))
	for _, e := range []uint64{0, 1, 2, 7, 16, 31} {
		got := b.Value(b.Exp(x, e))
		base := fr.NewElement(3)
		var want fr.Element
		want.ExpUint64(&base, e)
		if !got.Equal(&want) {
			t.Fatalf("3^%d = %s, want %s", e, got.String(), want.String())
		}
	}
	checkSatisfied(t, b)
}

func TestInnerProductAndMatVec(t *testing.T) {
	b := NewBuilder()
	xs := []Variable{b.Secret(fr.NewElement(1)), b.Secret(fr.NewElement(2)), b.Secret(fr.NewElement(3))}
	ys := []Variable{b.Secret(fr.NewElement(4)), b.Secret(fr.NewElement(5)), b.Secret(fr.NewElement(6))}
	ip := b.Value(b.InnerProduct(xs, ys))
	if ip.String() != "32" {
		t.Fatalf("inner product = %s", ip.String())
	}
	m := [][]Variable{xs, ys}
	v := []Variable{b.Secret(fr.NewElement(1)), b.Secret(fr.NewElement(1)), b.Secret(fr.NewElement(1))}
	out := b.MatVecMul(m, v)
	if got := b.Value(out[0]); got.String() != "6" {
		t.Fatalf("matvec[0] = %s", got.String())
	}
	if got := b.Value(out[1]); got.String() != "15" {
		t.Fatalf("matvec[1] = %s", got.String())
	}
	checkSatisfied(t, b)
}

func TestFixedPoint(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(FixedFromFloat(2.5))
	y := b.Secret(FixedFromFloat(-1.5))
	prod := b.FixedMul(x, y)
	got := FixedToFloat(b.Value(prod))
	if got < -3.7501 || got > -3.7499 {
		t.Fatalf("2.5 * -1.5 = %v (fixed point)", got)
	}
	pos := b.FixedMul(x, x)
	if got := FixedToFloat(b.Value(pos)); got < 6.2499 || got > 6.2501 {
		t.Fatalf("2.5^2 = %v", got)
	}
	checkSatisfied(t, b)
}

func TestReLU(t *testing.T) {
	b := NewBuilder()
	pos := b.Secret(FixedFromFloat(3.25))
	negV := b.Secret(FixedFromFloat(-2.0))
	rp := b.ReLU(pos, 40)
	rn := b.ReLU(negV, 40)
	if got := FixedToFloat(b.Value(rp)); got != 3.25 {
		t.Fatalf("relu(3.25) = %v", got)
	}
	if got := FixedToFloat(b.Value(rn)); got != 0 {
		t.Fatalf("relu(-2) = %v", got)
	}
	checkSatisfied(t, b)
}

func TestAbsDiffLessOrEqual(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(FixedFromFloat(1.0))
	y := b.Secret(FixedFromFloat(1.001))
	b.AbsDiffLessOrEqual(x, y, FixedFromFloat(0.01), 40)
	b.AbsDiffLessOrEqual(y, x, FixedFromFloat(0.01), 40)
	checkSatisfied(t, b)

	// Violation: |1.0 - 2.0| > 0.01.
	b2 := NewBuilder()
	a := b2.Secret(FixedFromFloat(1.0))
	c := b2.Secret(FixedFromFloat(2.0))
	b2.AbsDiffLessOrEqual(a, c, FixedFromFloat(0.01), 40)
	cs, witness, err := b2.Compile()
	if err != nil {
		t.Fatal(err)
	}
	if err := cs.IsSatisfied(witness); err == nil {
		t.Fatal("divergent values accepted")
	}
}

// TestEndToEndSNARK compiles a gadget-rich circuit and runs the full Plonk
// prove/verify cycle on it.
func TestEndToEndSNARK(t *testing.T) {
	b := NewBuilder()
	// Statement: public = x² + 3x + 7 for secret x, and x < 1000.
	x := b.Secret(fr.NewElement(123))
	sq := b.Square(x)
	three := b.MulConst(x, fr.NewElement(3))
	s := b.Add(sq, three)
	s = b.AddConst(s, fr.NewElement(7))
	pub := b.Public(b.Value(s))
	b.AssertEqual(pub, s)
	b.AssertRange(x, 10)

	cs, witness, err := b.Compile()
	if err != nil {
		t.Fatal(err)
	}
	pk, vk, err := plonk.Setup(cs, testSRSOnce())
	if err != nil {
		t.Fatal(err)
	}
	proof, err := plonk.Prove(pk, witness)
	if err != nil {
		t.Fatal(err)
	}
	if err := plonk.Verify(vk, proof, b.PublicValues()); err != nil {
		t.Fatalf("valid proof rejected: %v", err)
	}
	// 123² + 369 + 7 = 15129 + 376 = 15505.
	want := fr.NewElement(15505)
	if got := b.PublicValues()[0]; !got.Equal(&want) {
		t.Fatalf("public value %s, want 15505", got.String())
	}
	// Wrong public input must fail.
	if err := plonk.Verify(vk, proof, []fr.Element{fr.NewElement(15506)}); err == nil {
		t.Fatal("wrong public accepted")
	}
}

func TestCompileEmpty(t *testing.T) {
	b := NewBuilder()
	if _, _, err := b.Compile(); err == nil {
		t.Fatal("empty circuit compiled")
	}
}

func TestQuickSelectMatchesCond(t *testing.T) {
	prop := func(cond bool, a, c uint64) bool {
		b := NewBuilder()
		cv := uint64(0)
		if cond {
			cv = 1
		}
		cb := b.Secret(fr.NewElement(cv))
		av := b.Secret(fr.NewElement(a))
		cc := b.Secret(fr.NewElement(c))
		out := b.Value(b.Select(cb, av, cc))
		want := fr.NewElement(c)
		if cond {
			want = fr.NewElement(a)
		}
		return out.Equal(&want)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestQuickToBitsRoundTrip(t *testing.T) {
	prop := func(v uint32) bool {
		b := NewBuilder()
		x := b.Secret(fr.NewElement(uint64(v)))
		bits := b.ToBits(x, 32)
		back := b.Value(b.FromBits(bits))
		orig := b.Value(x)
		cs, w, err := b.Compile()
		if err != nil {
			return false
		}
		return back.Equal(&orig) && cs.IsSatisfied(w) == nil
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 20}); err != nil {
		t.Fatal(err)
	}
}

func TestFixedDivPos(t *testing.T) {
	b := NewBuilder()
	x := b.Secret(FixedFromFloat(7.5))
	y := b.Secret(FixedFromFloat(2.5))
	q := b.FixedDivPos(x, y, 40)
	if got := FixedToFloat(b.Value(q)); got < 2.999 || got > 3.001 {
		t.Fatalf("7.5 / 2.5 = %v", got)
	}
	checkSatisfied(t, b)

	// Division result must satisfy the remainder bound: a forged quotient
	// fails the constraints.
	b2 := NewBuilder()
	x2 := b2.Secret(FixedFromFloat(1.0))
	y2 := b2.Secret(FixedFromFloat(3.0))
	q2 := b2.FixedDivPos(x2, y2, 40)
	if got := FixedToFloat(b2.Value(q2)); got < 0.33 || got > 0.34 {
		t.Fatalf("1/3 = %v", got)
	}
	checkSatisfied(t, b2)
}

// TestRandomCircuitsProve builds randomized (seeded) circuits from the
// gadget vocabulary, checks satisfiability, and runs the full SNARK cycle —
// a fuzz-style property test over the whole front-end/back-end pipeline.
func TestRandomCircuitsProve(t *testing.T) {
	if testing.Short() {
		t.Skip("fuzz prove skipped in -short mode")
	}
	for seed := int64(1); seed <= 5; seed++ {
		seed := seed
		t.Run(itoa(int(seed)), func(t *testing.T) {
			b := NewBuilder()
			state := uint64(seed)
			next := func(n uint64) uint64 {
				state = state*6364136223846793005 + 1442695040888963407
				return (state >> 33) % n
			}
			vars := []Variable{
				b.Secret(fr.NewElement(next(1000) + 1)),
				b.Secret(fr.NewElement(next(1000) + 1)),
			}
			for i := 0; i < 40; i++ {
				x := vars[next(uint64(len(vars)))]
				y := vars[next(uint64(len(vars)))]
				var v Variable
				switch next(8) {
				case 0:
					v = b.Add(x, y)
				case 1:
					v = b.Sub(x, y)
				case 2:
					v = b.Mul(x, y)
				case 3:
					v = b.Square(x)
				case 4:
					v = b.AddConst(x, fr.NewElement(next(50)))
				case 5:
					v = b.MulConst(x, fr.NewElement(next(50)+1))
				case 6:
					v = b.IsZero(x)
				default:
					v = b.Select(b.IsEqual(x, y), x, y)
				}
				vars = append(vars, v)
			}
			out := vars[len(vars)-1]
			pub := b.Public(b.Value(out))
			b.AssertEqual(pub, out)

			cs, witness, err := b.Compile()
			if err != nil {
				t.Fatal(err)
			}
			if err := cs.IsSatisfied(witness); err != nil {
				t.Fatalf("random circuit unsatisfied: %v", err)
			}
			pk, vk, err := plonk.Setup(cs, testSRSOnce())
			if err != nil {
				t.Fatal(err)
			}
			proof, err := plonk.Prove(pk, witness)
			if err != nil {
				t.Fatal(err)
			}
			if err := plonk.Verify(vk, proof, b.PublicValues()); err != nil {
				t.Fatalf("random circuit proof rejected: %v", err)
			}
			// And the wrong public value must fail.
			wrong := b.PublicValues()
			wrong[0].Add(&wrong[0], &frOne)
			if err := plonk.Verify(vk, proof, wrong); err == nil {
				t.Fatal("wrong public accepted on random circuit")
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}
