package audit

import (
	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
)

// ConstraintSystem audits a compiled backend system plus its witness —
// the post-Compile view, with public inputs renumbered to the front and
// exposure gates prepended. Without the builder's annotation ledger only
// the structural analyses run (liveness, gate hygiene, satisfaction, and
// lookup configuration), so this is a coarser check than Circuit; it
// exists to validate that compilation preserved the audited structure
// and to audit systems that arrive over the wire.
func ConstraintSystem(name string, cs *plonk.ConstraintSystem, witness []fr.Element) *Report {
	r := &Report{Circuit: name}
	gates := cs.Gates()
	view := make([]circuit.AuditGate, len(gates))
	for i, g := range gates {
		view[i] = circuit.AuditGate{
			QL: g.QL, QR: g.QR, QO: g.QO, QM: g.QM, QC: g.QC,
			Kind: g.Kind, K: g.K, A: g.A, B: g.B, C: g.C,
		}
	}
	nbVars := cs.NbVariables()
	for i, g := range view {
		for _, w := range []int{g.A, g.B, g.C} {
			if w < 0 || w >= nbVars {
				r.add(RuleWiring, w, i, "gate references unknown variable (have %d)", nbVars)
				return r
			}
		}
	}
	if cs.HasLookup() && cs.RangeTableBits() == 0 {
		r.add(RuleConfig, -1, -1, "lookup rows present but no range table enabled")
	}
	if cs.RangeTableBits() > plonk.MaxTableBits {
		r.add(RuleConfig, -1, -1, "table bits %d exceed backend maximum %d", cs.RangeTableBits(), plonk.MaxTableBits)
	}

	occurrences := make([]int, nbVars)
	for i := range view {
		for _, v := range liveVars(view, i, true) {
			occurrences[v]++
		}
	}
	for v := 0; v < nbVars; v++ {
		if occurrences[v] == 0 {
			r.add(RuleUnconstrained, v, -1, "variable appears in no live constraint slot")
		}
	}

	auditGateHygiene(r, view)

	if len(witness) == nbVars {
		if err := cs.IsSatisfied(witness); err != nil {
			r.add(RuleUnsatisfied, -1, -1, "%v", err)
		}
	} else if witness != nil {
		r.add(RuleUnsatisfied, -1, -1, "witness length %d, want %d", len(witness), nbVars)
	}
	return r
}
