// Package audit is the constraint-system soundness auditor: it walks a
// compiled circuit (the builder's AuditInfo snapshot, or a backend
// plonk.ConstraintSystem) and reports structural under-constraint — the
// class of bug where every Go-level test stays green but a malicious
// prover can substitute witness values because some wire is not actually
// pinned by the constraints.
//
// The analyses, in the order they run:
//
//   - configuration: lookup rows without a range table, Poseidon rows
//     without an MDS matrix, table bits outside the backend's bound;
//   - occurrence/liveness: wires appearing in zero constraints, counting
//     only selector-live slots (a q-coefficient of zero makes a wired
//     slot dead);
//   - gate hygiene: all-zero rows that are not custom-run closers,
//     byte-identical duplicate constraints, custom runs left open at the
//     end of the gate list;
//   - anchored usefulness: a backward reachability pass from "anchor"
//     gates (assertions over already-defined wires, lookup and custom
//     rows, and definitions whose determining coefficient is
//     witness-dependent, e.g. x·out=1) — wires whose values are computed
//     but never reach an anchor are dangling gadget outputs;
//   - determinedness: a forward fixpoint computing which wires are
//     forced by the constraints given the circuit inputs; internal
//     operation outputs that end up under-determined mean a dropped or
//     mangled defining gate;
//   - annotation discharge: gadgets record proof obligations while
//     emitting gates (this wire is used as a boolean, this span realizes
//     an n-bit range check, this constant is pinned); the auditor checks
//     the surviving gates actually discharge each obligation;
//   - satisfaction: the reference gate semantics (including custom-gate
//     next-row reads and lookup table bounds) evaluated on the builder's
//     eager witness.
//
// All registered application circuits must audit clean; the mutation
// tests in the registry package validate the auditor by deleting single
// gates and asserting the mutant is flagged.
package audit

import (
	"fmt"
	"sort"
	"strings"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
)

// Rule identifiers, one per analysis. Stable strings: zkdet-lint -json
// emits them and CI greps them.
const (
	RuleBuilderError  = "builder-error"
	RuleConfig        = "bad-config"
	RuleWiring        = "gate-wiring"
	RuleUnconstrained = "unconstrained-wire"
	RuleDeadGate      = "dead-gate"
	RuleDuplicate     = "duplicate-gate"
	RuleCustomOpen    = "custom-run-open"
	RuleDangling      = "dangling-wire"
	RuleUndetermined  = "undetermined-wire"
	RuleMissingBool   = "missing-boolean"
	RuleConstUnpinned = "const-unpinned"
	RuleRangeBroken   = "range-check-broken"
	RuleUnsatisfied   = "unsatisfied-gate"
)

// Finding is one auditor diagnostic.
type Finding struct {
	Rule string
	Var  int // wire id in builder numbering, -1 if not wire-specific
	Gate int // gate index, -1 if not gate-specific
	Msg  string
}

func (f Finding) String() string {
	var loc []string
	if f.Gate >= 0 {
		loc = append(loc, fmt.Sprintf("gate %d", f.Gate))
	}
	if f.Var >= 0 {
		loc = append(loc, fmt.Sprintf("wire %d", f.Var))
	}
	if len(loc) == 0 {
		return fmt.Sprintf("[%s] %s", f.Rule, f.Msg)
	}
	return fmt.Sprintf("[%s] %s: %s", f.Rule, strings.Join(loc, ", "), f.Msg)
}

// Report is the result of auditing one circuit.
type Report struct {
	Circuit  string
	Findings []Finding
}

// Clean reports whether the audit produced no findings.
func (r *Report) Clean() bool { return len(r.Findings) == 0 }

func (r *Report) String() string {
	if r.Clean() {
		return fmt.Sprintf("%s: clean", r.Circuit)
	}
	var sb strings.Builder
	fmt.Fprintf(&sb, "%s: %d finding(s)\n", r.Circuit, len(r.Findings))
	for _, f := range r.Findings {
		sb.WriteString("  " + f.String() + "\n")
	}
	return sb.String()
}

func (r *Report) add(rule string, v, g int, format string, args ...any) {
	r.Findings = append(r.Findings, Finding{Rule: rule, Var: v, Gate: g, Msg: fmt.Sprintf(format, args...)})
}

// Rules returns the distinct rule identifiers present, sorted.
func (r *Report) Rules() []string {
	set := make(map[string]bool)
	for _, f := range r.Findings {
		set[f.Rule] = true
	}
	out := make([]string, 0, len(set))
	for rule := range set {
		out = append(out, rule)
	}
	sort.Strings(out)
	return out
}

func isCustom(k plonk.GateKind) bool {
	return k == plonk.KindMiMC || k == plonk.KindPoseidonFull || k == plonk.KindPoseidonPartial
}

// liveSlots reports which of a gate's three wire slots the constraint
// actually reads. An arith gate with qL=qM=0 never looks at its a-wire no
// matter what is wired there; lookup rows read only a; custom rows read
// all three.
func liveSlots(g circuit.AuditGate) (a, b, c bool) {
	switch {
	case g.Kind == plonk.KindLookup:
		return true, false, false
	case isCustom(g.Kind):
		return true, true, true
	default:
		a = !g.QL.IsZero() || !g.QM.IsZero()
		b = !g.QR.IsZero() || !g.QM.IsZero()
		c = !g.QO.IsZero()
		return a, b, c
	}
}

// zeroRow reports an arith gate with every selector zero — constraint-free.
func zeroRow(g circuit.AuditGate) bool {
	return g.Kind == plonk.KindArith &&
		g.QL.IsZero() && g.QR.IsZero() && g.QO.IsZero() && g.QM.IsZero() && g.QC.IsZero()
}

// liveVars collects the distinct wire ids in live slots of gate i,
// including the next-row wires a custom gate at i-1 reads.
func liveVars(gates []circuit.AuditGate, i int, withNextRow bool) []int {
	g := gates[i]
	la, lb, lc := liveSlots(g)
	if withNextRow && i > 0 && isCustom(gates[i-1].Kind) {
		// The previous custom gate reads all of this row's wires.
		la, lb, lc = true, true, true
	}
	var out []int
	add := func(v int) {
		for _, u := range out {
			if u == v {
				return
			}
		}
		out = append(out, v)
	}
	if la {
		add(g.A)
	}
	if lb {
		add(g.B)
	}
	if lc {
		add(g.C)
	}
	return out
}

// Circuit audits a builder snapshot. The returned report is empty for a
// fully-constrained circuit; every finding names the rule, the wire
// and/or gate involved, and what is wrong.
func Circuit(info *circuit.AuditInfo) *Report {
	r := &Report{Circuit: info.Name}
	if info.Err != nil {
		r.add(RuleBuilderError, -1, -1, "builder recorded error: %v", info.Err)
		return r
	}
	if len(info.Gates) == 0 {
		r.add(RuleConfig, -1, -1, "circuit has no gates")
		return r
	}

	// Configuration and wiring sanity; later passes index freely.
	hasLookupRows := false
	hasPoseidonRows := false
	for i, g := range info.Gates {
		if g.Kind == plonk.KindLookup {
			hasLookupRows = true
		}
		if g.Kind == plonk.KindPoseidonFull || g.Kind == plonk.KindPoseidonPartial {
			hasPoseidonRows = true
		}
		for _, w := range []int{g.A, g.B, g.C} {
			if w < 0 || w >= info.NbVars {
				r.add(RuleWiring, w, i, "gate references unknown wire (have %d)", info.NbVars)
				return r
			}
		}
	}
	if hasLookupRows && info.LookupBits == 0 {
		r.add(RuleConfig, -1, -1, "lookup rows present but no range table enabled")
	}
	if info.LookupBits > plonk.MaxTableBits {
		r.add(RuleConfig, -1, -1, "table bits %d exceed backend maximum %d", info.LookupBits, plonk.MaxTableBits)
	}
	if hasPoseidonRows && !info.MDSSet {
		r.add(RuleConfig, -1, -1, "Poseidon custom rows present but no MDS matrix set")
	}

	occurrences := make([]int, info.NbVars)
	for i := range info.Gates {
		for _, v := range liveVars(info.Gates, i, true) {
			occurrences[v]++
		}
	}
	for v := 0; v < info.NbVars; v++ {
		if occurrences[v] == 0 {
			r.add(RuleUnconstrained, v, -1,
				"%s wire appears in no live constraint slot", kindName(info.Kinds, v))
		}
	}

	auditGateHygiene(r, info.Gates)
	auditDangling(r, info, occurrences)
	auditDeterminedness(r, info, occurrences)
	auditAnnotations(r, info)
	auditSatisfaction(r, info)
	return r
}

func kindName(kinds []circuit.AuditVarKind, v int) string {
	if v >= len(kinds) {
		return "unknown"
	}
	switch kinds[v] {
	case circuit.AuditVarPublic:
		return "public"
	case circuit.AuditVarSecret:
		return "secret"
	case circuit.AuditVarConstant:
		return "constant"
	case circuit.AuditVarHint:
		return "hint"
	default:
		return "internal"
	}
}

// auditGateHygiene flags dead rows, exact duplicates, and open custom runs.
func auditGateHygiene(r *Report, gates []circuit.AuditGate) {
	seen := make(map[string]int)
	for i, g := range gates {
		if zeroRow(g) {
			// The only sanctioned all-zero row is the NoOpRow closing a
			// custom-gate run (the last round's next-row read lands here).
			if i == 0 || !isCustom(gates[i-1].Kind) {
				r.add(RuleDeadGate, -1, i, "all-zero row is not a custom-run closer")
			}
			continue
		}
		key := gateKey(g)
		if j, ok := seen[key]; ok {
			r.add(RuleDuplicate, -1, i, "identical constraint already emitted at gate %d", j)
		} else {
			seen[key] = i
		}
	}
	for i, g := range gates {
		if !isCustom(g.Kind) {
			continue
		}
		// Each custom row reads the NEXT row's wires, so a run must end
		// with a NoOpRow carrying the final state — never fall through
		// into an arbitrary arith/lookup row, and never end the circuit.
		if i+1 >= len(gates) {
			r.add(RuleCustomOpen, -1, i, "custom-gate run not closed by a NoOpRow")
		} else if ng := gates[i+1]; !isCustom(ng.Kind) && !zeroRow(ng) {
			r.add(RuleCustomOpen, -1, i,
				"custom row falls through into an active row instead of a NoOpRow closer")
		}
	}
}

func gateKey(g circuit.AuditGate) string {
	return fmt.Sprintf("%d|%s|%s|%s|%s|%s|%s|%s|%s|%d|%d|%d",
		g.Kind, g.QL.String(), g.QR.String(), g.QO.String(), g.QM.String(), g.QC.String(),
		g.K[0].String(), g.K[1].String(), g.K[2].String(), g.A, g.B, g.C)
}

// auditDangling runs the anchored-usefulness analysis: every computed
// wire must (transitively) feed an anchor — an assertion over
// already-defined wires, a lookup or custom row, or a definition whose
// determining coefficient is witness-dependent (x·out=1 asserts x≠0 even
// if out is never reused). Wires that never reach an anchor are computed
// and then ignored: the classic unconstrained-gadget-output bug.
func auditDangling(r *Report, info *circuit.AuditInfo, occurrences []int) {
	born := make([]bool, info.NbVars)
	for v, k := range info.Kinds {
		// Inputs exist before any gate; everything else (internal outputs,
		// hints, constants) is "born" at its first live occurrence.
		if k == circuit.AuditVarPublic || k == circuit.AuditVarSecret {
			born[v] = true
		}
	}

	fresh := make([][]int, len(info.Gates))
	anchor := make([]bool, len(info.Gates))
	seen := append([]bool(nil), born...)
	for i, g := range info.Gates {
		vars := liveVars(info.Gates, i, true)
		for _, v := range vars {
			if !seen[v] {
				fresh[i] = append(fresh[i], v)
				seen[v] = true
			}
		}
		switch {
		case len(fresh[i]) == 0:
			anchor[i] = true // pure assertion over existing wires
		case g.Kind != plonk.KindArith:
			anchor[i] = true // lookup/custom rows constrain their wires
		default:
			// A fresh wire in the a/b slot of a multiplicative gate has a
			// witness-dependent determining coefficient: the gate asserts
			// something about the other operand (e.g. Inverse, Div, IsZero).
			if !g.QM.IsZero() {
				for _, v := range fresh[i] {
					if v == g.A || v == g.B {
						anchor[i] = true
						break
					}
				}
			}
		}
	}

	useful := make([]bool, info.NbVars)
	for _, v := range info.Discards {
		if v >= 0 && v < info.NbVars {
			useful[v] = true // deliberately discarded; feeds nothing by design
		}
	}
	markGate := func(i int) bool {
		changed := false
		for _, v := range liveVars(info.Gates, i, true) {
			if !useful[v] {
				useful[v] = true
				changed = true
			}
		}
		return changed
	}
	for i := range info.Gates {
		if anchor[i] {
			markGate(i)
		}
	}
	for changed := true; changed; {
		changed = false
		for i := len(info.Gates) - 1; i >= 0; i-- {
			if anchor[i] {
				continue
			}
			reached := false
			for _, v := range fresh[i] {
				if useful[v] {
					reached = true
					break
				}
			}
			if reached && markGate(i) {
				changed = true
			}
		}
	}

	for v := 0; v < info.NbVars; v++ {
		if occurrences[v] == 0 || useful[v] {
			continue
		}
		if v < len(info.Kinds) && info.Kinds[v] == circuit.AuditVarConstant {
			continue // an unused constant is dead weight, not under-constraint
		}
		r.add(RuleDangling, v, -1,
			"%s wire is computed but never reaches an assertion, public input, or lookup",
			kindName(info.Kinds, v))
	}
}

// auditDeterminedness computes which wires the constraints force given
// the inputs, in a single forward pass over the gates. Inputs, hints, and
// constants start determined (hints are pinned by their recorded
// assertion obligations, which auditAnnotations checks separately).
//
// The pass is deliberately forward-only — no fixpoint. The eager builder
// emits the gate that defines an internal wire at the moment the wire is
// created, before any gate that consumes it, so on a sound circuit every
// internal wire is solved by the first gate mentioning it. A fixpoint
// would be too lenient under mutation: delete an interior gate c = a·b
// whose output feeds a later range check, and the range-check plumbing
// "back-solves" c even though the prover is now free to pick it (the
// multiplication relation is gone). Forward-only, the deleted defining
// gate leaves the wire undetermined at its first use and the cascade is
// reported.
func auditDeterminedness(r *Report, info *circuit.AuditInfo, occurrences []int) {
	det := make([]bool, info.NbVars)
	for v, k := range info.Kinds {
		if k != circuit.AuditVarInternal {
			det[v] = true
		}
	}

	for i, g := range info.Gates {
		switch {
		case g.Kind == plonk.KindLookup:
			continue
		case isCustom(g.Kind):
			// Custom rows determine their outputs from the round inputs:
			// MiMC pins c (=u²) and the next row's a-wire; Poseidon pins
			// the whole next-row state.
			if i+1 >= len(info.Gates) {
				continue
			}
			ng := info.Gates[i+1]
			if g.Kind == plonk.KindMiMC {
				if det[g.A] && det[g.B] {
					setDet(det, g.C)
					setDet(det, ng.A)
				}
			} else if det[g.A] && det[g.B] && det[g.C] {
				setDet(det, ng.A)
				setDet(det, ng.B)
				setDet(det, ng.C)
			}
		default:
			arithDetermines(info, det, g)
		}
	}

	for v := 0; v < info.NbVars; v++ {
		if occurrences[v] == 0 || det[v] {
			continue // zero-occurrence wires are already reported
		}
		if info.Kinds[v] != circuit.AuditVarInternal {
			continue
		}
		r.add(RuleUndetermined, v, -1,
			"internal wire is not forced by any surviving constraint")
	}
}

func setDet(det []bool, v int) bool {
	if det[v] {
		return false
	}
	det[v] = true
	return true
}

// arithDetermines propagates determinedness through one arith gate: if
// exactly one live wire is unknown and its coefficient is nonzero, the
// gate solves for it. A wire occupying both multiplicative slots (x²=x)
// has two roots and determines nothing.
func arithDetermines(info *circuit.AuditInfo, det []bool, g circuit.AuditGate) bool {
	la, lb, lc := liveSlots(g)
	unknown := -1
	slotA, slotB, slotC := false, false, false
	count := func(v int, on bool, slot *bool) bool {
		if !on || det[v] {
			return true
		}
		if unknown != -1 && unknown != v {
			return false // two distinct unknowns: can't solve
		}
		unknown = v
		*slot = true
		return true
	}
	if !count(g.A, la, &slotA) || !count(g.B, lb, &slotB) || !count(g.C, lc, &slotC) {
		return false
	}
	if unknown == -1 {
		return false
	}
	// Coefficient of the unknown. Quadratic occupancy (both a and b with
	// qM≠0) is not a unique solution.
	if slotA && slotB && !g.QM.IsZero() {
		return false
	}
	var coeff fr.Element
	if slotA {
		coeff = g.QL
		if !g.QM.IsZero() {
			var t fr.Element
			bv := info.Values[g.B]
			t.Mul(&g.QM, &bv)
			coeff.Add(&coeff, &t)
		}
	}
	if slotB {
		var cb fr.Element
		cb = g.QR
		if !g.QM.IsZero() {
			var t fr.Element
			av := info.Values[g.A]
			t.Mul(&g.QM, &av)
			cb.Add(&cb, &t)
		}
		coeff.Add(&coeff, &cb)
	}
	if slotC {
		coeff.Add(&coeff, &g.QO)
	}
	if coeff.IsZero() {
		return false
	}
	return setDet(det, unknown)
}

// auditAnnotations checks that the surviving gates discharge every proof
// obligation the gadgets recorded while emitting.
func auditAnnotations(r *Report, info *circuit.AuditInfo) {
	one := fr.One()
	var minusOne fr.Element
	minusOne.Neg(&one)

	isBoolGate := func(gi, v int) bool {
		if gi < 0 || gi >= len(info.Gates) {
			return false
		}
		g := info.Gates[gi]
		return g.Kind == plonk.KindArith && g.A == v && g.B == v &&
			g.QM.Equal(&one) && g.QL.Equal(&minusOne) &&
			g.QR.IsZero() && g.QO.IsZero() && g.QC.IsZero()
	}

	boolOK := make(map[int]bool)
	for _, bc := range info.BoolCons {
		if !isBoolGate(bc.Gate, bc.Var) {
			r.add(RuleMissingBool, bc.Var, bc.Gate, "recorded x²=x constraint is missing or mangled")
			continue
		}
		boolOK[bc.Var] = true
	}
	for _, sb := range info.StructBools {
		ok := true
		for _, gi := range sb.Gates {
			if gi < 0 || gi >= len(info.Gates) {
				ok = false
				break
			}
			g := info.Gates[gi]
			if g.QM.IsZero() || (g.A != sb.Var && g.C != sb.Var) {
				ok = false
				break
			}
		}
		if !ok {
			r.add(RuleMissingBool, sb.Var, -1, "structural boolean argument lost a supporting gate")
			continue
		}
		boolOK[sb.Var] = true
	}
	for _, v := range info.BoolDerived {
		boolOK[v] = true
	}
	for v, k := range info.Kinds {
		if k != circuit.AuditVarConstant {
			continue
		}
		val := info.Values[v]
		if val.IsZero() || val.Equal(&one) {
			boolOK[v] = true
		}
	}
	for _, bu := range info.BoolUses {
		if !boolOK[bu.Var] {
			r.add(RuleMissingBool, bu.Var, -1,
				"wire consumed as boolean by %s but never boolean-constrained", bu.Site)
		}
	}

	for _, cp := range info.ConstPins {
		bad := cp.Gate < 0 || cp.Gate >= len(info.Gates)
		if !bad {
			g := info.Gates[cp.Gate]
			var want fr.Element
			v := info.Values[cp.Var]
			want.Mul(&g.QL, &v)
			want.Add(&want, &g.QC)
			bad = g.Kind != plonk.KindArith || g.A != cp.Var || g.QL.IsZero() ||
				!g.QM.IsZero() || !g.QR.IsZero() || !g.QO.IsZero() || !want.IsZero()
		}
		if bad {
			r.add(RuleConstUnpinned, cp.Var, cp.Gate, "constant wire's pinning gate is missing or mangled")
		}
	}

	for _, ra := range info.Ranges {
		if ra.Start < 0 || ra.End > len(info.Gates) || ra.Start >= ra.End {
			r.add(RuleRangeBroken, ra.Var, -1, "%d-bit range check span collapsed", ra.Bits)
			continue
		}
		bools, lookups := 0, 0
		for gi := ra.Start; gi < ra.End; gi++ {
			g := info.Gates[gi]
			if g.Kind == plonk.KindLookup {
				lookups++
			} else if isBoolGate(gi, g.A) {
				bools++
			}
		}
		if ra.Booleans > 0 && bools != ra.Booleans {
			r.add(RuleRangeBroken, ra.Var, -1,
				"%d-bit classic range check has %d boolean rows, want %d", ra.Bits, bools, ra.Booleans)
		}
		if ra.Lookups > 0 {
			want := ra.Lookups
			if info.LookupBits > 0 {
				// Independently recompute the limb count the asserted width
				// requires; a recorded-but-wrong expectation is itself a bug.
				if need := (ra.Bits + info.LookupBits - 1) / info.LookupBits; need > want {
					want = need
				}
			}
			if lookups != want {
				r.add(RuleRangeBroken, ra.Var, -1,
					"%d-bit lookup range check has %d table rows, want %d", ra.Bits, lookups, want)
			}
		}
	}
}

// auditSatisfaction evaluates the reference gate semantics on the
// builder's eager witness — the builder-level mirror of
// plonk.ConstraintSystem.IsSatisfied (including custom-gate next-row
// reads and lookup table bounds). Structural mutations that survive the
// other passes (shifting a custom run off its closer, mangling a
// selector) surface here as arithmetic violations.
func auditSatisfaction(r *Report, info *circuit.AuditInfo) {
	for i, g := range info.Gates {
		a, b, c := info.Values[g.A], info.Values[g.B], info.Values[g.C]
		var acc, t fr.Element
		t.Mul(&g.QL, &a)
		acc.Add(&acc, &t)
		t.Mul(&g.QR, &b)
		acc.Add(&acc, &t)
		t.Mul(&g.QO, &c)
		acc.Add(&acc, &t)
		t.Mul(&a, &b)
		t.Mul(&t, &g.QM)
		acc.Add(&acc, &t)
		acc.Add(&acc, &g.QC)
		if !acc.IsZero() {
			r.add(RuleUnsatisfied, -1, i, "gate equation does not hold on the builder witness")
			continue
		}
		switch {
		case g.Kind == plonk.KindLookup:
			if info.LookupBits <= 0 {
				continue // reported by the config pass
			}
			if v, ok := a.Uint64(); !ok || v >= uint64(1)<<info.LookupBits {
				r.add(RuleUnsatisfied, g.A, i, "lookup wire value outside the %d-bit table", info.LookupBits)
			}
		case isCustom(g.Kind):
			if i+1 >= len(info.Gates) {
				continue // open run, reported by gate hygiene
			}
			ng := info.Gates[i+1]
			na, nb, nc := info.Values[ng.A], info.Values[ng.B], info.Values[ng.C]
			if !customRowHolds(g, info.MDS, a, b, c, na, nb, nc) {
				r.add(RuleUnsatisfied, -1, i, "custom round constraint does not hold against the next row")
			}
		}
	}
}

// customRowHolds mirrors the backend's checkCustomGate reference
// semantics (internal/plonk/cs.go) on concrete values.
func customRowHolds(g circuit.AuditGate, mds [3][3]fr.Element, a, b, c, na, nb, nc fr.Element) bool {
	switch g.Kind {
	case plonk.KindMiMC:
		var u, u2, t fr.Element
		u.Add(&a, &b)
		u.Add(&u, &g.K[0])
		u2.Square(&u)
		if !u2.Equal(&c) {
			return false
		}
		t.Square(&c)
		t.Mul(&t, &c)
		t.Mul(&t, &u)
		return t.Equal(&na)
	case plonk.KindPoseidonFull, plonk.KindPoseidonPartial:
		w := [3]fr.Element{a, b, c}
		next := [3]fr.Element{na, nb, nc}
		var sb [3]fr.Element
		for j := 0; j < 3; j++ {
			var t fr.Element
			t.Add(&w[j], &g.K[j])
			if g.Kind == plonk.KindPoseidonFull || j == 0 {
				var t2 fr.Element
				t2.Square(&t)
				t2.Square(&t2)
				t.Mul(&t2, &t)
			}
			sb[j] = t
		}
		for l := 0; l < 3; l++ {
			var acc, t fr.Element
			for j := 0; j < 3; j++ {
				t.Mul(&mds[l][j], &sb[j])
				acc.Add(&acc, &t)
			}
			if !acc.Equal(&next[l]) {
				return false
			}
		}
		return true
	}
	return true
}
