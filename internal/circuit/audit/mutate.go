package audit

import (
	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
)

// DropGate returns a deep copy of the snapshot with gate idx deleted and
// every gate-index reference in the annotation ledger remapped: indices
// above idx shift down, and references to the deleted gate itself become
// -1 (the obligation's discharging gate is gone — exactly the state a
// prover-side constraint-deletion attack leaves behind). Range spans
// containing idx shrink by one row. The mutation tests drive the auditor
// over these mutants; a sound auditor must flag every one.
func DropGate(info *circuit.AuditInfo, idx int) *circuit.AuditInfo {
	out := cloneInfo(info)
	if idx < 0 || idx >= len(out.Gates) {
		return out
	}
	out.Gates = append(out.Gates[:idx], out.Gates[idx+1:]...)

	remap := func(g int) int {
		switch {
		case g == idx:
			return -1
		case g > idx:
			return g - 1
		default:
			return g
		}
	}
	for i := range out.BoolCons {
		out.BoolCons[i].Gate = remap(out.BoolCons[i].Gate)
	}
	for i := range out.ConstPins {
		out.ConstPins[i].Gate = remap(out.ConstPins[i].Gate)
	}
	for i := range out.StructBools {
		for j := range out.StructBools[i].Gates {
			out.StructBools[i].Gates[j] = remap(out.StructBools[i].Gates[j])
		}
	}
	for i := range out.Ranges {
		ra := &out.Ranges[i]
		switch {
		case idx < ra.Start:
			ra.Start--
			ra.End--
		case idx < ra.End:
			ra.End--
		}
	}
	return out
}

func cloneInfo(info *circuit.AuditInfo) *circuit.AuditInfo {
	out := *info
	out.Values = append([]fr.Element(nil), info.Values...)
	out.Kinds = append([]circuit.AuditVarKind(nil), info.Kinds...)
	out.Gates = append([]circuit.AuditGate(nil), info.Gates...)
	out.BoolCons = append([]circuit.AuditBoolCon(nil), info.BoolCons...)
	out.BoolUses = append([]circuit.AuditBoolUse(nil), info.BoolUses...)
	out.BoolDerived = append([]int(nil), info.BoolDerived...)
	out.Ranges = append([]circuit.AuditRange(nil), info.Ranges...)
	out.ConstPins = append([]circuit.AuditConstPin(nil), info.ConstPins...)
	out.Discards = append([]int(nil), info.Discards...)
	out.StructBools = make([]circuit.AuditStructBool, len(info.StructBools))
	for i, sb := range info.StructBools {
		out.StructBools[i] = circuit.AuditStructBool{Var: sb.Var, Gates: append([]int(nil), sb.Gates...)}
	}
	return &out
}
