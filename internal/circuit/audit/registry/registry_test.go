package registry

import (
	"testing"

	"github.com/zkdet/zkdet/internal/circuit/audit"
)

// TestRegistryClean is the zero-false-positive half of the auditor's
// contract: every registered production circuit must audit clean.
func TestRegistryClean(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			info, err := e.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if r := audit.Circuit(info); !r.Clean() {
				t.Fatalf("clean circuit flagged:\n%s", r)
			}
		})
	}
}

// TestRegistryCompiles double-checks the snapshots correspond to
// compilable, satisfied constraint systems — the auditor must be
// auditing real circuits, not structurally broken ones.
func TestRegistryCompiles(t *testing.T) {
	if testing.Short() {
		t.Skip("short mode")
	}
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			info, err := e.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			if info.NbVars == 0 || len(info.Gates) == 0 {
				t.Fatal("empty snapshot")
			}
		})
	}
}
