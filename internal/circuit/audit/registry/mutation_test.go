package registry

import (
	"fmt"
	"testing"

	"github.com/zkdet/zkdet/internal/circuit/audit"
)

// maxMutantsPerCircuit caps the deletion sample per entry so the full
// sweep stays test-suite fast; gates are sampled at a uniform stride, so
// every region of every circuit is exercised.
const maxMutantsPerCircuit = 120

// TestMutationKillRate validates the auditor the only way that counts:
// delete single gates from every registered circuit and check the mutant
// is flagged. The acceptance bar is ≥95% of sampled single-gate-deletion
// mutants killed across all registered circuits.
func TestMutationKillRate(t *testing.T) {
	budget := maxMutantsPerCircuit
	if testing.Short() {
		budget = 25
	}
	totalTried, totalKilled := 0, 0
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			info, err := e.Build()
			if err != nil {
				t.Fatalf("build: %v", err)
			}
			n := len(info.Gates)
			stride := 1
			if n > budget {
				stride = n/budget + 1
			}
			tried, killed := 0, 0
			var missed []int
			for i := 0; i < n; i += stride {
				mut := audit.DropGate(info, i)
				tried++
				if audit.Circuit(mut).Clean() {
					missed = append(missed, i)
				} else {
					killed++
				}
			}
			totalTried += tried
			totalKilled += killed
			t.Logf("%s: %d/%d mutants killed (%d gates, stride %d)", e.Name, killed, tried, n, stride)
			if len(missed) > 0 {
				t.Logf("%s: surviving mutants at gates %v", e.Name, missed)
			}
		})
	}
	if totalTried == 0 {
		t.Fatal("no mutants generated")
	}
	rate := float64(totalKilled) / float64(totalTried)
	msg := fmt.Sprintf("overall kill rate %.1f%% (%d/%d)", 100*rate, totalKilled, totalTried)
	t.Log(msg)
	if rate < 0.95 {
		t.Fatalf("%s below the 95%% acceptance bar", msg)
	}
}
