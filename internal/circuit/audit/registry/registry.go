// Package registry names every application circuit the soundness auditor
// covers: raw gadget compositions (range checks, comparisons, fixed-point
// arithmetic, boolean logic), the hash gadgets in both classic and
// custom-gate lowering, the core π-family (encryption, transformation,
// validation, key negotiation), and the ML processors (logistic
// regression, transformer) in both classic and /lk variants.
//
// `zkdet-lint -audit` and `make audit` run the auditor over every entry;
// the mutation tests in this package delete single gates from each entry
// and assert the auditor flags the mutant.
package registry

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/apps/logreg"
	"github.com/zkdet/zkdet/internal/apps/transformer"
	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/mimc"
	"github.com/zkdet/zkdet/internal/poseidon"
)

// Entry is one registered circuit: Build constructs it with a full
// witness and returns the auditor snapshot.
type Entry struct {
	Name  string
	Build func() (*circuit.AuditInfo, error)
}

// snapshot finalizes a builder into a named audit snapshot.
func snapshot(name string, b *circuit.Builder) (*circuit.AuditInfo, error) {
	if err := b.Err(); err != nil {
		return nil, fmt.Errorf("registry: %s: %w", name, err)
	}
	info := b.AuditInfo()
	info.Name = name
	return info, nil
}

// exposed anchors a gadget output the way production circuits do: by
// asserting it equal to a public input carrying its computed value.
func exposed(b *circuit.Builder, v circuit.Variable) {
	b.AssertEqual(v, b.Public(b.Value(v)))
}

// Entries returns every registered circuit.
func Entries() []Entry {
	entries := []Entry{
		{Name: "gadgets/range16-classic", Build: func() (*circuit.AuditInfo, error) {
			b := circuit.NewBuilder()
			x := b.Secret(fr.NewElement(51234))
			b.AssertRange(x, 16)
			return snapshot("gadgets/range16-classic", b)
		}},
		{Name: "gadgets/range85-lk", Build: func() (*circuit.AuditInfo, error) {
			b := circuit.NewBuilder()
			b.EnableLookups(circuit.DefaultRangeTableBits)
			x := b.Secret(fr.NewElement(1 << 40))
			b.AssertRange(x, 85)
			y := b.Secret(fr.NewElement(300))
			b.AssertRange(y, 9) // single-limb path (9 < table bits)
			return snapshot("gadgets/range85-lk", b)
		}},
		{Name: "gadgets/compare-classic", Build: func() (*circuit.AuditInfo, error) {
			b := circuit.NewBuilder()
			x := b.Secret(fr.NewElement(100))
			y := b.Secret(fr.NewElement(4000))
			b.AssertLess(x, y, 16)
			le := b.IsLessOrEqual(x, y, 16)
			exposed(b, le)
			return snapshot("gadgets/compare-classic", b)
		}},
		{Name: "gadgets/compare-lk", Build: func() (*circuit.AuditInfo, error) {
			b := circuit.NewBuilder()
			b.EnableLookups(circuit.DefaultRangeTableBits)
			x := b.Secret(fr.NewElement(100))
			y := b.Secret(fr.NewElement(4000))
			b.AssertLess(x, y, 16)
			lt := b.IsLess(y, x, 16)
			exposed(b, lt)
			return snapshot("gadgets/compare-lk", b)
		}},
		{Name: "gadgets/boolean", Build: func() (*circuit.AuditInfo, error) {
			b := circuit.NewBuilder()
			x := b.Secret(fr.NewElement(1))
			y := b.Secret(fr.NewElement(0))
			b.AssertBoolean(x)
			b.AssertBoolean(y)
			z := b.Xor(b.And(x, y), b.Or(x, b.Not(y)))
			sel := b.Select(z, x, y)
			eq := b.IsEqual(sel, x)
			exposed(b, eq)
			return snapshot("gadgets/boolean", b)
		}},
		{Name: "gadgets/fixedpoint", Build: func() (*circuit.AuditInfo, error) {
			b := circuit.NewBuilder()
			x := b.Secret(circuit.FixedFromFloat(1.5))
			y := b.Secret(circuit.FixedFromFloat(2.25))
			prod := b.FixedMul(x, y)
			exposed(b, prod)
			r := b.ReLU(b.Sub(x, y), 40)
			exposed(b, r)
			q := b.FixedDivPos(x, y, 40)
			exposed(b, q)
			b.AbsDiffLessOrEqual(x, y, circuit.FixedFromFloat(4.0), 40)
			return snapshot("gadgets/fixedpoint", b)
		}},
		{Name: "hash/mimc-classic", Build: func() (*circuit.AuditInfo, error) {
			b := circuit.NewBuilder()
			msg := []circuit.Variable{b.Secret(fr.NewElement(5)), b.Secret(fr.NewElement(6))}
			exposed(b, mimc.GadgetHash(b, msg))
			return snapshot("hash/mimc-classic", b)
		}},
		{Name: "hash/mimc-custom", Build: func() (*circuit.AuditInfo, error) {
			b := circuit.NewBuilder()
			b.EnableCustomGates()
			msg := []circuit.Variable{b.Secret(fr.NewElement(5)), b.Secret(fr.NewElement(6))}
			exposed(b, mimc.GadgetHash(b, msg))
			return snapshot("hash/mimc-custom", b)
		}},
		{Name: "hash/poseidon-classic", Build: func() (*circuit.AuditInfo, error) {
			b := circuit.NewBuilder()
			msg := []circuit.Variable{b.Secret(fr.NewElement(7)), b.Secret(fr.NewElement(8)), b.Secret(fr.NewElement(9))}
			exposed(b, poseidon.GadgetHash(b, msg))
			return snapshot("hash/poseidon-classic", b)
		}},
		{Name: "hash/poseidon-custom", Build: func() (*circuit.AuditInfo, error) {
			b := circuit.NewBuilder()
			b.EnableCustomGates()
			msg := []circuit.Variable{b.Secret(fr.NewElement(7)), b.Secret(fr.NewElement(8)), b.Secret(fr.NewElement(9))}
			exposed(b, poseidon.GadgetHash(b, msg))
			return snapshot("hash/poseidon-custom", b)
		}},
		{Name: "ct/pi_ct", Build: func() (*circuit.AuditInfo, error) {
			// The confidential-token range circuit: AssertRange(v, 24) over
			// the lookup table plus the sigma-glue equations binding v to
			// the transfer proof's response and nonce commitment.
			return snapshot("ct/pi_ct", ct.AuditRangeCircuit())
		}},
	}

	for _, ac := range core.AuditCircuits() {
		ac := ac
		entries = append(entries, Entry{Name: ac.Name, Build: func() (*circuit.AuditInfo, error) {
			b, err := ac.Build()
			if err != nil {
				return nil, err
			}
			return snapshot(ac.Name, b)
		}})
	}

	for _, lk := range []bool{false, true} {
		lk := lk
		name := "apps/logreg"
		if lk {
			name += "-lk"
		}
		entries = append(entries, Entry{Name: name, Build: func() (*circuit.AuditInfo, error) {
			samples := []logreg.Sample{
				{X: []float64{0.1, 0.2}, Y: 0},
				{X: []float64{0.9, 0.8}, Y: 1},
				{X: []float64{0.8, 0.9}, Y: 1},
			}
			data, err := logreg.EncodeSamples(samples)
			if err != nil {
				return nil, err
			}
			trainer := &logreg.Trainer{
				N: len(samples), K: 2, Step: 0.5, Lambda: 0.05,
				MaxIters: 5000, Epsilon: 0.05, UseLookups: lk,
			}
			b, err := core.AuditProcessingCircuit(trainer, data)
			if err != nil {
				return nil, err
			}
			return snapshot(name, b)
		}})
	}

	for _, lk := range []bool{false, true} {
		lk := lk
		name := "apps/transformer"
		if lk {
			name += "-lk"
		}
		entries = append(entries, Entry{Name: name, Build: func() (*circuit.AuditInfo, error) {
			cfg := transformer.Config{SeqLen: 2, DModel: 3, DK: 2, DFF: 3, DOut: 2}
			bl, err := transformer.NewBlock(cfg, 42)
			if err != nil {
				return nil, err
			}
			bl.UseLookups = lk
			data, err := cfg.EncodeSequence([][]float64{
				{0.5, -0.3, 0.2},
				{-0.1, 0.4, 0.6},
			})
			if err != nil {
				return nil, err
			}
			b, err := core.AuditProcessingCircuit(bl, data)
			if err != nil {
				return nil, err
			}
			return snapshot(name, b)
		}})
	}
	return entries
}
