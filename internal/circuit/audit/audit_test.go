package audit

import (
	"testing"

	"github.com/zkdet/zkdet/internal/circuit"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/plonk"
)

// expose pins v to a public input so it anchors the dangling analysis,
// mirroring how the registry entries surface gadget outputs.
func expose(b *circuit.Builder, v circuit.Variable) {
	b.AssertEqual(v, b.Public(b.Value(v)))
}

func hasRule(t *testing.T, r *Report, rule string) {
	t.Helper()
	for _, f := range r.Findings {
		if f.Rule == rule {
			return
		}
	}
	t.Fatalf("want rule %q, got report:\n%s", rule, r)
}

func tinyInfo(t *testing.T) *circuit.AuditInfo {
	t.Helper()
	b := circuit.NewBuilder()
	x := b.Secret(fr.NewElement(7))
	y := b.Square(x)
	expose(b, y)
	info := b.AuditInfo()
	info.Name = "tiny"
	if rep := Circuit(info); !rep.Clean() {
		t.Fatalf("baseline not clean:\n%s", rep)
	}
	return info
}

func TestCleanBaseline(t *testing.T) { tinyInfo(t) }

func TestWiringOutOfRange(t *testing.T) {
	info := tinyInfo(t)
	info.Gates[0].A = info.NbVars + 3
	hasRule(t, Circuit(info), RuleWiring)
}

func TestUnsatisfiedWitness(t *testing.T) {
	info := tinyInfo(t)
	// Corrupt the squared wire's value: the defining gate no longer holds.
	info.Values[1] = fr.NewElement(999)
	hasRule(t, Circuit(info), RuleUnsatisfied)
}

func TestDanglingOutput(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Secret(fr.NewElement(3))
	y := b.Square(x)
	b.Add(y, x) // computed, never asserted or exposed
	expose(b, y)
	hasRule(t, Circuit(b.AuditInfo()), RuleDangling)
}

func TestMarkDiscardSuppressesDangling(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Secret(fr.NewElement(3))
	y := b.Square(x)
	dead := b.Add(y, x)
	b.MarkDiscard(dead)
	expose(b, y)
	if rep := Circuit(b.AuditInfo()); !rep.Clean() {
		t.Fatalf("discarded wire still reported:\n%s", rep)
	}
}

func TestUndeterminedAfterDefiningGateDrop(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Secret(fr.NewElement(7))
	y := b.Square(x)
	w := b.Square(y)
	expose(b, w)
	info := b.AuditInfo()
	if rep := Circuit(info); !rep.Clean() {
		t.Fatalf("baseline not clean:\n%s", rep)
	}
	// Deleting y's defining gate leaves the prover free to pick y: its
	// only remaining mention is w = y·y, where the quadratic occupancy
	// (two roots) determines nothing, and the exposure only pins w.
	hasRule(t, Circuit(DropGate(info, 0)), RuleUndetermined)
}

func TestMissingBooleanUse(t *testing.T) {
	b := circuit.NewBuilder()
	cond := b.Secret(fr.NewElement(1)) // never AssertBoolean'd
	x := b.Secret(fr.NewElement(5))
	y := b.Secret(fr.NewElement(9))
	expose(b, b.Select(cond, x, y))
	hasRule(t, Circuit(b.AuditInfo()), RuleMissingBool)
}

func TestMissingBooleanAfterConstraintDrop(t *testing.T) {
	b := circuit.NewBuilder()
	cond := b.Secret(fr.NewElement(1))
	b.AssertBoolean(cond)
	x := b.Secret(fr.NewElement(5))
	y := b.Secret(fr.NewElement(9))
	expose(b, b.Select(cond, x, y))
	info := b.AuditInfo()
	if rep := Circuit(info); !rep.Clean() {
		t.Fatalf("baseline not clean:\n%s", rep)
	}
	// The x²=x row is gate 0 (emitted right after the secrets).
	hasRule(t, Circuit(DropGate(info, info.BoolCons[0].Gate)), RuleMissingBool)
}

func TestConstUnpinned(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Secret(fr.NewElement(4))
	c := b.Constant(fr.NewElement(10))
	expose(b, b.Mul(x, c))
	info := b.AuditInfo()
	if rep := Circuit(info); !rep.Clean() {
		t.Fatalf("baseline not clean:\n%s", rep)
	}
	if len(info.ConstPins) == 0 {
		t.Fatal("no constant pin recorded")
	}
	hasRule(t, Circuit(DropGate(info, info.ConstPins[0].Gate)), RuleConstUnpinned)
}

func TestRangeBrokenClassic(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Secret(fr.NewElement(200))
	b.AssertRange(x, 8)
	expose(b, x)
	info := b.AuditInfo()
	if rep := Circuit(info); !rep.Clean() {
		t.Fatalf("baseline not clean:\n%s", rep)
	}
	if len(info.Ranges) == 0 {
		t.Fatal("no range obligation recorded")
	}
	// Drop one x²=x bit row inside the span.
	hasRule(t, Circuit(DropGate(info, info.Ranges[0].Start)), RuleRangeBroken)
}

func TestRangeBrokenLookup(t *testing.T) {
	b := circuit.NewBuilder()
	b.EnableLookups(8)
	x := b.Secret(fr.NewElement(60000))
	b.AssertRange(x, 16)
	expose(b, x)
	info := b.AuditInfo()
	if rep := Circuit(info); !rep.Clean() {
		t.Fatalf("baseline not clean:\n%s", rep)
	}
	ra := info.Ranges[0]
	if ra.Lookups == 0 {
		t.Fatal("expected lookup-based range obligation")
	}
	// Delete every lookup row in the span; the recount and the
	// independently recomputed limb requirement both disagree.
	mut := info
	for {
		dropped := false
		for gi := mut.Ranges[0].Start; gi < mut.Ranges[0].End; gi++ {
			if mut.Gates[gi].Kind == plonk.KindLookup {
				mut = DropGate(mut, gi)
				dropped = true
				break
			}
		}
		if !dropped {
			break
		}
	}
	hasRule(t, Circuit(mut), RuleRangeBroken)
}

func TestDeadGate(t *testing.T) {
	info := tinyInfo(t)
	info.Gates = append(info.Gates, circuit.AuditGate{Kind: plonk.KindArith})
	hasRule(t, Circuit(info), RuleDeadGate)
}

func TestDuplicateGate(t *testing.T) {
	info := tinyInfo(t)
	info.Gates = append(info.Gates, info.Gates[len(info.Gates)-1])
	hasRule(t, Circuit(info), RuleDuplicate)
}

func TestBadConfigTableBits(t *testing.T) {
	info := tinyInfo(t)
	info.LookupBits = plonk.MaxTableBits + 1
	hasRule(t, Circuit(info), RuleConfig)
}

func TestBadConfigLookupWithoutTable(t *testing.T) {
	info := tinyInfo(t)
	info.Gates = append(info.Gates, circuit.AuditGate{Kind: plonk.KindLookup})
	hasRule(t, Circuit(info), RuleConfig)
}

func TestBuilderErrorSurfaces(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Secret(fr.NewElement(2))
	expose(b, b.Square(x))
	b.Fail("gadget shape error")
	info := b.AuditInfo()
	if info.Err == nil {
		t.Fatal("expected builder error")
	}
	hasRule(t, Circuit(info), RuleBuilderError)
}

func TestInverseOfZeroUnsatisfied(t *testing.T) {
	b := circuit.NewBuilder()
	x := b.Secret(fr.Zero())
	expose(b, b.Inverse(x)) // x·out=1 cannot hold for x=0
	hasRule(t, Circuit(b.AuditInfo()), RuleUnsatisfied)
}

func TestCustomRunMutations(t *testing.T) {
	b := circuit.NewBuilder()
	b.EnableCustomGates()
	var mds [3][3]fr.Element
	for i := range mds {
		for j := range mds[i] {
			var s fr.Element
			s = fr.NewElement(uint64(i + j + 3))
			mds[i][j].Inverse(&s)
		}
	}
	b.SetPoseidonMDS(mds)
	x := b.Secret(fr.NewElement(11))
	y := b.Secret(fr.NewElement(22))
	z := b.Secret(fr.NewElement(33))
	var k [3]fr.Element
	k[0] = fr.NewElement(5)
	k[1] = fr.NewElement(6)
	k[2] = fr.NewElement(7)
	b.CustomGate(plonk.KindPoseidonFull, x, y, z, k)
	// Compute the expected next state exactly as the reference semantics.
	w := [3]fr.Element{b.Value(x), b.Value(y), b.Value(z)}
	var sb [3]fr.Element
	for j := 0; j < 3; j++ {
		var t5, t2 fr.Element
		t5.Add(&w[j], &k[j])
		t2.Square(&t5)
		t2.Square(&t2)
		t5.Mul(&t2, &t5)
		sb[j] = t5
	}
	var next [3]circuit.Variable
	for l := 0; l < 3; l++ {
		var acc, tt fr.Element
		for j := 0; j < 3; j++ {
			tt.Mul(&mds[l][j], &sb[j])
			acc.Add(&acc, &tt)
		}
		next[l] = b.Secret(acc)
	}
	b.NoOpRow(next[0], next[1], next[2])
	expose(b, next[0])
	b.MarkDiscard(next[1])
	b.MarkDiscard(next[2])
	info := b.AuditInfo()
	if rep := Circuit(info); !rep.Clean() {
		t.Fatalf("baseline not clean:\n%s", rep)
	}

	// Dropping the NoOpRow leaves the run open.
	var customIdx, closerIdx int = -1, -1
	for i, g := range info.Gates {
		if g.Kind == plonk.KindPoseidonFull {
			customIdx = i
			closerIdx = i + 1
		}
	}
	if customIdx < 0 {
		t.Fatal("no custom gate emitted")
	}
	hasRule(t, Circuit(DropGate(info, closerIdx)), RuleCustomOpen)

	// Mangling a round constant breaks the reference round equation.
	mut := DropGate(info, len(info.Gates)) // deep copy, no deletion
	mut.Gates[customIdx].K[0] = fr.NewElement(999)
	hasRule(t, Circuit(mut), RuleUnsatisfied)

	// Dropping the MDS matrix is a configuration error.
	mut2 := DropGate(info, len(info.Gates))
	mut2.MDSSet = false
	hasRule(t, Circuit(mut2), RuleConfig)
}
