package snapshot

import (
	"encoding/binary"
	"errors"
	"fmt"
	"os"
	"strings"
	"testing"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/storage"
	"github.com/zkdet/zkdet/internal/wal"
)

// counter mirrors the chain package's test contract: the durable engine
// restores onto a deterministically re-deployed genesis, so the tests need
// a contract of their own to deploy.
type counter struct{}

func (counter) Call(ctx *chain.CallContext, method string, args []byte) ([]byte, error) {
	switch method {
	case "inc":
		raw, err := ctx.Store.Get("count")
		if err != nil {
			return nil, err
		}
		var n uint64
		if len(raw) == 8 {
			n = binary.BigEndian.Uint64(raw)
		}
		n++
		buf := make([]byte, 8)
		binary.BigEndian.PutUint64(buf, n)
		if err := ctx.Store.Set("count", buf); err != nil {
			return nil, err
		}
		if err := ctx.Emit("Incremented", buf); err != nil {
			return nil, err
		}
		return buf, nil
	case "fail":
		if err := ctx.Store.Set("junk", []byte("rolled back")); err != nil {
			return nil, err
		}
		return nil, errors.New("deliberate failure")
	default:
		return nil, errors.New("unknown method")
	}
}

var testAlice = chain.AddressFromString("alice")

// genesis deploys the deterministic test genesis: a funded account and the
// counter contract. Every restore target must run the same function.
func genesis(t *testing.T) *chain.Chain {
	t.Helper()
	c := chain.New()
	c.Faucet(testAlice, 1_000_000)
	if _, err := c.Deploy("counter", counter{}, 1000); err != nil {
		t.Fatal(err)
	}
	return c
}

// node is one durable test node: chain + blob store + engine.
type node struct {
	c  *chain.Chain
	d  *DurableStore
	bs *DurableBlobs
}

// openNode opens (or reopens) a durable node at dir and recovers it.
func openNode(t *testing.T, dir string, opts Options) (*node, *RecoveryReport) {
	t.Helper()
	opts.Dir = dir
	opts.WAL.GroupCommit = -1 // immediate fsync keeps tests deterministic
	d, err := Open(opts)
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	bs := d.Blobs(storage.NewStore())
	c := genesis(t)
	rep, err := d.Recover(c)
	if err != nil {
		t.Fatalf("Recover: %v", err)
	}
	if err := d.Attach(c); err != nil {
		t.Fatalf("Attach: %v", err)
	}
	return &node{c: c, d: d, bs: bs}, rep
}

// seal submits one inc and seals a block, returning the tx hash.
func (n *node) seal(t *testing.T) chain.Hash {
	t.Helper()
	r, err := n.c.Submit(chain.Transaction{
		From: testAlice, Contract: "counter", Method: "inc", Nonce: n.c.NonceOf(testAlice),
	})
	if err != nil {
		t.Fatalf("submit: %v", err)
	}
	n.c.SealBlock()
	return r.TxHash
}

func TestCodecRoundTrip(t *testing.T) {
	n, _ := openNode(t, t.TempDir(), Options{})
	defer n.d.Close()
	for i := 0; i < 3; i++ {
		n.seal(t)
	}
	// A reverted tx exercises the error-string flattening.
	if _, err := n.c.Submit(chain.Transaction{
		From: testAlice, Contract: "counter", Method: "fail", Nonce: n.c.NonceOf(testAlice),
	}); err != nil {
		t.Fatal(err)
	}
	n.c.SealBlock()
	if _, err := n.bs.Put("alice", []byte("dataset-1")); err != nil {
		t.Fatal(err)
	}

	exp, err := n.c.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	data := Encode(&Snapshot{Manifest: Manifest{Role: Full}, State: exp, Blobs: n.bs.Local().Export()})
	// Deterministic: encoding the same state twice is byte-identical.
	if data2 := Encode(&Snapshot{Manifest: Manifest{Role: Full}, State: exp, Blobs: n.bs.Local().Export()}); string(data) != string(data2) {
		t.Fatal("encoding is not deterministic")
	}

	snap, err := Decode(data)
	if err != nil {
		t.Fatalf("Decode: %v", err)
	}
	if snap.Manifest.Role != Full || snap.Manifest.Height != exp.Height() || snap.Manifest.StateRoot != exp.StateRoot() {
		t.Fatalf("manifest %+v", snap.Manifest)
	}
	if len(snap.Blobs) != 1 || string(snap.Blobs[0].Data) != "dataset-1" || snap.Blobs[0].Owner != "alice" {
		t.Fatalf("blobs %+v", snap.Blobs)
	}
	dst := genesis(t)
	if err := dst.RestoreState(snap.State); err != nil {
		t.Fatalf("restore of decoded snapshot: %v", err)
	}
	if dst.HeadHash() != n.c.HeadHash() {
		t.Fatal("decoded snapshot restored to a different head")
	}
	// The reverted receipt's error survived as a string.
	last := snap.State.Bodies[4]
	if last.Receipts[0].Err == nil || !strings.Contains(last.Receipts[0].Err.Error(), "deliberate failure") {
		t.Fatalf("reverted receipt error = %v", last.Receipts[0].Err)
	}
}

func TestCrashRecoverFromWALOnly(t *testing.T) {
	dir := t.TempDir()
	n, rep := openNode(t, dir, Options{})
	if rep.SnapshotPath != "" || rep.BlocksReplayed != 0 {
		t.Fatalf("fresh dir recovery report %+v", rep)
	}
	var hashes []chain.Hash
	for i := 0; i < 5; i++ {
		hashes = append(hashes, n.seal(t))
	}
	uri, err := n.bs.Put("alice", []byte("durable-blob"))
	if err != nil {
		t.Fatal(err)
	}
	wantHead, wantRoot := n.c.HeadHash(), n.c.Head().StateRoot
	n.d.Crash() // SIGKILL: no Close, no flush

	n2, rep2 := openNode(t, dir, Options{})
	defer n2.d.Close()
	if rep2.SnapshotPath != "" {
		t.Fatalf("no checkpoint ran, yet recovery used %s", rep2.SnapshotPath)
	}
	if rep2.BlocksReplayed != 5 {
		t.Fatalf("replayed %d blocks, want 5", rep2.BlocksReplayed)
	}
	if n2.c.HeadHash() != wantHead || n2.c.Head().StateRoot != wantRoot {
		t.Fatal("recovered chain diverges from pre-crash head")
	}
	for i, h := range hashes {
		r, ok := n2.c.Receipt(h)
		if !ok || r.Err != nil {
			t.Fatalf("receipt %d lost in recovery", i)
		}
	}
	if got, err := n2.bs.Get(uri); err != nil || string(got) != "durable-blob" {
		t.Fatalf("blob after recovery: %q, %v", got, err)
	}
	// The recovered node keeps sealing on top.
	n2.seal(t)
	if n2.c.Height() != 6 {
		t.Fatalf("height after post-recovery seal = %d", n2.c.Height())
	}
}

func TestCheckpointThenCrashReplaysOnlyTail(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, Options{CheckpointEvery: 4})
	for i := 0; i < 10; i++ {
		n.seal(t)
	}
	n.d.checkpointWG.Wait() // let background checkpoints land
	if cp := n.d.LastCheckpoint(); cp < 4 {
		t.Fatalf("no checkpoint landed by height 10 (last=%d)", cp)
	}
	st := n.d.Stats()
	if st.Checkpoints == 0 {
		t.Fatalf("stats %+v", st)
	}
	wantHead := n.c.HeadHash()
	n.d.Crash()

	n2, rep := openNode(t, dir, Options{CheckpointEvery: 4})
	defer n2.d.Close()
	if rep.SnapshotPath == "" || rep.SnapshotHeight < 4 {
		t.Fatalf("recovery skipped the checkpoint: %+v", rep)
	}
	if rep.BlocksReplayed != int(10-rep.SnapshotHeight) {
		t.Fatalf("replayed %d blocks over snapshot at %d", rep.BlocksReplayed, rep.SnapshotHeight)
	}
	if n2.c.HeadHash() != wantHead {
		t.Fatal("recovered head diverges")
	}
}

func TestRecoverFallsBackWhenNewestSnapshotCorrupt(t *testing.T) {
	dir := t.TempDir()
	// Huge cadence: the test drives checkpoints explicitly so exactly two
	// snapshot files exist (the background scheduler may skip overlapping
	// attempts, which would make file counts racy).
	n, _ := openNode(t, dir, Options{CheckpointEvery: 1 << 20, KeepSnapshots: 2})
	for i := 0; i < 4; i++ {
		n.seal(t)
	}
	if err := n.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 4; i++ {
		n.seal(t)
	}
	if err := n.d.Checkpoint(); err != nil {
		t.Fatal(err)
	}
	wantHead := n.c.HeadHash()
	n.d.Crash()

	snaps, err := listSnapshots(dir)
	if err != nil || len(snaps) < 2 {
		t.Fatalf("want ≥2 retained snapshots, have %d (%v)", len(snaps), err)
	}
	newest := snaps[len(snaps)-1]
	data, err := os.ReadFile(newest.path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(newest.path, data, 0o644); err != nil {
		t.Fatal(err)
	}

	n2, rep := openNode(t, dir, Options{CheckpointEvery: 1 << 20, KeepSnapshots: 2})
	defer n2.d.Close()
	if len(rep.SkippedSnapshots) == 0 {
		t.Fatal("corrupt newest snapshot was not reported as skipped")
	}
	if rep.SnapshotHeight >= newest.height {
		t.Fatalf("recovery claims corrupt snapshot height %d", rep.SnapshotHeight)
	}
	if n2.c.HeadHash() != wantHead {
		t.Fatal("fallback recovery diverges from pre-crash head")
	}
}

func TestFullRolePrunesBodiesButRecoversHead(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, Options{Role: Full, CheckpointEvery: 4})
	var hashes []chain.Hash
	for i := 0; i < 9; i++ {
		hashes = append(hashes, n.seal(t))
	}
	n.d.checkpointWG.Wait()
	if n.d.Stats().PrunedTxs == 0 {
		t.Fatal("full role pruned nothing")
	}
	// Deep history is gone on the live node...
	if _, ok := n.c.Receipt(hashes[0]); ok {
		t.Fatal("full node retained a pre-checkpoint receipt")
	}
	wantHead := n.c.HeadHash()
	n.d.Crash()

	// ...and stays gone after recovery, but the head and recent receipts
	// are intact.
	n2, rep := openNode(t, dir, Options{Role: Full, CheckpointEvery: 4})
	defer n2.d.Close()
	if n2.c.HeadHash() != wantHead {
		t.Fatal("full-role recovery diverges")
	}
	if _, ok := n2.c.Receipt(hashes[len(hashes)-1]); !ok {
		t.Fatal("tip receipt lost in full-role recovery")
	}
	if rep.SnapshotHeight == 0 {
		t.Fatalf("full-role recovery used no snapshot: %+v", rep)
	}
}

func TestRecoverFailsOnWrongGenesis(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, Options{CheckpointEvery: 2, KeepSnapshots: 2})
	for i := 0; i < 4; i++ {
		n.seal(t)
	}
	n.d.checkpointWG.Wait()
	n.d.Crash()

	// A recovery whose genesis lacks the deployed contract must refuse the
	// snapshot (storage for an undeployed contract) AND the WAL (the
	// transactions cannot replay) — never silently produce a hybrid chain.
	opts := Options{Dir: dir, CheckpointEvery: 2}
	opts.WAL.GroupCommit = -1
	d, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	d.Blobs(storage.NewStore())
	c := chain.New()
	c.Faucet(testAlice, 1_000_000) // but no counter contract
	if _, err := d.Recover(c); err == nil {
		t.Fatal("recovery onto a divergent genesis succeeded")
	}
}

func TestAttachRequiresRecover(t *testing.T) {
	opts := Options{Dir: t.TempDir()}
	d, err := Open(opts)
	if err != nil {
		t.Fatal(err)
	}
	defer d.Close()
	if err := d.Attach(genesis(t)); !errors.Is(err, ErrNotRecovered) {
		t.Fatalf("Attach before Recover = %v", err)
	}
}

func TestWALPruningRetainsFallbackCoverage(t *testing.T) {
	dir := t.TempDir()
	n, _ := openNode(t, dir, Options{CheckpointEvery: 1 << 20, KeepSnapshots: 2, WAL: wal.Options{SegmentBytes: 1 << 10}})
	for i := 0; i < 20; i++ {
		n.seal(t)
		if i%5 == 4 {
			if err := n.d.Checkpoint(); err != nil {
				t.Fatal(err)
			}
		}
	}
	if n.d.Stats().WAL.PrunedSegments == 0 {
		t.Fatal("pruning never ran despite 4 checkpoints over tiny segments")
	}
	n.d.Crash()
	// Even with pruning active, every retained snapshot must be a viable
	// recovery base: corrupt all but the oldest and recover.
	snaps, _ := listSnapshots(dir)
	for _, sf := range snaps[1:] {
		data, err := os.ReadFile(sf.path)
		if err != nil {
			t.Fatal(err)
		}
		data[0] ^= 0xff
		os.WriteFile(sf.path, data, 0o644)
	}
	n2, rep := openNode(t, dir, Options{CheckpointEvery: 2, KeepSnapshots: 2})
	defer n2.d.Close()
	if n2.c.Height() != 20 {
		t.Fatalf("recovered to height %d, want 20 (report %+v)", n2.c.Height(), rep)
	}
}

// TestSnapshotCorruptionProperty is the snapshot half of the torn-write
// property suite: truncate or bit-flip an encoded snapshot at arbitrary
// offsets; Decode+Restore must either reproduce the original state or fail
// loudly — never load damaged state.
func TestSnapshotCorruptionProperty(t *testing.T) {
	n, _ := openNode(t, t.TempDir(), Options{})
	defer n.d.Close()
	for i := 0; i < 4; i++ {
		n.seal(t)
	}
	exp, err := n.c.ExportState()
	if err != nil {
		t.Fatal(err)
	}
	clean := Encode(&Snapshot{State: exp, Blobs: nil})
	wantHead := n.c.HeadHash()

	rng := newRNG(0x5eed5afe)
	for trial := 0; trial < 60; trial++ {
		data := make([]byte, len(clean))
		copy(data, clean)
		switch trial % 2 {
		case 0: // truncation
			data = data[:rng.next()%uint64(len(data))]
		case 1: // bit flip
			data[rng.next()%uint64(len(data))] ^= byte(1 << (rng.next() % 8))
		}
		snap, err := Decode(data)
		if err != nil {
			continue // loud failure: correct
		}
		// A decode that slipped through (CRC collision is ~impossible at
		// this trial count, but semantics allow it) must still restore to
		// the original state or be rejected by the state-root check.
		dst := genesis(t)
		if rerr := dst.RestoreState(snap.State); rerr == nil && dst.HeadHash() != wantHead {
			t.Fatalf("trial %d: corrupt snapshot loaded silently", trial)
		}
	}
}

// newRNG is a tiny xorshift for deterministic corruption trials.
type rng struct{ s uint64 }

func newRNG(seed uint64) *rng { return &rng{s: seed} }
func (r *rng) next() uint64 {
	r.s ^= r.s << 13
	r.s ^= r.s >> 7
	r.s ^= r.s << 17
	return r.s
}

// FuzzSnapshotDecode drives Decode with arbitrary bytes: it must never
// panic, and any successful decode must re-encode to the identical bytes
// (canonical form).
func FuzzSnapshotDecode(f *testing.F) {
	c := chain.New()
	c.Faucet(testAlice, 1_000)
	if _, err := c.Deploy("counter", counter{}, 100); err != nil {
		f.Fatal(err)
	}
	c.SealBlock()
	exp, err := c.ExportState()
	if err != nil {
		f.Fatal(err)
	}
	f.Add(Encode(&Snapshot{State: exp}))
	f.Add([]byte(snapMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := Decode(data)
		if err != nil {
			return
		}
		if re := Encode(snap); string(re) != string(data) {
			t.Fatalf("decode/encode not canonical: %d bytes in, %d out", len(data), len(re))
		}
	})
}

func TestRoleParsing(t *testing.T) {
	for _, tc := range []struct {
		in   string
		want Role
	}{{"archive", Archive}, {"full", Full}} {
		got, err := ParseRole(tc.in)
		if err != nil || got != tc.want {
			t.Fatalf("ParseRole(%q) = %v, %v", tc.in, got, err)
		}
		if got.String() != tc.in {
			t.Fatalf("String() = %q", got.String())
		}
	}
	if _, err := ParseRole("light"); err == nil {
		t.Fatal("ParseRole accepted unknown role")
	}
	_ = fmt.Sprintf("%v", Archive)
}
