// Package snapshot implements the durable state engine: periodic state
// snapshots checkpointed with the block's state root, composed with the
// write-ahead log (internal/wal) behind a DurableStore so a SIGKILL'd node
// restarts by restoring the latest verified snapshot and replaying the WAL
// tail through the chain's own import path.
package snapshot

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"hash/crc32"
	"sort"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/storage"
)

// Codec errors.
var (
	ErrBadSnapshot = errors.New("snapshot: malformed or corrupt snapshot file")
)

const (
	snapMagic   = "ZKSNAP01"
	snapVersion = 1
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

// Manifest is the snapshot's self-description, written at the head of the
// file and exposed to recovery before any state is decoded: the checkpoint
// height, the state root the restore must re-derive, the pruning role it
// was written under, and section counts.
type Manifest struct {
	Version   uint32
	Role      Role
	Height    uint64
	StateRoot chain.Hash
	// WALSeq is the WAL position captured atomically with the export: every
	// record below it is fully covered by this snapshot. Replay uses it to
	// skip non-idempotent records (faucet credits) the snapshot already
	// absorbed.
	WALSeq   uint64
	Blocks   int
	Bodies   int
	Accounts int
	Storages int
	Blobs    int
}

// Snapshot is the in-memory form of one checkpoint file: the chain state
// export plus the blob store contents.
type Snapshot struct {
	Manifest Manifest
	State    *chain.StateExport
	Blobs    []storage.BlobExport
}

// enc is a little-endian append-only buffer.
type enc struct{ b []byte }

func (e *enc) u8(v byte)       { e.b = append(e.b, v) }
func (e *enc) u32(v uint32)    { e.b = binary.LittleEndian.AppendUint32(e.b, v) }
func (e *enc) u64(v uint64)    { e.b = binary.LittleEndian.AppendUint64(e.b, v) }
func (e *enc) hash(h [32]byte) { e.b = append(e.b, h[:]...) }
func (e *enc) addr(a [20]byte) { e.b = append(e.b, a[:]...) }
func (e *enc) bytes(v []byte) {
	e.u32(uint32(len(v)))
	e.b = append(e.b, v...)
}
func (e *enc) str(s string) { e.bytes([]byte(s)) }

// dec is the matching reader; every accessor fails sticky on short input.
type dec struct {
	b   []byte
	off int
	err error
}

func (d *dec) take(n int) []byte {
	if d.err != nil {
		return nil
	}
	if d.off+n > len(d.b) || n < 0 {
		d.err = fmt.Errorf("%w: truncated at offset %d", ErrBadSnapshot, d.off)
		return nil
	}
	out := d.b[d.off : d.off+n]
	d.off += n
	return out
}
func (d *dec) u8() byte {
	v := d.take(1)
	if v == nil {
		return 0
	}
	return v[0]
}
func (d *dec) u32() uint32 {
	v := d.take(4)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(v)
}
func (d *dec) u64() uint64 {
	v := d.take(8)
	if v == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(v)
}
func (d *dec) hash() (h chain.Hash) {
	copy(h[:], d.take(32))
	return h
}
func (d *dec) addr() (a chain.Address) {
	copy(a[:], d.take(20))
	return a
}
func (d *dec) bytes() []byte {
	n := int(d.u32())
	if d.err != nil {
		return nil
	}
	v := d.take(n)
	if v == nil {
		return nil
	}
	out := make([]byte, n)
	copy(out, v)
	return out
}
func (d *dec) str() string { return string(d.bytes()) }

// count reads a section length and bounds it by the remaining bytes (each
// entry needs at least min bytes), so a corrupt count cannot drive a huge
// allocation.
func (d *dec) count(min int) int {
	n := int(d.u32())
	if d.err != nil {
		return 0
	}
	if min > 0 && n > (len(d.b)-d.off)/min+1 {
		d.err = fmt.Errorf("%w: implausible count %d at offset %d", ErrBadSnapshot, n, d.off)
		return 0
	}
	return n
}

func encodeTx(e *enc, tx *chain.Transaction) {
	e.addr(tx.From)
	e.addr(tx.To)
	e.str(tx.Contract)
	e.str(tx.Method)
	e.bytes(tx.Args)
	e.u64(tx.Value)
	e.u64(tx.Nonce)
	e.u64(tx.GasLimit)
}

func decodeTx(d *dec) chain.Transaction {
	return chain.Transaction{
		From:     d.addr(),
		To:       d.addr(),
		Contract: d.str(),
		Method:   d.str(),
		Args:     d.bytes(),
		Value:    d.u64(),
		Nonce:    d.u64(),
		GasLimit: d.u64(),
	}
}

// encodeReceipt flattens Receipt.Err to its string form. Receipts restored
// from a snapshot therefore lose the wrapped error chain — acceptable
// because the RPC gateway already serves errors as strings, and the WAL
// tail (recent history) regenerates its receipts natively by replaying
// transactions through the chain.
func encodeReceipt(e *enc, r *chain.Receipt) {
	e.hash(r.TxHash)
	e.u64(r.GasUsed)
	e.bytes(r.Return)
	e.u32(uint32(len(r.Logs)))
	for _, ev := range r.Logs {
		e.str(ev.Contract)
		e.str(ev.Name)
		e.bytes(ev.Topic)
		e.bytes(ev.Data)
	}
	if r.Err != nil {
		e.str(r.Err.Error())
	} else {
		e.str("")
	}
}

func decodeReceipt(d *dec) *chain.Receipt {
	r := &chain.Receipt{
		TxHash:  d.hash(),
		GasUsed: d.u64(),
		Return:  d.bytes(),
	}
	if n := d.count(8); n > 0 {
		r.Logs = make([]chain.Event, n)
		for i := range r.Logs {
			r.Logs[i] = chain.Event{
				Contract: d.str(),
				Name:     d.str(),
				Topic:    d.bytes(),
				Data:     d.bytes(),
			}
		}
	}
	if msg := d.str(); msg != "" {
		r.Err = errors.New(msg)
	}
	return r
}

func encodeBlock(e *enc, b *chain.Block) {
	e.u64(b.Number)
	e.hash(b.Parent)
	e.u64(uint64(b.Time.UnixNano()))
	e.u32(uint32(len(b.TxHashes)))
	for _, h := range b.TxHashes {
		e.hash(h)
	}
	e.hash(b.StateRoot)
}

func decodeBlock(d *dec) chain.Block {
	b := chain.Block{Number: d.u64(), Parent: d.hash()}
	b.Time = time.Unix(0, int64(d.u64()))
	if n := d.count(32); n > 0 {
		b.TxHashes = make([]chain.Hash, n)
		for i := range b.TxHashes {
			b.TxHashes[i] = d.hash()
		}
	}
	b.StateRoot = d.hash()
	return b
}

// Encode serializes a snapshot: magic, manifest, sections, then a CRC over
// everything before it. Map-backed sections are emitted in sorted order so
// encoding is deterministic.
func Encode(s *Snapshot) []byte {
	e := &enc{b: make([]byte, 0, 1<<16)}
	e.b = append(e.b, snapMagic...)

	exp := s.State
	m := Manifest{
		Version:   snapVersion,
		Role:      s.Manifest.Role,
		Height:    exp.Height(),
		StateRoot: exp.StateRoot(),
		WALSeq:    s.Manifest.WALSeq,
		Blocks:    len(exp.Blocks),
		Bodies:    len(exp.Bodies),
		Accounts:  len(exp.Accounts),
		Storages:  len(exp.Storages),
		Blobs:     len(s.Blobs),
	}
	e.u32(m.Version)
	e.u8(byte(m.Role))
	e.u64(m.Height)
	e.hash(m.StateRoot)
	e.u64(m.WALSeq)

	e.u32(uint32(m.Blocks))
	for i := range exp.Blocks {
		encodeBlock(e, &exp.Blocks[i])
	}

	e.u32(uint32(m.Bodies))
	bodyNums := make([]uint64, 0, len(exp.Bodies))
	for n := range exp.Bodies {
		bodyNums = append(bodyNums, n)
	}
	sortU64(bodyNums)
	for _, n := range bodyNums {
		bd := exp.Bodies[n]
		e.u64(n)
		e.u32(uint32(len(bd.Txs)))
		for i := range bd.Txs {
			encodeTx(e, &bd.Txs[i])
			if bd.Receipts[i] != nil {
				e.u8(1)
				encodeReceipt(e, bd.Receipts[i])
			} else {
				e.u8(0)
			}
		}
	}

	e.u32(uint32(m.Accounts))
	addrs := make([]chain.Address, 0, len(exp.Accounts))
	for a := range exp.Accounts {
		addrs = append(addrs, a)
	}
	sortAddrs(addrs)
	for _, a := range addrs {
		st := exp.Accounts[a]
		e.addr(a)
		e.u64(st.Balance)
		e.u64(st.Nonce)
	}

	e.u32(uint32(m.Storages))
	names := make([]string, 0, len(exp.Storages))
	for n := range exp.Storages {
		names = append(names, n)
	}
	sort.Strings(names)
	for _, name := range names {
		slots := exp.Storages[name]
		e.str(name)
		e.u32(uint32(len(slots)))
		keys := make([]string, 0, len(slots))
		for k := range slots {
			keys = append(keys, k)
		}
		sort.Strings(keys)
		for _, k := range keys {
			e.str(k)
			e.bytes(slots[k])
		}
	}

	e.u32(uint32(m.Blobs))
	for i := range s.Blobs {
		e.str(s.Blobs[i].Owner)
		e.bytes(s.Blobs[i].Data)
	}

	e.u32(crc32.Checksum(e.b, crcTable))
	return e.b
}

// Decode parses and integrity-checks a snapshot file. Any structural
// damage — truncation, bit flips, a bad CRC — returns ErrBadSnapshot; the
// semantic check (does the state root actually re-derive?) happens later
// in chain.RestoreState, so even a CRC collision cannot load wrong state
// silently.
func Decode(data []byte) (*Snapshot, error) {
	if len(data) < len(snapMagic)+4 || string(data[:len(snapMagic)]) != snapMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadSnapshot)
	}
	body, tail := data[:len(data)-4], data[len(data)-4:]
	if crc32.Checksum(body, crcTable) != binary.LittleEndian.Uint32(tail) {
		return nil, fmt.Errorf("%w: checksum mismatch", ErrBadSnapshot)
	}
	d := &dec{b: body, off: len(snapMagic)}

	var m Manifest
	m.Version = d.u32()
	if d.err == nil && m.Version != snapVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadSnapshot, m.Version)
	}
	m.Role = Role(d.u8())
	m.Height = d.u64()
	m.StateRoot = d.hash()
	m.WALSeq = d.u64()

	exp := &chain.StateExport{
		Bodies:   make(map[uint64]chain.BlockData),
		Accounts: make(map[chain.Address]chain.AccountState),
		Storages: make(map[string]map[string][]byte),
	}
	m.Blocks = d.count(8 + 32 + 8 + 4 + 32)
	exp.Blocks = make([]chain.Block, 0, m.Blocks)
	for i := 0; i < m.Blocks && d.err == nil; i++ {
		exp.Blocks = append(exp.Blocks, decodeBlock(d))
	}

	m.Bodies = d.count(8 + 4)
	for i := 0; i < m.Bodies && d.err == nil; i++ {
		n := d.u64()
		ntx := d.count(40 + 24 + 1)
		bd := chain.BlockData{
			Txs:      make([]chain.Transaction, ntx),
			Receipts: make([]*chain.Receipt, ntx),
		}
		for j := 0; j < ntx && d.err == nil; j++ {
			bd.Txs[j] = decodeTx(d)
			if d.u8() == 1 {
				bd.Receipts[j] = decodeReceipt(d)
			}
		}
		exp.Bodies[n] = bd
	}

	m.Accounts = d.count(20 + 16)
	for i := 0; i < m.Accounts && d.err == nil; i++ {
		a := d.addr()
		exp.Accounts[a] = chain.AccountState{Balance: d.u64(), Nonce: d.u64()}
	}

	m.Storages = d.count(4 + 4)
	for i := 0; i < m.Storages && d.err == nil; i++ {
		name := d.str()
		nslots := d.count(8)
		slots := make(map[string][]byte, nslots)
		for j := 0; j < nslots && d.err == nil; j++ {
			k := d.str()
			slots[k] = d.bytes()
		}
		exp.Storages[name] = slots
	}

	var blobs []storage.BlobExport
	m.Blobs = d.count(8)
	for i := 0; i < m.Blobs && d.err == nil; i++ {
		owner := d.str()
		data := d.bytes()
		blobs = append(blobs, storage.BlobExport{URI: storage.URIOf(data), Owner: owner, Data: data})
	}

	if d.err != nil {
		return nil, d.err
	}
	if d.off != len(body) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadSnapshot, len(body)-d.off)
	}
	if len(exp.Blocks) == 0 || exp.Height() != m.Height || exp.StateRoot() != m.StateRoot {
		return nil, fmt.Errorf("%w: manifest does not match decoded head", ErrBadSnapshot)
	}
	return &Snapshot{Manifest: m, State: exp, Blobs: blobs}, nil
}

func sortU64(v []uint64) { sort.Slice(v, func(i, j int) bool { return v[i] < v[j] }) }

func sortAddrs(v []chain.Address) {
	sort.Slice(v, func(i, j int) bool { return bytes.Compare(v[i][:], v[j][:]) < 0 })
}
