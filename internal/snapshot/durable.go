package snapshot

import (
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"sync/atomic"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/storage"
	"github.com/zkdet/zkdet/internal/wal"
)

// Role selects the pruning policy of a durable node.
type Role byte

const (
	// Archive retains every block body and receipt forever: snapshots
	// carry the whole history, and getReceipt answers for any transaction
	// ever sealed.
	Archive Role = iota
	// Full drops bodies and receipts below the last checkpoint (headers
	// are always kept): recovery is exactly as capable — state comes from
	// the snapshot, recent history from the WAL tail — but deep-history
	// receipt queries miss, mirroring Ethereum full-vs-archive nodes.
	Full
)

func (r Role) String() string {
	if r == Full {
		return "full"
	}
	return "archive"
}

// ParseRole parses "archive" or "full".
func ParseRole(s string) (Role, error) {
	switch s {
	case "archive":
		return Archive, nil
	case "full":
		return Full, nil
	}
	return Archive, fmt.Errorf("snapshot: unknown role %q (want archive or full)", s)
}

// WAL record types.
const (
	recBlock      = 1 // a sealed block: header + bodies + receipts
	recBlob       = 2 // a blob-store put: owner + bytes
	recBlobRemove = 3 // a blob-store remove: owner + URI
	recCheckpoint = 4 // a durable snapshot landed: height + state root
	recFaucet     = 5 // a devnet faucet credit: address + amount
)

// Engine errors.
var (
	ErrRecoveryGap  = errors.New("snapshot: WAL begins after the latest verified snapshot (pruned too far)")
	ErrDivergedLog  = errors.New("snapshot: WAL record disagrees with restored chain history")
	ErrReplayDrift  = errors.New("snapshot: replayed receipts differ from the logged receipts")
	ErrAttached     = errors.New("snapshot: store is already attached")
	ErrNotRecovered = errors.New("snapshot: Recover must run before Attach")
	ErrNoBlobStore  = errors.New("snapshot: WAL contains blob records but no blob store is wired")
)

// Options tunes a DurableStore.
type Options struct {
	// Dir is the data directory; the WAL lives in Dir/wal, snapshots are
	// snap-<height>.zks files in Dir itself.
	Dir string
	// Role selects archive (default) or full pruning.
	Role Role
	// CheckpointEvery is the snapshot cadence in blocks (default 64).
	CheckpointEvery uint64
	// KeepSnapshots bounds retained snapshot files (default 2): the latest
	// plus fallbacks in case the newest is damaged.
	KeepSnapshots int
	// WAL tunes the log (Dir is overridden to Dir/wal).
	WAL wal.Options
}

func (o *Options) fill() {
	if o.CheckpointEvery == 0 {
		o.CheckpointEvery = 64
	}
	if o.KeepSnapshots <= 0 {
		o.KeepSnapshots = 2
	}
	o.WAL.Dir = filepath.Join(o.Dir, "wal")
}

// Stats are the engine's cumulative counters.
type Stats struct {
	BlocksLogged   uint64
	BlobsLogged    uint64
	Checkpoints    uint64
	CheckpointSkip uint64 // checkpoint attempts skipped (pending txs or one in flight)
	PrunedTxs      uint64 // bodies dropped by full-role pruning
	WAL            wal.Stats
}

// RecoveryReport describes what Recover did.
type RecoveryReport struct {
	SnapshotPath     string   // the snapshot that restored, "" if none
	SnapshotHeight   uint64   // height it restored to
	SkippedSnapshots []string // newer snapshots that failed verification, most recent first
	BlocksReplayed   int      // WAL-tail blocks re-imported
	BlobsReplayed    int      // WAL-tail blob puts re-applied
	FaucetsReplayed  int      // WAL-tail faucet credits re-applied
	TornBytes        int64    // bytes the WAL truncated as a torn tail
	Head             uint64   // chain height after recovery

	baseSeq uint64 // the restored snapshot's WALSeq; records below it are covered
}

// DurableStore composes the write-ahead log and snapshot checkpoints
// behind the in-memory chain: an OnSeal hook logs every sealed block
// (group-commit fsynced before SealBlock returns, i.e. before any waiter
// is acknowledged), a blob wrapper logs every put, and a background
// checkpointer periodically snapshots the whole state and prunes the log.
//
// Lifecycle: Open → [Blobs] → deploy genesis → Recover → Attach → serve;
// Close on the way down. Crash abandons everything mid-state for tests.
type DurableStore struct {
	opts Options
	log  *wal.Log

	c     *chain.Chain
	blobs *DurableBlobs

	attached  atomic.Bool
	recovered atomic.Bool

	// markMu makes (state mutation, WAL append) pairs atomic with respect
	// to (WAL-mark capture, state export): a checkpoint either fully covers
	// an off-block mutation — its record's seq lands below the manifest's
	// WALSeq and replay skips it — or sees none of it and replay applies
	// the record. Without this, a faucet credit interleaving with an export
	// could be double-applied (or lost) on recovery.
	markMu sync.Mutex

	mu             sync.Mutex
	lastCheckpoint uint64   // guarded by mu; height of the newest durable snapshot
	checkpointing  bool     // guarded by mu; one checkpoint in flight at a time
	pruneMarks     []uint64 // guarded by mu; WAL marks of recent checkpoints, oldest first
	stats          Stats    // guarded by mu
	failed         error    // guarded by mu; sticky logging failure

	checkpointWG sync.WaitGroup
}

// Open creates or reopens a durable store at opts.Dir. Reopening performs
// the WAL's torn-tail repair but restores nothing yet — call Recover.
func Open(opts Options) (*DurableStore, error) {
	opts.fill()
	if err := os.MkdirAll(opts.Dir, 0o755); err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	l, err := wal.Open(opts.WAL)
	if err != nil {
		return nil, err
	}
	return &DurableStore{opts: opts, log: l}, nil
}

// Blobs wraps a local blob store so that every Put and Remove is logged to
// the WAL before it is acknowledged. Must be called before Recover when
// the deployment stores blobs.
func (d *DurableStore) Blobs(inner *storage.Store) *DurableBlobs {
	d.blobs = &DurableBlobs{d: d, inner: inner}
	return d.blobs
}

// Attach registers the durable OnSeal hook on the chain. Call it after
// Recover (enforced) and before the node starts sealing; hooks registered
// earlier (e.g. the indexer) see each block before it is persisted, which
// is harmless — persistence completes before SealBlock returns either way.
func (d *DurableStore) Attach(c *chain.Chain) error {
	if !d.recovered.Load() {
		return ErrNotRecovered
	}
	if !d.attached.CompareAndSwap(false, true) {
		return ErrAttached
	}
	d.c = c
	c.OnSeal(d.onSeal)
	return nil
}

// onSeal is the durability hook: it logs the sealed block (header, bodies,
// receipts) and blocks on the group commit, so by the time SealBlock
// returns — and the node acknowledges any submitter — the block is on
// disk. Runs under the chain's sealMu in strict height order.
func (d *DurableStore) onSeal(b chain.Block, receipts []*chain.Receipt) {
	txs, ok := d.c.BlockBody(b.Number)
	if !ok {
		d.fail(fmt.Errorf("snapshot: sealed block %d has no body", b.Number))
		return
	}
	payload := encodeBlockRecord(&b, txs, receipts)
	if _, err := d.log.AppendSync(recBlock, payload); err != nil {
		d.fail(fmt.Errorf("snapshot: logging block %d: %w", b.Number, err))
		return
	}
	d.mu.Lock()
	d.stats.BlocksLogged++
	due := b.Number >= d.lastCheckpoint+d.opts.CheckpointEvery
	d.mu.Unlock()
	if due {
		d.maybeCheckpoint()
	}
}

// maybeCheckpoint exports the state synchronously (cheap deep copy under
// the chain lock; the seal hook context guarantees the pending set is
// empty in the common case) and writes, fsyncs, and prunes on a background
// goroutine. At most one checkpoint runs at a time; a skipped attempt
// retries at the next sealed block.
func (d *DurableStore) maybeCheckpoint() {
	d.mu.Lock()
	if d.checkpointing {
		d.stats.CheckpointSkip++
		d.mu.Unlock()
		return
	}
	d.checkpointing = true
	d.mu.Unlock()

	done := func() {
		d.mu.Lock()
		d.checkpointing = false
		d.mu.Unlock()
	}
	walMark, exp, blobs, err := d.exportForCheckpoint()
	if err != nil {
		// Pending transactions (a submit raced the hook): try again later.
		d.mu.Lock()
		d.stats.CheckpointSkip++
		d.mu.Unlock()
		done()
		return
	}
	d.checkpointWG.Add(1)
	go func() {
		defer d.checkpointWG.Done()
		defer done()
		if err := d.writeCheckpoint(exp, blobs, walMark); err != nil {
			d.fail(err)
		}
	}()
}

// Checkpoint forces a synchronous snapshot at the current head (pending
// transactions permitting). Used by daemons at clean shutdown and tests.
func (d *DurableStore) Checkpoint() error {
	walMark, exp, blobs, err := d.exportForCheckpoint()
	if err != nil {
		return err
	}
	return d.writeCheckpoint(exp, blobs, walMark)
}

// exportForCheckpoint captures the WAL mark and exports the state as one
// atomic step (under markMu, which off-block mutators like Faucet also
// hold across their mutate+log pair). The mark is taken BEFORE the export,
// so every record below it is fully covered by the export: pruning to the
// mark can never drop a record the snapshot does not absorb, and replay
// can skip non-idempotent records below the manifest's WALSeq outright.
func (d *DurableStore) exportForCheckpoint() (uint64, *chain.StateExport, []storage.BlobExport, error) {
	d.markMu.Lock()
	defer d.markMu.Unlock()
	walMark := d.log.Stats().NextSeq
	exp, err := d.c.ExportState()
	if err != nil {
		return 0, nil, nil, err
	}
	var blobs []storage.BlobExport
	if d.blobs != nil {
		blobs = d.blobs.inner.Export()
	}
	return walMark, exp, blobs, nil
}

// Faucet durably credits an account outside any block (the devnet faucet):
// the credit and its WAL record are one atomic unit with respect to
// checkpoints, so recovery applies it exactly once — either from the
// snapshot that covered it or from the replayed record, never both.
func (d *DurableStore) Faucet(addr chain.Address, amount uint64) error {
	d.markMu.Lock()
	defer d.markMu.Unlock()
	d.c.Faucet(addr, amount)
	e := &enc{}
	e.addr(addr)
	e.u64(amount)
	if _, err := d.log.AppendSync(recFaucet, e.b); err != nil {
		return fmt.Errorf("snapshot: logging faucet: %w", err)
	}
	return nil
}

func snapName(height uint64) string { return fmt.Sprintf("snap-%016x.zks", height) }

// writeCheckpoint encodes and durably writes one snapshot file, then
// prunes: WAL segments below the checkpoint, older snapshot files beyond
// KeepSnapshots, and (full role) chain bodies below the checkpoint.
func (d *DurableStore) writeCheckpoint(exp *chain.StateExport, blobs []storage.BlobExport, walMark uint64) error {
	height := exp.Height()
	if d.opts.Role == Full {
		// A full node's snapshots carry no bodies below the checkpoint —
		// only the head block's body is retained so a restarting peer can
		// still serve the tip while it syncs.
		for n := range exp.Bodies {
			if n < height {
				delete(exp.Bodies, n)
			}
		}
	}
	data := Encode(&Snapshot{Manifest: Manifest{Role: d.opts.Role, WALSeq: walMark}, State: exp, Blobs: blobs})
	path := filepath.Join(d.opts.Dir, snapName(height))
	if err := writeFileAtomic(path, data); err != nil {
		return fmt.Errorf("snapshot: writing checkpoint %d: %w", height, err)
	}
	// The checkpoint record marks the snapshot durable inside the log
	// itself — recovery diagnostics can see exactly when pruning became
	// legal, and replay sanity-checks against it.
	ck := &enc{}
	ck.u64(height)
	ck.hash(exp.StateRoot())
	if _, err := d.log.AppendSync(recCheckpoint, ck.b); err != nil {
		return fmt.Errorf("snapshot: logging checkpoint %d: %w", height, err)
	}

	d.mu.Lock()
	if height > d.lastCheckpoint {
		d.lastCheckpoint = height
	}
	d.stats.Checkpoints++
	// Pruning lags the snapshots by KeepSnapshots: the WAL retains enough
	// log to recover from the OLDEST retained snapshot, so damage to the
	// newest file can always fall back without hitting a gap.
	d.pruneMarks = append(d.pruneMarks, walMark)
	var pruneTo uint64
	if len(d.pruneMarks) > d.opts.KeepSnapshots {
		d.pruneMarks = d.pruneMarks[len(d.pruneMarks)-d.opts.KeepSnapshots:]
	}
	if len(d.pruneMarks) == d.opts.KeepSnapshots {
		pruneTo = d.pruneMarks[0]
	}
	d.mu.Unlock()

	if pruneTo > 0 {
		d.log.PruneTo(pruneTo)
	}
	d.pruneSnapshots()
	if d.opts.Role == Full {
		dropped := d.c.PruneBodies(height)
		d.mu.Lock()
		d.stats.PrunedTxs += uint64(dropped)
		d.mu.Unlock()
	}
	return nil
}

// pruneSnapshots deletes the oldest snapshot files beyond KeepSnapshots.
func (d *DurableStore) pruneSnapshots() {
	snaps, err := listSnapshots(d.opts.Dir)
	if err != nil {
		return
	}
	for len(snaps) > d.opts.KeepSnapshots {
		os.Remove(snaps[0].path) //nolint:errcheck // best-effort; retried next checkpoint
		snaps = snaps[1:]
	}
}

type snapFile struct {
	path   string
	height uint64
}

// listSnapshots returns snapshot files ascending by height.
func listSnapshots(dir string) ([]snapFile, error) {
	names, err := filepath.Glob(filepath.Join(dir, "snap-*.zks"))
	if err != nil {
		return nil, err
	}
	var out []snapFile
	for _, p := range names {
		var h uint64
		if _, err := fmt.Sscanf(filepath.Base(p), "snap-%x.zks", &h); err != nil {
			continue
		}
		out = append(out, snapFile{path: p, height: h})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].height < out[j].height })
	return out, nil
}

// writeFileAtomic writes data to path via a temp file, fsyncing the file
// and its directory, so a crash leaves either the old file or the new one,
// never a torn mix.
func writeFileAtomic(path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := os.OpenFile(tmp, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		os.Remove(tmp) //nolint:errcheck // cleanup of a failed write
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		return err
	}
	if dir, err := os.Open(filepath.Dir(path)); err == nil {
		dir.Sync() //nolint:errcheck // advisory on some filesystems
		dir.Close()
	}
	return nil
}

// Recover restores the chain (and wired blob store) from disk: the newest
// snapshot that decodes and whose state root re-derives is restored, then
// the WAL tail is replayed through chain.ImportBlock — the same verified
// path a syncing peer uses — with the regenerated receipts cross-checked
// against the logged ones. Corrupt newest snapshots fall back to older
// ones; a fallback below the WAL's retained prefix fails loudly
// (ErrRecoveryGap) rather than leaving a gap, and any divergence between
// log and replay aborts the recovery.
//
// The chain must be a freshly deployed genesis (same deterministic genesis
// function as the original process). Hooks already attached — indexer,
// block bus — see every restored and replayed block in height order.
func (d *DurableStore) Recover(c *chain.Chain) (*RecoveryReport, error) {
	d.c = c
	rep := &RecoveryReport{}

	snaps, err := listSnapshots(d.opts.Dir)
	if err != nil {
		return nil, fmt.Errorf("snapshot: %w", err)
	}
	// Newest first; fall back on damage.
	for i := len(snaps) - 1; i >= 0; i-- {
		sf := snaps[i]
		data, err := os.ReadFile(sf.path)
		if err != nil {
			rep.SkippedSnapshots = append(rep.SkippedSnapshots, fmt.Sprintf("%s: %v", filepath.Base(sf.path), err))
			continue
		}
		snap, err := Decode(data)
		if err == nil {
			err = c.RestoreState(snap.State)
		}
		if err != nil {
			rep.SkippedSnapshots = append(rep.SkippedSnapshots, fmt.Sprintf("%s: %v", filepath.Base(sf.path), err))
			continue
		}
		if d.blobs != nil {
			for _, b := range snap.Blobs {
				if _, err := d.blobs.inner.Put(b.Owner, b.Data); err != nil {
					return nil, fmt.Errorf("snapshot: restoring blob: %w", err)
				}
			}
		} else if len(snap.Blobs) > 0 {
			return nil, ErrNoBlobStore
		}
		rep.SnapshotPath = sf.path
		rep.SnapshotHeight = snap.Manifest.Height
		rep.baseSeq = snap.Manifest.WALSeq
		break
	}

	if err := d.replayWAL(rep); err != nil {
		return nil, err
	}
	rep.TornBytes = d.log.Stats().TornBytes
	rep.Head = c.Height()
	d.mu.Lock()
	d.lastCheckpoint = rep.SnapshotHeight
	d.mu.Unlock()
	d.recovered.Store(true)
	return rep, nil
}

// replayWAL applies the retained log over the restored state.
func (d *DurableStore) replayWAL(rep *RecoveryReport) error {
	c := d.c
	return d.log.Replay(func(seq uint64, typ byte, payload []byte) error {
		switch typ {
		case recBlock:
			b, txs, logged, err := decodeBlockRecord(payload)
			if err != nil {
				return err
			}
			head := c.Height()
			switch {
			case b.Number <= head:
				// Covered by the snapshot — but it must be OUR history.
				have, ok := c.BlockByNumber(b.Number)
				if !ok || have.Hash() != b.Hash() {
					return fmt.Errorf("%w: block %d", ErrDivergedLog, b.Number)
				}
				return nil
			case b.Number > head+1:
				return fmt.Errorf("%w: log resumes at block %d, head is %d", ErrRecoveryGap, b.Number, head)
			}
			replayed, err := c.ImportBlock(b, txs)
			if err != nil {
				return fmt.Errorf("snapshot: replaying block %d: %w", b.Number, err)
			}
			if err := receiptsMatch(logged, replayed); err != nil {
				return fmt.Errorf("%w: block %d: %v", ErrReplayDrift, b.Number, err)
			}
			rep.BlocksReplayed++
			return nil
		case recBlob:
			if d.blobs == nil {
				return ErrNoBlobStore
			}
			dd := &dec{b: payload}
			owner := dd.str()
			data := dd.bytes()
			if dd.err != nil {
				return dd.err
			}
			if _, err := d.blobs.inner.Put(owner, data); err != nil {
				return err
			}
			rep.BlobsReplayed++
			return nil
		case recBlobRemove:
			if d.blobs == nil {
				return ErrNoBlobStore
			}
			dd := &dec{b: payload}
			owner := dd.str()
			var uri storage.URI
			copy(uri[:], dd.take(len(uri)))
			if dd.err != nil {
				return dd.err
			}
			// Best-effort: the blob may predate the retained log.
			d.blobs.inner.Remove(owner, uri) //nolint:errcheck // replayed remove of a pruned blob
			return nil
		case recFaucet:
			if seq < rep.baseSeq {
				return nil // covered by the restored snapshot's accounts
			}
			dd := &dec{b: payload}
			addr := dd.addr()
			amount := dd.u64()
			if dd.err != nil {
				return dd.err
			}
			c.Faucet(addr, amount)
			rep.FaucetsReplayed++
			return nil
		case recCheckpoint:
			return nil // informational
		default:
			return fmt.Errorf("%w: unknown record type %d at seq %d", wal.ErrCorrupt, typ, seq)
		}
	})
}

// receiptsMatch cross-checks a replayed block's receipts against the
// logged originals: gas, return data, log count, and error strings must
// all agree — replay is deterministic, so any drift means the log or the
// state is wrong.
func receiptsMatch(logged, replayed []*chain.Receipt) error {
	if len(logged) != len(replayed) {
		return fmt.Errorf("%d receipts, logged %d", len(replayed), len(logged))
	}
	for i := range logged {
		l, r := logged[i], replayed[i]
		if l.TxHash != r.TxHash || l.GasUsed != r.GasUsed || len(l.Logs) != len(r.Logs) ||
			string(l.Return) != string(r.Return) || errString(l.Err) != errString(r.Err) {
			return fmt.Errorf("receipt %d (tx %s) drifted", i, l.TxHash)
		}
	}
	return nil
}

func errString(err error) string {
	if err == nil {
		return ""
	}
	return err.Error()
}

// fail records a sticky engine failure and reports it loudly: durability
// is broken, and pretending otherwise would acknowledge writes that can
// be lost.
func (d *DurableStore) fail(err error) {
	d.mu.Lock()
	first := d.failed == nil
	if first {
		d.failed = err
	}
	d.mu.Unlock()
	if first {
		log.Printf("snapshot: DURABILITY FAILURE: %v", err)
	}
}

// Err returns the sticky failure, if any — daemons check it at shutdown.
func (d *DurableStore) Err() error {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.failed
}

// LastCheckpoint returns the height of the newest durable snapshot.
func (d *DurableStore) LastCheckpoint() uint64 {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.lastCheckpoint
}

// Stats returns a copy of the engine counters.
func (d *DurableStore) Stats() Stats {
	d.mu.Lock()
	s := d.stats
	d.mu.Unlock()
	s.WAL = d.log.Stats()
	return s
}

// Close waits for in-flight checkpoints and closes the WAL (final flush +
// fsync). It returns the sticky failure if durability was ever breached.
func (d *DurableStore) Close() error {
	d.checkpointWG.Wait()
	cerr := d.log.Close()
	if err := d.Err(); err != nil {
		return err
	}
	return cerr
}

// Crash abandons the engine as a SIGKILL would: in-flight checkpoints are
// not waited for, buffered WAL frames are dropped. Test hook.
func (d *DurableStore) Crash() {
	d.log.Crash()
}

// encodeBlockRecord frames one sealed block for the WAL.
func encodeBlockRecord(b *chain.Block, txs []chain.Transaction, receipts []*chain.Receipt) []byte {
	e := &enc{}
	encodeBlock(e, b)
	e.u32(uint32(len(txs)))
	for i := range txs {
		encodeTx(e, &txs[i])
		if i < len(receipts) && receipts[i] != nil {
			e.u8(1)
			encodeReceipt(e, receipts[i])
		} else {
			e.u8(0)
		}
	}
	return e.b
}

// decodeBlockRecord parses a WAL block record.
func decodeBlockRecord(payload []byte) (chain.Block, []chain.Transaction, []*chain.Receipt, error) {
	d := &dec{b: payload}
	b := decodeBlock(d)
	n := d.count(40 + 24 + 1)
	txs := make([]chain.Transaction, n)
	receipts := make([]*chain.Receipt, n)
	for i := 0; i < n && d.err == nil; i++ {
		txs[i] = decodeTx(d)
		if d.u8() == 1 {
			receipts[i] = decodeReceipt(d)
		}
	}
	if d.err != nil {
		return chain.Block{}, nil, nil, d.err
	}
	return b, txs, receipts, nil
}

// DurableBlobs is the write-ahead-logged blob store: every Put and Remove
// is in the WAL before the call returns (group-commit fsynced), so an
// acknowledged blob survives a crash. It implements storage.LocalStore,
// plugging into core.Marketplace and the p2p layer's Config.Store alike.
type DurableBlobs struct {
	d     *DurableStore
	inner *storage.Store
}

var _ storage.LocalStore = (*DurableBlobs)(nil)

// Put stores the blob locally, then logs it durably before acknowledging.
// (Local-first ordering matters: a checkpoint exporting between the two
// steps must see any blob whose WAL record it is about to prune.)
func (s *DurableBlobs) Put(owner string, data []byte) (storage.URI, error) {
	uri, err := s.inner.Put(owner, data)
	if err != nil {
		return storage.URI{}, err
	}
	e := &enc{}
	e.str(owner)
	e.bytes(data)
	if _, err := s.d.log.AppendSync(recBlob, e.b); err != nil {
		return storage.URI{}, fmt.Errorf("snapshot: logging blob put: %w", err)
	}
	s.d.mu.Lock()
	s.d.stats.BlobsLogged++
	s.d.mu.Unlock()
	return uri, nil
}

// Get retrieves content by URI, verifying its digest.
func (s *DurableBlobs) Get(uri storage.URI) ([]byte, error) { return s.inner.Get(uri) }

// Remove deletes content at the owner's request, logging the removal.
func (s *DurableBlobs) Remove(owner string, uri storage.URI) error {
	if err := s.inner.Remove(owner, uri); err != nil {
		return err
	}
	e := &enc{}
	e.str(owner)
	e.b = append(e.b, uri[:]...)
	if _, err := s.d.log.AppendSync(recBlobRemove, e.b); err != nil {
		return fmt.Errorf("snapshot: logging blob remove: %w", err)
	}
	return nil
}

// Owner returns the recorded owner of a blob.
func (s *DurableBlobs) Owner(uri storage.URI) (string, bool) { return s.inner.Owner(uri) }

// Has reports whether the store holds a blob.
func (s *DurableBlobs) Has(uri storage.URI) bool { return s.inner.Has(uri) }

// Len reports the number of stored blobs.
func (s *DurableBlobs) Len() int { return s.inner.Len() }

// Local exposes the wrapped store (tests, direct inspection).
func (s *DurableBlobs) Local() *storage.Store { return s.inner }
