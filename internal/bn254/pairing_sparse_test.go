package bn254

import (
	"errors"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
)

func randG1() G1Affine {
	s := fr.MustRandom()
	g := G1Generator()
	return G1ScalarMul(&g, &s)
}

func randG2() G2Affine {
	s := fr.MustRandom()
	g := G2Generator()
	return G2ScalarMul(&g, &s)
}

// TestSparsePairBitIdentical pins the core acceptance property: the sparse
// engine and the precomputed-line path produce results bit-identical to
// the retained naive Pair, on random points, infinity, and negated points.
func TestSparsePairBitIdentical(t *testing.T) {
	g1 := G1Generator()
	g2 := G2Generator()
	var negG1 G1Affine
	negG1.Neg(&g1)
	var negG2 G2Affine
	negG2.Neg(&g2)

	type pair struct {
		name string
		p    G1Affine
		q    G2Affine
	}
	cases := []pair{
		{"generators", g1, g2},
		{"neg-g1", negG1, g2},
		{"neg-g2", g1, negG2},
		{"both-neg", negG1, negG2},
		{"inf-g1", G1Affine{}, g2},
		{"inf-g2", g1, G2Affine{}},
		{"both-inf", G1Affine{}, G2Affine{}},
	}
	for i := 0; i < 8; i++ {
		p, q := randG1(), randG2()
		cases = append(cases, pair{"random", p, q})
		var np G1Affine
		np.Neg(&p)
		cases = append(cases, pair{"random-neg", np, q})
	}

	for _, c := range cases {
		want := PairNaive(&c.p, &c.q)
		got := Pair(&c.p, &c.q)
		if !got.Equal(&want) {
			t.Fatalf("%s: sparse Pair differs from naive", c.name)
		}
		pc := NewG2LinePrecomp(&c.q)
		fixed := PairFixed(&c.p, pc)
		if !fixed.Equal(&want) {
			t.Fatalf("%s: PairFixed differs from naive", c.name)
		}
	}
}

// TestSparseMillerLoopBitIdentical compares the raw Miller-loop outputs
// (before final exponentiation), the strictest form of the identity: the
// shared precomputed loop must accumulate exactly the same Fp12 values as
// the naive per-pair loops multiplied together.
func TestSparseMillerLoopBitIdentical(t *testing.T) {
	for trial := 0; trial < 5; trial++ {
		n := 1 + trial%3
		ps := make([]G1Affine, n)
		qs := make([]G2Affine, n)
		pcs := make([]*G2LinePrecomp, n)
		want := fp12One()
		for i := 0; i < n; i++ {
			ps[i] = randG1()
			qs[i] = randG2()
			pcs[i] = NewG2LinePrecomp(&qs[i])
			f := millerLoop(&ps[i], &qs[i])
			want.Mul(&want, &f)
		}
		got := millerLoopPrecomp(ps, pcs)
		if !got.Equal(&want) {
			t.Fatalf("trial %d: shared sparse Miller loop differs from naive product", trial)
		}
	}
}

// TestPairingCheckMatchesNaive exercises the boolean check against the
// naive version on both accepting and rejecting inputs, including pairs
// with infinity on either side.
func TestPairingCheckMatchesNaive(t *testing.T) {
	g1 := G1Generator()
	g2 := G2Generator()
	a := fr.MustRandom()
	b := fr.MustRandom()
	aP := G1ScalarMul(&g1, &a)
	bQ := G2ScalarMul(&g2, &b)
	var ab fr.Element
	ab.Mul(&a, &b)
	abP := G1ScalarMul(&g1, &ab)
	var negAbP G1Affine
	negAbP.Neg(&abP)

	// e([a]P, [b]Q) · e(-[ab]P, Q) == 1.
	accepting := [][2]interface{}{}
	_ = accepting
	ps := []G1Affine{aP, negAbP}
	qs := []G2Affine{bQ, g2}
	okFast, err := PairingCheck(ps, qs)
	if err != nil {
		t.Fatal(err)
	}
	okNaive, err := PairingCheckNaive(ps, qs)
	if err != nil {
		t.Fatal(err)
	}
	if !okFast || !okNaive {
		t.Fatalf("accepting check: fast=%v naive=%v, want both true", okFast, okNaive)
	}

	// Perturbed version must be rejected by both.
	ps[1] = abP
	okFast, _ = PairingCheck(ps, qs)
	okNaive, _ = PairingCheckNaive(ps, qs)
	if okFast || okNaive {
		t.Fatalf("rejecting check: fast=%v naive=%v, want both false", okFast, okNaive)
	}

	// Infinity pairs contribute the identity on both paths.
	ps = []G1Affine{aP, {}}
	qs = []G2Affine{{}, bQ}
	okFast, _ = PairingCheck(ps, qs)
	okNaive, _ = PairingCheckNaive(ps, qs)
	if !okFast || !okNaive {
		t.Fatalf("infinity check: fast=%v naive=%v, want both true", okFast, okNaive)
	}

	if _, err := PairingCheck(make([]G1Affine, 2), make([]G2Affine, 1)); !errors.Is(err, ErrPairingInput) {
		t.Fatal("length mismatch must return ErrPairingInput")
	}
	if _, err := PairingCheckPrecomp(make([]G1Affine, 1), []*G2LinePrecomp{nil}); !errors.Is(err, ErrPairingInput) {
		t.Fatal("nil precomp must return ErrPairingInput")
	}
}

// TestCyclotomicSquareMatchesSquare checks the Granger–Scott compressed
// squaring against the generic Fp12 squaring on elements of the
// cyclotomic subgroup (easy-part outputs of random Miller values).
func TestCyclotomicSquareMatchesSquare(t *testing.T) {
	for i := 0; i < 10; i++ {
		x := randFp12()
		if x.IsZero() {
			continue
		}
		c := easyPart(&x) // lands in the cyclotomic subgroup
		var want, got Fp12
		want.Square(&c)
		got.CyclotomicSquare(&c)
		if !got.Equal(&want) {
			t.Fatalf("iteration %d: cyclotomic square differs from generic square", i)
		}
	}
}

// TestExpCyclotomicMatchesExp checks the NAF/conjugate exponentiation
// against the generic Exp for the hard-part exponent.
func TestExpCyclotomicMatchesExp(t *testing.T) {
	for i := 0; i < 3; i++ {
		x := randFp12()
		if x.IsZero() {
			continue
		}
		c := easyPart(&x)
		var want, got Fp12
		want.Exp(&c, hardExponent())
		got.expCyclotomic(&c, hardExpNAF())
		if !got.Equal(&want) {
			t.Fatalf("iteration %d: cyclotomic exp differs from generic exp", i)
		}
	}
}

// TestHardPartMatchesExp pins the Devegili–Scott–Dahab chain against the
// generic exponentiation by (p⁴-p²+1)/r on cyclotomic elements — the two
// exponents agree modulo the subgroup order p⁴-p²+1.
func TestHardPartMatchesExp(t *testing.T) {
	for i := 0; i < 3; i++ {
		x := randFp12()
		if x.IsZero() {
			continue
		}
		c := easyPart(&x)
		var want Fp12
		want.Exp(&c, hardExponent())
		got := hardPart(&c)
		if !got.Equal(&want) {
			t.Fatalf("iteration %d: DSD hard part differs from generic exp", i)
		}
	}
}

// TestG2LinePrecompSchedule pins that every precomputation emits the same
// number of steps regardless of branch decisions, which is what lets the
// shared Miller loop consume multiple tables in lockstep.
func TestG2LinePrecompSchedule(t *testing.T) {
	q1, q2 := randG2(), randG2()
	a := NewG2LinePrecomp(&q1)
	b := NewG2LinePrecomp(&q2)
	if len(a.steps) == 0 || len(a.steps) != len(b.steps) {
		t.Fatalf("schedule lengths differ: %d vs %d", len(a.steps), len(b.steps))
	}
}

func BenchmarkPairingCheck(b *testing.B) {
	g1 := G1Generator()
	g2 := G2Generator()
	a := fr.MustRandom()
	s := fr.MustRandom()
	aP := G1ScalarMul(&g1, &a)
	sQ := G2ScalarMul(&g2, &s)
	ps := []G1Affine{aP, g1}
	qs := []G2Affine{g2, sQ}
	pcs := []*G2LinePrecomp{NewG2LinePrecomp(&g2), NewG2LinePrecomp(&sQ)}

	b.Run("naive", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PairingCheckNaive(ps, qs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("sparse", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PairingCheck(ps, qs); err != nil {
				b.Fatal(err)
			}
		}
	})
	b.Run("precomp", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := PairingCheckPrecomp(ps, pcs); err != nil {
				b.Fatal(err)
			}
		}
	})
}
