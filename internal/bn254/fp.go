// Package bn254 implements the BN254 (alt_bn128) pairing-friendly elliptic
// curve from scratch: the base-field tower Fp ⊂ Fp2 ⊂ Fp6 ⊂ Fp12, the groups
// G1 (over Fp) and G2 (over Fp2, via the sextic twist), Pippenger
// multi-scalar multiplication, and the optimal ate pairing
// e: G1 × G2 → GT ⊂ Fp12.
//
// The curve equation is y² = x³ + 3 over Fp with
// p = 21888242871839275222246405745257275088696311157297823662689037894645226208583,
// and the group order is the scalar field modulus r (see internal/fr).
// This is the curve used by the paper's Circom/Snarkjs stack ("BN-128").
package bn254

import (
	"fmt"
	"math/big"

	"github.com/zkdet/zkdet/internal/ff"
)

// FpModulusDecimal is the base field modulus in base 10.
const FpModulusDecimal = "21888242871839275222246405745257275088696311157297823662689037894645226208583"

// fpField is the shared immutable base field; effectively a constant.
var fpField = ff.MustNewField(FpModulusDecimal)

// Fp is an element of the BN254 base field in Montgomery form.
// The zero value is 0.
type Fp struct {
	v ff.Element
}

// FpModulus returns a copy of the base field modulus p.
func FpModulus() *big.Int { return fpField.Modulus() }

func fpZero() Fp { return Fp{} }
func fpOne() Fp  { return Fp{v: fpField.One()} }

// NewFp returns the base-field element representing v.
func NewFp(v uint64) Fp { return Fp{v: fpField.FromUint64(v)} }

// FpFromBig returns b mod p.
func FpFromBig(b *big.Int) Fp { return Fp{v: fpField.FromBig(b)} }

// MustFpFromDecimal parses a base-10 literal, panicking on malformed input.
func MustFpFromDecimal(s string) Fp {
	b, ok := new(big.Int).SetString(s, 10)
	if !ok {
		panic("bn254: invalid decimal literal " + s)
	}
	return FpFromBig(b)
}

// BigInt returns the canonical integer value of z.
func (z *Fp) BigInt() *big.Int { return fpField.ToBig(&z.v) }

// Bytes returns the canonical 32-byte big-endian encoding.
func (z *Fp) Bytes() [32]byte {
	var out [32]byte
	copy(out[:], fpField.Bytes(&z.v))
	return out
}

// FpFromBytesCanonical decodes a canonical 32-byte big-endian encoding.
func FpFromBytesCanonical(b []byte) (Fp, error) {
	v, err := fpField.FromBytesCanonical(b)
	if err != nil {
		return Fp{}, fmt.Errorf("bn254: %w", err)
	}
	return Fp{v: v}, nil
}

// String returns the canonical decimal representation.
func (z Fp) String() string { return fpField.ToBig(&z.v).String() }

// IsZero reports whether z == 0.
func (z *Fp) IsZero() bool { return fpField.IsZero(&z.v) }

// IsOne reports whether z == 1.
func (z *Fp) IsOne() bool { return fpField.IsOne(&z.v) }

// Equal reports whether z == x.
func (z *Fp) Equal(x *Fp) bool { return z.v == x.v }

// Set sets z = x and returns z.
func (z *Fp) Set(x *Fp) *Fp { z.v = x.v; return z }

// SetZero sets z = 0 and returns z.
func (z *Fp) SetZero() *Fp { z.v = ff.Element{}; return z }

// SetOne sets z = 1 and returns z.
func (z *Fp) SetOne() *Fp { z.v = fpField.One(); return z }

// Add sets z = x + y and returns z.
func (z *Fp) Add(x, y *Fp) *Fp { fpField.Add(&z.v, &x.v, &y.v); return z }

// Sub sets z = x - y and returns z.
func (z *Fp) Sub(x, y *Fp) *Fp { fpField.Sub(&z.v, &x.v, &y.v); return z }

// Mul sets z = x * y and returns z.
func (z *Fp) Mul(x, y *Fp) *Fp { fpField.Mul(&z.v, &x.v, &y.v); return z }

// Square sets z = x² and returns z.
func (z *Fp) Square(x *Fp) *Fp { fpField.Square(&z.v, &x.v); return z }

// Double sets z = 2x and returns z.
func (z *Fp) Double(x *Fp) *Fp { fpField.Double(&z.v, &x.v); return z }

// Neg sets z = -x and returns z.
func (z *Fp) Neg(x *Fp) *Fp { fpField.Neg(&z.v, &x.v); return z }

// Inverse sets z = x⁻¹ (or 0 when x == 0) and returns z.
func (z *Fp) Inverse(x *Fp) *Fp { fpField.Inverse(&z.v, &x.v); return z }

// Exp sets z = x^e for non-negative e and returns z.
func (z *Fp) Exp(x *Fp, e *big.Int) *Fp { fpField.Exp(&z.v, &x.v, e); return z }

// fpBatchInverse inverts all non-zero entries in place with one inversion.
func fpBatchInverse(xs []Fp) {
	raw := make([]ff.Element, len(xs))
	for i := range xs {
		raw[i] = xs[i].v
	}
	fpField.BatchInverse(raw)
	for i := range xs {
		xs[i].v = raw[i]
	}
}
