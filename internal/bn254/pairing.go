package bn254

import (
	"errors"
	"math/big"
	"sync"
)

// The optimal ate pairing for BN curves with parameter
// t = 4965661367192848881 iterates over 6t+2 and finishes with two
// Frobenius-twisted line evaluations, followed by the final exponentiation
// f^((p¹²-1)/r).
//
// Two implementations coexist:
//
//   - The naive reference (PairNaive/PairingCheckNaive) "untwists" G2
//     points into E(Fp12) and runs a textbook affine Miller loop there:
//     with w⁶ = ξ in the tower, ψ(x', y') = (w²·x', w³·y') maps the twist
//     E': y² = x³ + 3/ξ into E: y² = x³ + 3 over Fp12. Slow but auditable.
//   - The fast engine (Pair/PairingCheck/PairingCheckPrecomp, see
//     lines.go and cyclotomic.go) exploits line sparsity, precomputed G2
//     line tables, a shared Miller loop across pairs, and cyclotomic
//     arithmetic in the final exponentiation.
//
// Both produce bit-identical results (pinned by property tests); the
// naive path is retained as the correctness reference.

// ErrPairingInput reports invalid pairing inputs.
var ErrPairingInput = errors.New("bn254: mismatched pairing input lengths")

// loopCounter returns 6t+2 for the BN254 parameter t.
var loopCounter = sync.OnceValue(func() *big.Int {
	t := new(big.Int).SetUint64(4965661367192848881)
	s := new(big.Int).Mul(t, big.NewInt(6))
	return s.Add(s, big.NewInt(2))
})

// hardExponent returns (p⁴ - p² + 1)/r, the "hard part" exponent of the
// final exponentiation.
var hardExponent = sync.OnceValue(func() *big.Int {
	p := FpModulus()
	p2 := new(big.Int).Mul(p, p)
	p4 := new(big.Int).Mul(p2, p2)
	h := new(big.Int).Sub(p4, p2)
	h.Add(h, big.NewInt(1))
	h.Div(h, frModulusBig())
	return h
})

func frModulusBig() *big.Int {
	r, _ := new(big.Int).SetString("21888242871839275222246405745257275088548364400416034343698204186575808495617", 10)
	return r
}

// e12Point is an affine point on E(Fp12); infinity is flagged explicitly.
type e12Point struct {
	x, y Fp12
	inf  bool
}

func fp12FromFp(v *Fp) Fp12 {
	var z Fp12
	z.C0.B0.A0.Set(v)
	return z
}

// untwist maps a G2 point to E(Fp12) via ψ(x, y) = (w²x, w³y).
func untwist(q *G2Affine) e12Point {
	if q.IsInfinity() {
		return e12Point{inf: true}
	}
	// Embed Fp2 coordinates into Fp12 (coefficient of w⁰), then multiply by
	// w² and w³. In the basis {1,w,v,vw,v²,v²w}: w² = v, w³ = v·w.
	var x, y Fp12
	x.C0.B1.Set(&q.X) // x' · v  (== x'·w²)
	y.C1.B1.Set(&q.Y) // y' · vw (== y'·w³)
	return e12Point{x: x, y: y}
}

// frobPoint applies the p-power Frobenius coordinate-wise on E(Fp12).
func frobPoint(p *e12Point) e12Point {
	if p.inf {
		return e12Point{inf: true}
	}
	var out e12Point
	out.x.Frobenius(&p.x)
	out.y.Frobenius(&p.y)
	return out
}

func negPoint(p *e12Point) e12Point {
	if p.inf {
		return e12Point{inf: true}
	}
	out := *p
	out.y.Neg(&p.y)
	return out
}

// lineDouble doubles t in place and returns the line l_{T,T} evaluated at
// (xP, yP) ∈ Fp embedded in Fp12.
func lineDouble(t *e12Point, xP, yP *Fp12) Fp12 {
	if t.inf {
		return fp12One()
	}
	if t.y.IsZero() {
		// Vertical tangent: l(P) = xP - x1, T goes to infinity.
		var l Fp12
		l.Sub(xP, &t.x)
		t.inf = true
		return l
	}
	// λ = 3x² / 2y
	var num, den, lambda Fp12
	num.Square(&t.x)
	threeFp := NewFp(3)
	three := fp12FromFp(&threeFp)
	num.Mul(&num, &three)
	den.Add(&t.y, &t.y)
	den.Inverse(&den)
	lambda.Mul(&num, &den)

	// l(P) = yP - y1 - λ(xP - x1)
	var l, tmp Fp12
	tmp.Sub(xP, &t.x)
	tmp.Mul(&lambda, &tmp)
	l.Sub(yP, &t.y)
	l.Sub(&l, &tmp)

	// x3 = λ² - 2x1 ; y3 = λ(x1 - x3) - y1
	var x3, y3 Fp12
	x3.Square(&lambda)
	x3.Sub(&x3, &t.x)
	x3.Sub(&x3, &t.x)
	y3.Sub(&t.x, &x3)
	y3.Mul(&lambda, &y3)
	y3.Sub(&y3, &t.y)
	t.x = x3
	t.y = y3
	return l
}

// lineAdd sets t = t + q and returns the line l_{T,Q} evaluated at the
// embedded point (xP, yP).
func lineAdd(t *e12Point, q *e12Point, xP, yP *Fp12) Fp12 {
	if q.inf {
		return fp12One()
	}
	if t.inf {
		*t = *q
		return fp12One()
	}
	if t.x.Equal(&q.x) {
		if t.y.Equal(&q.y) {
			return lineDouble(t, xP, yP)
		}
		// Vertical line: l(P) = xP - x1, T + Q = infinity.
		var l Fp12
		l.Sub(xP, &t.x)
		t.inf = true
		return l
	}
	// λ = (y2 - y1)/(x2 - x1)
	var num, den, lambda Fp12
	num.Sub(&q.y, &t.y)
	den.Sub(&q.x, &t.x)
	den.Inverse(&den)
	lambda.Mul(&num, &den)

	var l, tmp Fp12
	tmp.Sub(xP, &t.x)
	tmp.Mul(&lambda, &tmp)
	l.Sub(yP, &t.y)
	l.Sub(&l, &tmp)

	var x3, y3 Fp12
	x3.Square(&lambda)
	x3.Sub(&x3, &t.x)
	x3.Sub(&x3, &q.x)
	y3.Sub(&t.x, &x3)
	y3.Mul(&lambda, &y3)
	y3.Sub(&y3, &t.y)
	t.x = x3
	t.y = y3
	return l
}

// millerLoop computes the optimal ate Miller function f_{6t+2,Q}(P) times
// the two Frobenius line corrections.
func millerLoop(p *G1Affine, q *G2Affine) Fp12 {
	if p.IsInfinity() || q.IsInfinity() {
		return fp12One()
	}
	xP := fp12FromFp(&p.X)
	yP := fp12FromFp(&p.Y)

	qe := untwist(q)
	t := qe
	f := fp12One()

	s := loopCounter()
	for i := s.BitLen() - 2; i >= 0; i-- {
		f.Square(&f)
		l := lineDouble(&t, &xP, &yP)
		f.Mul(&f, &l)
		if s.Bit(i) == 1 {
			l := lineAdd(&t, &qe, &xP, &yP)
			f.Mul(&f, &l)
		}
	}

	// Frobenius correction lines: Q1 = π(Q), Q2 = -π²(Q).
	q1 := frobPoint(&qe)
	q2 := frobPoint(&q1)
	q2 = negPoint(&q2)

	l1 := lineAdd(&t, &q1, &xP, &yP)
	f.Mul(&f, &l1)
	l2 := lineAdd(&t, &q2, &xP, &yP)
	f.Mul(&f, &l2)
	return f
}

// easyPart raises f to (p⁶-1)(p²+1), landing in the cyclotomic subgroup.
func easyPart(f *Fp12) Fp12 {
	var r, inv Fp12
	r.Conjugate(f) // f^(p⁶)
	inv.Inverse(f)
	r.Mul(&r, &inv) // f^(p⁶-1)
	var r2 Fp12
	r2.FrobeniusSquare(&r)
	r.Mul(&r2, &r) // ^(p²+1)
	return r
}

// finalExponentiation raises f to (p¹²-1)/r, mapping Miller-loop outputs
// into the order-r subgroup GT. The hard part runs in the cyclotomic
// subgroup via the Devegili–Scott–Dahab chain: three exponentiations by
// the 63-bit BN parameter with Granger–Scott squarings (see cyclotomic.go).
func finalExponentiation(f *Fp12) Fp12 {
	if f.IsZero() {
		return Fp12{}
	}
	r := easyPart(f)
	return hardPart(&r)
}

// finalExponentiationNaive is the reference final exponentiation: the hard
// part is a plain square-and-multiply by (p⁴-p²+1)/r. Slower than the
// cyclotomic path but unconditionally correct for any nonzero input.
func finalExponentiationNaive(f *Fp12) Fp12 {
	if f.IsZero() {
		return Fp12{}
	}
	r := easyPart(f)
	var out Fp12
	out.Exp(&r, hardExponent())
	return out
}

// Pair computes the optimal ate pairing e(p, q) using the sparse engine:
// the G2 line coefficients are derived once in Fp2 and folded into the
// accumulator with sparse multiplies. Either input at infinity yields the
// identity of GT. Bit-identical to PairNaive.
func Pair(p *G1Affine, q *G2Affine) Fp12 {
	pc := NewG2LinePrecomp(q)
	return PairFixed(p, pc)
}

// PairFixed computes e(p, Q) against a precomputed G2 line table,
// skipping all G2 arithmetic.
func PairFixed(p *G1Affine, pc *G2LinePrecomp) Fp12 {
	f := millerLoopPrecomp([]G1Affine{*p}, []*G2LinePrecomp{pc})
	return finalExponentiation(&f)
}

// PairNaive computes e(p, q) with the textbook Fp12 Miller loop. Retained
// as the correctness reference for the fast engine.
func PairNaive(p *G1Affine, q *G2Affine) Fp12 {
	f := millerLoop(p, q)
	return finalExponentiationNaive(&f)
}

// PairingCheck reports whether ∏ e(ps[i], qs[i]) == 1. All pairs run in
// one shared Miller loop (the accumulator is squared once per bit for the
// whole product) followed by a single final exponentiation, which is how
// verifiers should evaluate products of pairings.
func PairingCheck(ps []G1Affine, qs []G2Affine) (bool, error) {
	if len(ps) != len(qs) {
		return false, ErrPairingInput
	}
	pcs := make([]*G2LinePrecomp, len(qs))
	for i := range qs {
		pcs[i] = NewG2LinePrecomp(&qs[i])
	}
	return PairingCheckPrecomp(ps, pcs)
}

// PairingCheckPrecomp is PairingCheck against precomputed G2 line tables:
// the per-call cost is one shared sparse Miller loop and one final
// exponentiation, with no G2 arithmetic at all. This is the hot path for
// verifiers, whose G2 inputs are fixed SRS elements.
func PairingCheckPrecomp(ps []G1Affine, pcs []*G2LinePrecomp) (bool, error) {
	if len(ps) != len(pcs) {
		return false, ErrPairingInput
	}
	for _, pc := range pcs {
		if pc == nil {
			return false, ErrPairingInput
		}
	}
	f := millerLoopPrecomp(ps, pcs)
	res := finalExponentiation(&f)
	return res.IsOne(), nil
}

// PairingCheckNaive is the reference product-of-pairings check.
func PairingCheckNaive(ps []G1Affine, qs []G2Affine) (bool, error) {
	if len(ps) != len(qs) {
		return false, ErrPairingInput
	}
	acc := fp12One()
	for i := range ps {
		f := millerLoop(&ps[i], &qs[i])
		acc.Mul(&acc, &f)
	}
	res := finalExponentiationNaive(&acc)
	return res.IsOne(), nil
}
