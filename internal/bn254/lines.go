package bn254

// Sparse Miller-loop machinery. The naive pairing in pairing.go untwists G2
// points into E(Fp12) and works with full Fp12 arithmetic everywhere. This
// file exploits the structure that untwisting creates: with
// ψ(x', y') = (x'·w², y'·w³), every intermediate point T in the Miller loop
// keeps its x-coordinate at w² and its y-coordinate at w³, the slope λ sits
// at w¹, and the evaluated line
//
//	l(P) = yP - y_T - λ(xP - x_T)
//	     = yP + (-λ'·xP)·w + (λ'·x'_T - y'_T)·w³
//
// has nonzero coefficients only at w⁰ (an Fp value), w¹ and w³ (Fp2 values).
// Vertical lines l(P) = xP - x_T occupy only w⁰ and w². The w-coefficients
// λ' and μ' = λ'·x'_T - y'_T live entirely in Fp2, so the whole loop needs
// no Fp12 inversions, and the accumulator update becomes a dedicated sparse
// multiplication (mulBy013 / mulBy02) instead of a full 54-mul Fp12 multiply.
// This is the same idea as gnark-crypto's MulBy034 kernel; the positions
// differ because of this tower's untwist layout.
//
// Because every step computes the exact same field values as the naive
// affine loop (the group law and line values are order-independent modular
// arithmetic, and all representations are canonical), the sparse and
// precomputed paths are bit-identical to the naive ones — a property pinned
// by tests in pairing_test.go.

// stepKind discriminates the three shapes a Miller-loop line can take.
type stepKind uint8

const (
	// stepOne is the identity line (point at infinity was involved).
	stepOne stepKind = iota
	// stepLine is a tangent or chord: l = yP + (-λ'xP)·w + μ'·w³.
	stepLine
	// stepVertical is a vertical line: l = xP + (-x'_T)·w².
	stepVertical
)

// lineStep is one P-independent precomputed Miller-loop line.
// For stepLine, lambda is the Fp2 slope λ' and mu is λ'·x_T - y_T.
// For stepVertical, mu is -x_T (lambda is unused).
type lineStep struct {
	kind   stepKind
	lambda Fp2
	mu     Fp2
}

// G2LinePrecomp caches every doubling/addition line coefficient of the
// optimal ate Miller loop for one fixed G2 point, including the two
// Frobenius correction lines. Verifiers pair against fixed G2 elements
// (the SRS points [1]G2 and [τ]G2), so after one precomputation every
// subsequent pairing skips all G2 arithmetic: each step costs one sparse
// Fp12 multiply plus two Fp scalings.
type G2LinePrecomp struct {
	inf   bool
	steps []lineStep
}

// rawStep records a schedule step before the slopes are materialised:
// the Jacobian snapshot of T ahead of the step, and for chords the
// affine point being added.
type rawStep struct {
	kind    stepKind
	tangent bool // stepLine only: tangent (λ=3x²/2y) vs chord
	t       G2Jac
	q       G2Affine // chord only
}

// fp2BatchInverse inverts all non-zero entries in place with a single
// Fp2 inversion (Montgomery's trick). Zero entries are left as zero.
func fp2BatchInverse(xs []Fp2) {
	n := len(xs)
	if n == 0 {
		return
	}
	prefix := make([]Fp2, n)
	acc := fp2One()
	for i := range xs {
		prefix[i] = acc
		if !xs[i].IsZero() {
			acc.Mul(&acc, &xs[i])
		}
	}
	var accInv Fp2
	accInv.Inverse(&acc)
	for i := n - 1; i >= 0; i-- {
		if xs[i].IsZero() {
			continue
		}
		var inv Fp2
		inv.Mul(&accInv, &prefix[i])
		accInv.Mul(&accInv, &xs[i])
		xs[i] = inv
	}
}

// frobTwist applies the p-power Frobenius to a point through the untwist:
// the untwisted x sits at w² and y at w³, so on twist coordinates
// x → conj(x)·c², y → conj(y)·c³ with c = ξ^((p-1)/6).
func frobTwist(q *G2Affine) G2Affine {
	if q.IsInfinity() {
		return G2Affine{}
	}
	cs := frobOnce()
	var out G2Affine
	out.X.Conjugate(&q.X)
	out.X.Mul(&out.X, &cs[2])
	out.Y.Conjugate(&q.Y)
	out.Y.Mul(&out.Y, &cs[3])
	return out
}

// jacXEqual reports whether the affine x-coordinate of t equals q.X,
// via cross-multiplication (x_aff = X/Z², so x_aff == q.X ⇔ X == q.X·Z²).
func jacXEqual(t *G2Jac, q *G2Affine) bool {
	var z2, rhs Fp2
	z2.Square(&t.Z)
	rhs.Mul(&q.X, &z2)
	return t.X.Equal(&rhs)
}

// jacYEqual reports whether the affine y-coordinate of t equals q.Y.
func jacYEqual(t *G2Jac, q *G2Affine) bool {
	var z3, rhs Fp2
	z3.Square(&t.Z)
	z3.Mul(&z3, &t.Z)
	rhs.Mul(&q.Y, &z3)
	return t.Y.Equal(&rhs)
}

// doubleRaw records the line through T,T and sets t = 2t, mirroring the
// branch structure of the naive lineDouble exactly.
func doubleRaw(t *G2Jac) rawStep {
	if t.IsInfinity() {
		return rawStep{kind: stepOne}
	}
	if t.Y.IsZero() {
		// Vertical tangent; T goes to infinity.
		st := rawStep{kind: stepVertical, t: *t}
		t.SetInfinity()
		return st
	}
	st := rawStep{kind: stepLine, tangent: true, t: *t}
	t.Double(t)
	return st
}

// addRaw records the line through T,Q and sets t = t + q, mirroring the
// branch structure of the naive lineAdd exactly.
func addRaw(t *G2Jac, q *G2Affine) rawStep {
	if q.IsInfinity() {
		return rawStep{kind: stepOne}
	}
	if t.IsInfinity() {
		t.FromAffine(q)
		return rawStep{kind: stepOne}
	}
	if jacXEqual(t, q) {
		if jacYEqual(t, q) {
			return doubleRaw(t)
		}
		// T and Q are negatives: vertical line, T + Q = infinity.
		st := rawStep{kind: stepVertical, t: *t}
		t.SetInfinity()
		return st
	}
	st := rawStep{kind: stepLine, t: *t, q: *q}
	var jq G2Jac
	jq.FromAffine(q)
	t.AddAssign(&jq)
	return st
}

// NewG2LinePrecomp walks the optimal ate Miller loop for q once and caches
// every line's Fp2 coefficients. The walk runs in Jacobian coordinates and
// the slopes are recovered with two batch inversions, so building a table
// costs only a couple of field inversions total.
func NewG2LinePrecomp(q *G2Affine) *G2LinePrecomp {
	if q.IsInfinity() {
		return &G2LinePrecomp{inf: true}
	}

	// Phase A: walk the fixed schedule, recording branch decisions and
	// Jacobian snapshots of T before each step.
	var t G2Jac
	t.FromAffine(q)
	s := loopCounter()
	raws := make([]rawStep, 0, s.BitLen()+16)
	for i := s.BitLen() - 2; i >= 0; i-- {
		raws = append(raws, doubleRaw(&t))
		if s.Bit(i) == 1 {
			raws = append(raws, addRaw(&t, q))
		}
	}
	q1 := frobTwist(q)
	q2 := frobTwist(&q1)
	q2.Neg(&q2)
	raws = append(raws, addRaw(&t, &q1))
	raws = append(raws, addRaw(&t, &q2))

	// Phase B1: batch-normalise every snapshot to affine coordinates.
	zs := make([]Fp2, len(raws))
	for i := range raws {
		if raws[i].kind != stepOne {
			zs[i] = raws[i].t.Z
		}
	}
	fp2BatchInverse(zs)
	type affineT struct{ x, y Fp2 }
	affs := make([]affineT, len(raws))
	for i := range raws {
		if raws[i].kind == stepOne {
			continue
		}
		var z2, z3 Fp2
		z2.Square(&zs[i])
		z3.Mul(&z2, &zs[i])
		affs[i].x.Mul(&raws[i].t.X, &z2)
		affs[i].y.Mul(&raws[i].t.Y, &z3)
	}

	// Phase B2: batch-invert the slope denominators (2y for tangents,
	// x_Q - x_T for chords), then materialise λ' and μ'.
	dens := make([]Fp2, len(raws))
	for i := range raws {
		if raws[i].kind != stepLine {
			continue
		}
		if raws[i].tangent {
			dens[i].Double(&affs[i].y)
		} else {
			dens[i].Sub(&raws[i].q.X, &affs[i].x)
		}
	}
	fp2BatchInverse(dens)

	steps := make([]lineStep, len(raws))
	three := NewFp(3)
	for i := range raws {
		switch raws[i].kind {
		case stepOne:
			steps[i] = lineStep{kind: stepOne}
		case stepVertical:
			steps[i].kind = stepVertical
			steps[i].mu.Neg(&affs[i].x)
		case stepLine:
			steps[i].kind = stepLine
			var num Fp2
			if raws[i].tangent {
				num.Square(&affs[i].x)
				num.MulByFp(&num, &three)
			} else {
				num.Sub(&raws[i].q.Y, &affs[i].y)
			}
			steps[i].lambda.Mul(&num, &dens[i])
			steps[i].mu.Mul(&steps[i].lambda, &affs[i].x)
			steps[i].mu.Sub(&steps[i].mu, &affs[i].y)
		}
	}
	return &G2LinePrecomp{steps: steps}
}

// g1Eval holds the per-pairing G1 values a line evaluation needs.
type g1Eval struct {
	xP, yP, negXP Fp
}

func newG1Eval(p *G1Affine) g1Eval {
	var e g1Eval
	e.xP.Set(&p.X)
	e.yP.Set(&p.Y)
	e.negXP.Neg(&p.X)
	return e
}

// mulByLine folds one evaluated line into the Miller accumulator.
func mulByLine(f *Fp12, st *lineStep, e *g1Eval) {
	switch st.kind {
	case stepOne:
		// line == 1
	case stepLine:
		var c1 Fp2
		c1.MulByFp(&st.lambda, &e.negXP)
		f.mulBy013(&e.yP, &c1, &st.mu)
	case stepVertical:
		f.mulBy02(&e.xP, &st.mu)
	}
}

// fp6MulBy01 sets z = x · (d0 + d1·v), a sparse Fp6 multiplication
// (5 Fp2 multiplies instead of 6, Karatsuba on the low limbs).
func (z *Fp6) fp6MulBy01(x *Fp6, d0, d1 *Fp2) *Fp6 {
	var v00, v11, t, r0, r1, r2 Fp2
	v00.Mul(&x.B0, d0)
	v11.Mul(&x.B1, d1)
	// r0 = b0d0 + ξ·b2d1
	r0.Mul(&x.B2, d1)
	r0.MulByNonResidue(&r0)
	r0.Add(&r0, &v00)
	// r1 = (b0+b1)(d0+d1) - v00 - v11
	r1.Add(&x.B0, &x.B1)
	t.Add(d0, d1)
	r1.Mul(&r1, &t)
	r1.Sub(&r1, &v00)
	r1.Sub(&r1, &v11)
	// r2 = b1d1 + b2d0
	r2.Mul(&x.B2, d0)
	r2.Add(&r2, &v11)
	z.B0 = r0
	z.B1 = r1
	z.B2 = r2
	return z
}

// mulBy013 sets z = z · (c0 + c1·w + c3·w³) for c0 ∈ Fp and c1, c3 ∈ Fp2 —
// the shape of a tangent/chord line under this tower's untwist. In the
// Fp6[w] view the multiplier is L0 + L1·w with L0 = (c0, 0, 0) and
// L1 = (c1, c3, 0), so:
//
//	z.C0 = Z0·c0 + v·(Z1·L1)
//	z.C1 = Z0·L1 + Z1·c0
//
// costing ~42 Fp multiplies versus 54 for a generic Fp12 multiply.
func (z *Fp12) mulBy013(c0 *Fp, c1, c3 *Fp2) *Fp12 {
	var t0, t1, t2, t3 Fp6
	t0.B0.MulByFp(&z.C0.B0, c0)
	t0.B1.MulByFp(&z.C0.B1, c0)
	t0.B2.MulByFp(&z.C0.B2, c0)
	t1.fp6MulBy01(&z.C1, c1, c3)
	t1.MulByV(&t1)
	t2.fp6MulBy01(&z.C0, c1, c3)
	t3.B0.MulByFp(&z.C1.B0, c0)
	t3.B1.MulByFp(&z.C1.B1, c0)
	t3.B2.MulByFp(&z.C1.B2, c0)
	z.C0.Add(&t0, &t1)
	z.C1.Add(&t2, &t3)
	return z
}

// mulBy02 sets z = z · (c0 + c2·w²) for c0 ∈ Fp and c2 ∈ Fp2 — the shape
// of a vertical line. The multiplier lives entirely in the even part:
// L0 = (c0, c2, 0), L1 = 0, so both halves of z are scaled by L0.
func (z *Fp12) mulBy02(c0 *Fp, c2 *Fp2) *Fp12 {
	d0 := Fp2{A0: *c0}
	z.C0.fp6MulBy01(&z.C0, &d0, c2)
	z.C1.fp6MulBy01(&z.C1, &d0, c2)
	return z
}

// millerLoopPrecomp evaluates the shared Miller loop over any number of
// (G1, precomputed-line) pairs, squaring the accumulator once per bit for
// all pairs together. Pairs involving infinity contribute the identity and
// are skipped. The result equals the product of the individual naive
// Miller-loop values bit-for-bit.
func millerLoopPrecomp(ps []G1Affine, pcs []*G2LinePrecomp) Fp12 {
	evals := make([]g1Eval, 0, len(ps))
	tables := make([]*G2LinePrecomp, 0, len(pcs))
	for i := range ps {
		if ps[i].IsInfinity() || pcs[i].inf {
			continue
		}
		evals = append(evals, newG1Eval(&ps[i]))
		tables = append(tables, pcs[i])
	}
	f := fp12One()
	if len(tables) == 0 {
		return f
	}
	s := loopCounter()
	idx := 0
	for i := s.BitLen() - 2; i >= 0; i-- {
		f.Square(&f)
		for j := range tables {
			mulByLine(&f, &tables[j].steps[idx], &evals[j])
		}
		idx++
		if s.Bit(i) == 1 {
			for j := range tables {
				mulByLine(&f, &tables[j].steps[idx], &evals[j])
			}
			idx++
		}
	}
	// Frobenius correction lines.
	for k := 0; k < 2; k++ {
		for j := range tables {
			mulByLine(&f, &tables[j].steps[idx], &evals[j])
		}
		idx++
	}
	return f
}
