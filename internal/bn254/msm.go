package bn254

import (
	"fmt"
	"runtime"
	"sync"

	"github.com/zkdet/zkdet/internal/fr"
)

// G1MSM computes the multi-scalar multiplication ∑ scalars[i]·points[i]
// with Pippenger's bucket algorithm, parallelised across windows. It is the
// workhorse behind every KZG commitment in the repo.
func G1MSM(points []G1Affine, scalars []fr.Element) (G1Affine, error) {
	if len(points) != len(scalars) {
		return G1Affine{}, fmt.Errorf("bn254: msm length mismatch: %d points, %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return G1Affine{}, nil
	}
	if len(points) < 32 {
		// Naive is faster for tiny inputs.
		var acc G1Jac
		acc.SetInfinity()
		for i := range points {
			var t G1Jac
			t.ScalarMul(&points[i], &scalars[i])
			acc.AddAssign(&t)
		}
		var out G1Affine
		out.FromJacobian(&acc)
		return out, nil
	}

	c := windowSize(len(points))
	const scalarBits = 254
	numWindows := (scalarBits + c - 1) / c

	// Canonical big-endian bytes, once per scalar.
	digits := make([][]int, numWindows)
	for w := range digits {
		digits[w] = make([]int, len(scalars))
	}
	for i := range scalars {
		b := scalars[i].Bytes()
		for w := 0; w < numWindows; w++ {
			digits[w][i] = windowDigit(b[:], w*c, c)
		}
	}

	// Each window's bucket accumulation is independent; run them in
	// parallel, then combine with doublings.
	windowSums := make([]G1Jac, numWindows)
	var wg sync.WaitGroup
	sem := make(chan struct{}, runtime.GOMAXPROCS(0))
	for w := 0; w < numWindows; w++ {
		wg.Add(1)
		sem <- struct{}{}
		go func(w int) {
			defer wg.Done()
			defer func() { <-sem }()
			windowSums[w] = bucketAccumulate(points, digits[w], c)
		}(w)
	}
	wg.Wait()

	var acc G1Jac
	acc.SetInfinity()
	for w := numWindows - 1; w >= 0; w-- {
		if w != numWindows-1 {
			for k := 0; k < c; k++ {
				acc.Double(&acc)
			}
		}
		acc.AddAssign(&windowSums[w])
	}
	var out G1Affine
	out.FromJacobian(&acc)
	return out, nil
}

// bucketAccumulate computes ∑ digit_i · P_i for one window.
func bucketAccumulate(points []G1Affine, digit []int, c int) G1Jac {
	buckets := make([]G1Jac, (1<<c)-1)
	for i := range points {
		d := digit[i]
		if d == 0 {
			continue
		}
		buckets[d-1].AddMixed(&points[i])
	}
	var running, sum G1Jac
	running.SetInfinity()
	sum.SetInfinity()
	for b := len(buckets) - 1; b >= 0; b-- {
		running.AddAssign(&buckets[b])
		sum.AddAssign(&running)
	}
	return sum
}

// windowDigit extracts c bits starting at bit offset (counting from the
// least-significant bit) of a 32-byte big-endian scalar.
func windowDigit(be []byte, offset, c int) int {
	d := 0
	for k := 0; k < c; k++ {
		bit := offset + k
		if bit >= 256 {
			break
		}
		byteIdx := 31 - bit/8
		if be[byteIdx]>>(bit%8)&1 == 1 {
			d |= 1 << k
		}
	}
	return d
}

// windowSize picks the Pippenger window for n points.
func windowSize(n int) int {
	switch {
	case n < 64:
		return 3
	case n < 256:
		return 5
	case n < 1024:
		return 7
	case n < 1<<14:
		return 9
	case n < 1<<18:
		return 12
	default:
		return 14
	}
}
