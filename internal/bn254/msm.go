package bn254

import (
	"fmt"
	"math/bits"

	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/parallel"
)

// msmMinChunk is the smallest per-task point range worth a goroutine: a
// bucket accumulation over fewer points is dominated by the bucket
// reduction itself.
const msmMinChunk = 256

// G1MSM computes the multi-scalar multiplication ∑ scalars[i]·points[i]
// with Pippenger's bucket algorithm using signed windowed digits (halving
// the bucket count per window) and a two-dimensional parallel split: the
// point vector is chunked so the task count is numWindows × numChunks,
// which saturates any core count instead of capping at the ~20–30 windows
// of a 254-bit scalar. It is the workhorse behind every KZG commitment in
// the repo.
func G1MSM(points []G1Affine, scalars []fr.Element) (G1Affine, error) {
	if len(points) != len(scalars) {
		return G1Affine{}, fmt.Errorf("bn254: msm length mismatch: %d points, %d scalars", len(points), len(scalars))
	}
	if len(points) == 0 {
		return G1Affine{}, nil
	}
	if len(points) < 3 {
		// One shared bucket walk only starts winning once a few points
		// amortise the per-window reductions; below that, plain
		// double-and-add is cheaper.
		var acc G1Jac
		acc.SetInfinity()
		for i := range points {
			var t G1Jac
			t.ScalarMul(&points[i], &scalars[i])
			acc.AddAssign(&t)
		}
		var out G1Affine
		out.FromJacobian(&acc)
		return out, nil
	}
	return msmWithWindow(points, scalars, windowSize(len(points))), nil
}

// msmWithWindow is the Pippenger core with an explicit window width; tests
// call it directly to exercise every windowSize breakpoint on small inputs.
func msmWithWindow(points []G1Affine, scalars []fr.Element, c int) G1Affine {
	// Convert once out of Montgomery form and bound the window count by the
	// largest scalar: windows above the top set bit recode to all-zero
	// digits, so materialising them would only add empty bucket reductions
	// and c doublings each. Commitments to low-degree or small-coefficient
	// polynomials hit this path hard.
	bes := make([][32]byte, len(scalars))
	parallel.Execute(len(scalars), func(start, end int) {
		for i := start; i < end; i++ {
			bes[i] = scalars[i].Bytes()
		}
	})
	maxBits := 0
	for i := range bes {
		for j := 0; j < 32; j++ {
			if bes[i][j] != 0 {
				if n := 8*(31-j) + bits.Len8(bes[i][j]); n > maxBits {
					maxBits = n
				}
				break
			}
		}
	}
	// One extra window absorbs the final carry of the signed-digit
	// recoding (its digit is 0 or 1).
	numWindows := (maxBits+c-1)/c + 1

	// Signed windowed recoding: digits in [-2^(c-1), 2^(c-1)-1] with carry
	// propagation, so each window needs only 2^(c-1) buckets (negative
	// digits subtract the point, an affine negation that is a single field
	// negation).
	digits := make([][]int32, numWindows)
	for w := range digits {
		digits[w] = make([]int32, len(scalars))
	}
	parallel.Execute(len(scalars), func(start, end int) {
		for i := start; i < end; i++ {
			carry := 0
			for w := 0; w < numWindows; w++ {
				d := windowDigit(bes[i][:], w*c, c) + carry
				carry = 0
				if d >= 1<<(c-1) {
					d -= 1 << c
					carry = 1
				}
				digits[w][i] = int32(d)
			}
		}
	})

	// Two-dimensional task grid: windows × point chunks. Chunking only
	// helps when the per-chunk ranges stay large enough to amortise the
	// extra bucket reductions.
	numChunks := (parallel.Workers() + numWindows - 1) / numWindows
	if maxChunks := (len(points) + msmMinChunk - 1) / msmMinChunk; numChunks > maxChunks {
		numChunks = maxChunks
	}
	if numChunks < 1 {
		numChunks = 1
	}
	chunkLen := (len(points) + numChunks - 1) / numChunks

	partial := make([]G1Jac, numWindows*numChunks)
	parallel.Execute(numWindows*numChunks, func(start, end int) {
		for task := start; task < end; task++ {
			w := task / numChunks
			lo := (task % numChunks) * chunkLen
			hi := lo + chunkLen
			if hi > len(points) {
				hi = len(points)
			}
			partial[task] = bucketAccumulate(points[lo:hi], digits[w][lo:hi], c)
		}
	})

	// Reduce chunk sums per window, then combine windows with doublings.
	var acc G1Jac
	acc.SetInfinity()
	for w := numWindows - 1; w >= 0; w-- {
		if w != numWindows-1 {
			for k := 0; k < c; k++ {
				acc.Double(&acc)
			}
		}
		for chunk := 0; chunk < numChunks; chunk++ {
			acc.AddAssign(&partial[w*numChunks+chunk])
		}
	}
	var out G1Affine
	out.FromJacobian(&acc)
	return out
}

// bucketAccumulate computes ∑ digit_i · P_i for one window over one point
// chunk. Buckets hold |digit| ∈ [1, 2^(c-1)]; negative digits contribute
// the negated point.
func bucketAccumulate(points []G1Affine, digit []int32, c int) G1Jac {
	buckets := make([]G1Jac, 1<<(c-1))
	for i := range points {
		d := digit[i]
		if d == 0 {
			continue
		}
		if d > 0 {
			buckets[d-1].AddMixed(&points[i])
		} else {
			var neg G1Affine
			neg.Neg(&points[i])
			buckets[-d-1].AddMixed(&neg)
		}
	}
	var running, sum G1Jac
	running.SetInfinity()
	sum.SetInfinity()
	for b := len(buckets) - 1; b >= 0; b-- {
		running.AddAssign(&buckets[b])
		sum.AddAssign(&running)
	}
	return sum
}

// windowDigit extracts c bits starting at bit offset (counting from the
// least-significant bit) of a 32-byte big-endian scalar. Offsets at or
// beyond 256 yield zero.
func windowDigit(be []byte, offset, c int) int {
	d := 0
	for k := 0; k < c; k++ {
		bit := offset + k
		if bit >= 256 {
			break
		}
		byteIdx := 31 - bit/8
		if be[byteIdx]>>(bit%8)&1 == 1 {
			d |= 1 << k
		}
	}
	return d
}

// windowSize picks the Pippenger window for n points.
func windowSize(n int) int {
	switch {
	case n < 12:
		return 3
	case n < 64:
		return 4
	case n < 256:
		return 5
	case n < 1024:
		return 7
	case n < 1<<14:
		return 9
	case n < 1<<18:
		return 12
	default:
		return 14
	}
}
