package bn254

import (
	"math/big"
	"sync"
)

// Fp12 is the quadratic extension Fp6[w]/(w² - v). An element is C0 + C1·w.
// The zero value is 0. GT, the pairing target group, is the subgroup of
// r-th roots of unity inside Fp12*.
type Fp12 struct {
	C0, C1 Fp6
}

func fp12One() Fp12 { return Fp12{C0: fp6One()} }

// Fp12One returns the multiplicative identity (also the identity of GT).
func Fp12One() Fp12 { return fp12One() }

// IsZero reports whether z == 0.
func (z *Fp12) IsZero() bool { return z.C0.IsZero() && z.C1.IsZero() }

// IsOne reports whether z == 1.
func (z *Fp12) IsOne() bool {
	one := fp12One()
	return z.Equal(&one)
}

// Equal reports whether z == x.
func (z *Fp12) Equal(x *Fp12) bool { return z.C0.Equal(&x.C0) && z.C1.Equal(&x.C1) }

// Set sets z = x and returns z.
func (z *Fp12) Set(x *Fp12) *Fp12 { *z = *x; return z }

// SetOne sets z = 1 and returns z.
func (z *Fp12) SetOne() *Fp12 { *z = fp12One(); return z }

// Add sets z = x + y and returns z.
func (z *Fp12) Add(x, y *Fp12) *Fp12 {
	z.C0.Add(&x.C0, &y.C0)
	z.C1.Add(&x.C1, &y.C1)
	return z
}

// Sub sets z = x - y and returns z.
func (z *Fp12) Sub(x, y *Fp12) *Fp12 {
	z.C0.Sub(&x.C0, &y.C0)
	z.C1.Sub(&x.C1, &y.C1)
	return z
}

// Neg sets z = -x and returns z.
func (z *Fp12) Neg(x *Fp12) *Fp12 {
	z.C0.Neg(&x.C0)
	z.C1.Neg(&x.C1)
	return z
}

// Conjugate sets z = c0 - c1·w (the Fp6-conjugate, which is x^(p⁶))
// and returns z.
func (z *Fp12) Conjugate(x *Fp12) *Fp12 {
	z.C0.Set(&x.C0)
	z.C1.Neg(&x.C1)
	return z
}

// Mul sets z = x * y (Karatsuba over Fp6, w² = v) and returns z.
func (z *Fp12) Mul(x, y *Fp12) *Fp12 {
	var v0, v1, t0, t1, c0, c1 Fp6
	v0.Mul(&x.C0, &y.C0)
	v1.Mul(&x.C1, &y.C1)
	// c1 = (x0+x1)(y0+y1) - v0 - v1
	t0.Add(&x.C0, &x.C1)
	t1.Add(&y.C0, &y.C1)
	c1.Mul(&t0, &t1)
	c1.Sub(&c1, &v0)
	c1.Sub(&c1, &v1)
	// c0 = v0 + v·v1
	c0.MulByV(&v1)
	c0.Add(&c0, &v0)
	z.C0 = c0
	z.C1 = c1
	return z
}

// Square sets z = x² and returns z.
func (z *Fp12) Square(x *Fp12) *Fp12 {
	// Complex squaring: c0 = (x0+x1)(x0+v·x1) - m - v·m, c1 = 2m, m = x0x1.
	var m, t0, t1, c0 Fp6
	m.Mul(&x.C0, &x.C1)
	t0.Add(&x.C0, &x.C1)
	t1.MulByV(&x.C1)
	t1.Add(&t1, &x.C0)
	c0.Mul(&t0, &t1)
	c0.Sub(&c0, &m)
	var vm Fp6
	vm.MulByV(&m)
	c0.Sub(&c0, &vm)
	z.C0 = c0
	z.C1.Add(&m, &m)
	return z
}

// Inverse sets z = x⁻¹ (or 0 when x == 0) and returns z.
func (z *Fp12) Inverse(x *Fp12) *Fp12 {
	// 1/(c0 + c1w) = (c0 - c1w)/(c0² - v·c1²)
	var t0, t1 Fp6
	t0.Square(&x.C0)
	t1.Square(&x.C1)
	t1.MulByV(&t1)
	t0.Sub(&t0, &t1)
	t0.Inverse(&t0)
	z.C0.Mul(&x.C0, &t0)
	t0.Neg(&t0)
	z.C1.Mul(&x.C1, &t0)
	return z
}

// Exp sets z = x^e for non-negative e and returns z.
func (z *Fp12) Exp(x *Fp12, e *big.Int) *Fp12 {
	if e.Sign() < 0 {
		//lint:ignore panicfree exponents here are the fixed final-exponentiation constants of the pairing, never attacker input; the chainable *Fp12 API has no error slot
		panic("bn254: negative exponent")
	}
	res := fp12One()
	base := *x
	for i := e.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if e.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	*z = res
	return z
}

// frobConstants holds c^i for i in [1,5] where c = ξ^((p-1)/6) ∈ Fp2, used
// by the Frobenius endomorphism. Computed once, on first use.
var frobOnce = sync.OnceValue(func() [6]Fp2 {
	xi := MustFp2FromDecimal("9", "1")
	e := new(big.Int).Sub(FpModulus(), big.NewInt(1))
	e.Div(e, big.NewInt(6))
	var c Fp2
	c.Exp(&xi, e)
	var out [6]Fp2
	out[0] = fp2One()
	for i := 1; i < 6; i++ {
		out[i].Mul(&out[i-1], &c)
	}
	return out
})

// Frobenius sets z = x^p and returns z.
//
// Viewing Fp12 over Fp2 with basis {1, w, v, vw, v², v²w} (i.e. w^i for
// i=0..5), Frobenius maps coordinate a_i to conj(a_i)·c^i with
// c = ξ^((p-1)/6), because u^p = -u and w^p = c·w.
func (z *Fp12) Frobenius(x *Fp12) *Fp12 {
	cs := frobOnce()
	// coordinates: w^0=1 → C0.B0, w^1 → C1.B0, w^2=v → C0.B1,
	// w^3=vw → C1.B1, w^4=v² → C0.B2, w^5=v²w → C1.B2.
	var a [6]Fp2
	a[0] = x.C0.B0
	a[1] = x.C1.B0
	a[2] = x.C0.B1
	a[3] = x.C1.B1
	a[4] = x.C0.B2
	a[5] = x.C1.B2
	for i := 0; i < 6; i++ {
		a[i].Conjugate(&a[i])
		if i > 0 {
			a[i].Mul(&a[i], &cs[i])
		}
	}
	z.C0.B0 = a[0]
	z.C1.B0 = a[1]
	z.C0.B1 = a[2]
	z.C1.B1 = a[3]
	z.C0.B2 = a[4]
	z.C1.B2 = a[5]
	return z
}

// FrobeniusSquare sets z = x^(p²) and returns z.
func (z *Fp12) FrobeniusSquare(x *Fp12) *Fp12 {
	z.Frobenius(x)
	return z.Frobenius(z)
}
