package bn254

import (
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/parallel"
)

// fixedBaseWindow is the window width (bits) of the fixed-base table.
const fixedBaseWindow = 8

// G1FixedBaseTable precomputes multiples of a base point so that many scalar
// multiplications of the same base cost ~32 point additions each instead of
// a full double-and-add. SRS generation ([τ^i]G for millions of i) is the
// main consumer.
type G1FixedBaseTable struct {
	// table[w][d-1] = [d · 2^(8w)]B for digit d in [1, 255].
	table [][]G1Affine
}

// NewG1FixedBaseTable builds the table for base b (256/8 = 32 windows of
// 255 entries).
func NewG1FixedBaseTable(b *G1Affine) *G1FixedBaseTable {
	const windows = 256 / fixedBaseWindow
	t := &G1FixedBaseTable{table: make([][]G1Affine, windows)}
	cur := *b
	for w := 0; w < windows; w++ {
		jacs := make([]G1Jac, 255)
		var acc G1Jac
		acc.SetInfinity()
		for d := 1; d <= 255; d++ {
			acc.AddMixed(&cur)
			jacs[d-1] = acc
		}
		t.table[w] = make([]G1Affine, 255)
		g1BatchFromJacobian(t.table[w], jacs)
		// cur = [2^8] cur
		var cj G1Jac
		cj.FromAffine(&cur)
		for i := 0; i < fixedBaseWindow; i++ {
			cj.Double(&cj)
		}
		cur.FromJacobian(&cj)
	}
	return t
}

// Mul returns [s]B using the precomputed table.
func (t *G1FixedBaseTable) Mul(s *fr.Element) G1Affine {
	var acc G1Jac
	acc.SetInfinity()
	b := s.Bytes() // big-endian
	for w := 0; w < len(t.table); w++ {
		d := int(b[31-w])
		if d != 0 {
			acc.AddMixed(&t.table[w][d-1])
		}
	}
	var out G1Affine
	out.FromJacobian(&acc)
	return out
}

// MulMany returns [s_i]B for every scalar, in parallel, with batched
// affine conversion.
func (t *G1FixedBaseTable) MulMany(scalars []fr.Element) []G1Affine {
	jacs := make([]G1Jac, len(scalars))
	parallel.Execute(len(scalars), func(start, end int) {
		for i := start; i < end; i++ {
			var acc G1Jac
			acc.SetInfinity()
			b := scalars[i].Bytes()
			for w := 0; w < len(t.table); w++ {
				d := int(b[31-w])
				if d != 0 {
					acc.AddMixed(&t.table[w][d-1])
				}
			}
			jacs[i] = acc
		}
	})
	out := make([]G1Affine, len(scalars))
	g1BatchFromJacobian(out, jacs)
	return out
}
