package bn254

import (
	"math/rand"
	"testing"

	"github.com/zkdet/zkdet/internal/fr"
)

// msmTestPoints returns n distinct points built by successive additions of
// the generator (cheap compared to n scalar multiplications).
func msmTestPoints(n int) []G1Affine {
	g := G1Generator()
	jacs := make([]G1Jac, n)
	var acc G1Jac
	acc.SetInfinity()
	for i := 0; i < n; i++ {
		acc.AddMixed(&g)
		jacs[i] = acc
	}
	out := make([]G1Affine, n)
	g1BatchFromJacobian(out, jacs)
	return out
}

// msmTestScalars mixes full-width scalars with the edge cases the signed
// recoding has to get right: 0, 1, r-1 (all-ones carries) and small values.
func msmTestScalars(rng *rand.Rand, n int) []fr.Element {
	out := make([]fr.Element, n)
	minusOne := fr.Zero()
	one := fr.One()
	minusOne.Sub(&minusOne, &one)
	for i := range out {
		switch rng.Intn(8) {
		case 0:
			out[i] = fr.Zero()
		case 1:
			out[i] = fr.One()
		case 2:
			out[i] = minusOne
		case 3:
			out[i] = fr.NewElement(rng.Uint64())
		default:
			out[i] = fr.MustRandom()
		}
	}
	return out
}

// msmNaive is the definitional reference: ∑ scalars[i]·points[i] by
// individual scalar multiplications.
func msmNaive(points []G1Affine, scalars []fr.Element) G1Affine {
	var acc G1Jac
	acc.SetInfinity()
	for i := range points {
		var t G1Jac
		t.ScalarMul(&points[i], &scalars[i])
		acc.AddAssign(&t)
	}
	var out G1Affine
	out.FromJacobian(&acc)
	return out
}

// TestG1MSMMatchesNaive cross-checks the signed-digit chunked MSM against
// the naive sum at sizes straddling the windowSize breakpoints at 32
// (naive cutoff), 64, 256 and 1024.
func TestG1MSMMatchesNaive(t *testing.T) {
	sizes := []int{1, 2, 31, 32, 33, 63, 64, 65, 255, 256, 257, 1023, 1024, 1025}
	if testing.Short() {
		sizes = []int{1, 31, 33, 65, 257}
	}
	maxN := sizes[len(sizes)-1]
	rng := rand.New(rand.NewSource(42))
	points := msmTestPoints(maxN)
	scalars := msmTestScalars(rng, maxN)
	for _, n := range sizes {
		got, err := G1MSM(points[:n], scalars[:n])
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		want := msmNaive(points[:n], scalars[:n])
		if !got.Equal(&want) {
			t.Fatalf("n=%d: G1MSM differs from naive sum", n)
		}
	}
}

// TestMSMEveryWindowWidth runs the Pippenger core at every window width
// the windowSize breakpoints can select (including the 12- and 14-bit
// windows normally reserved for 2^14+ points), so each bucket layout is
// exercised without a quarter-million-point naive reference.
func TestMSMEveryWindowWidth(t *testing.T) {
	const n = 300
	rng := rand.New(rand.NewSource(43))
	points := msmTestPoints(n)
	scalars := msmTestScalars(rng, n)
	want := msmNaive(points, scalars)
	for _, c := range []int{3, 5, 7, 9, 12, 14} {
		got := msmWithWindow(points, scalars, c)
		if !got.Equal(&want) {
			t.Fatalf("window=%d: msmWithWindow differs from naive sum", c)
		}
	}
}

// TestG1MSMWithInfinityPoints asserts points at infinity in the input are
// handled as zeros.
func TestG1MSMWithInfinityPoints(t *testing.T) {
	const n = 100
	rng := rand.New(rand.NewSource(44))
	points := msmTestPoints(n)
	scalars := msmTestScalars(rng, n)
	for i := 0; i < n; i += 7 {
		points[i] = G1Affine{} // infinity
	}
	got, err := G1MSM(points, scalars)
	if err != nil {
		t.Fatal(err)
	}
	want := msmNaive(points, scalars)
	if !got.Equal(&want) {
		t.Fatal("G1MSM with infinity points differs from naive sum")
	}
}

// TestG1MSMErrors covers the length-mismatch and empty-input contracts.
// TestG1MSMSmallScalars pins the window-count bound: scalars far below the
// 254-bit ceiling (including the all-zero vector) must still sum exactly.
func TestG1MSMSmallScalars(t *testing.T) {
	const n = 300
	points := msmTestPoints(n)
	scalars := make([]fr.Element, n)
	for i := range scalars {
		scalars[i] = fr.NewElement(uint64(i) * 2654435761)
	}
	got, err := G1MSM(points, scalars)
	if err != nil {
		t.Fatal(err)
	}
	want := msmNaive(points, scalars)
	if !got.Equal(&want) {
		t.Fatal("G1MSM with small scalars differs from naive sum")
	}

	zeros := make([]fr.Element, n)
	got, err = G1MSM(points, zeros)
	if err != nil {
		t.Fatal(err)
	}
	if !got.IsInfinity() {
		t.Fatal("G1MSM of all-zero scalars is not infinity")
	}
}

func TestG1MSMErrors(t *testing.T) {
	points := msmTestPoints(2)
	scalars := msmTestScalars(rand.New(rand.NewSource(45)), 3)
	if _, err := G1MSM(points, scalars); err == nil {
		t.Fatal("expected length-mismatch error")
	}
	out, err := G1MSM(nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.IsInfinity() {
		t.Fatal("empty MSM should be the point at infinity")
	}
}
