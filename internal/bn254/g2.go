package bn254

import (
	"math/big"
	"sync"

	"github.com/zkdet/zkdet/internal/fr"
)

// twistB returns b' = 3/(9+u), the constant of the sextic twist
// E': y² = x³ + b' over Fp2 on which G2 lives.
var twistB = sync.OnceValue(func() Fp2 {
	xi := MustFp2FromDecimal("9", "1")
	var inv Fp2
	inv.Inverse(&xi)
	three := NewFp(3)
	var b Fp2
	b.MulByFp(&inv, &three)
	return b
})

// G2Affine is a point on the twist E'(Fp2) in affine coordinates. The point
// at infinity is encoded as (0, 0).
type G2Affine struct {
	X, Y Fp2
}

// G2Jac is a point on E'(Fp2) in Jacobian coordinates; Z == 0 encodes
// infinity. The zero value is the point at infinity.
type G2Jac struct {
	X, Y, Z Fp2
}

// G2Generator returns the standard G2 generator.
func G2Generator() G2Affine {
	return G2Affine{
		X: MustFp2FromDecimal(
			"10857046999023057135944570762232829481370756359578518086990519993285655852781",
			"11559732032986387107991004021392285783925812861821192530917403151452391805634",
		),
		Y: MustFp2FromDecimal(
			"8495653923123431417604973247489272438418190587263600148770280649306958101930",
			"4082367875863433681332203403145435568316851327593401208105741076214120093531",
		),
	}
}

// IsInfinity reports whether p is the point at infinity.
func (p *G2Affine) IsInfinity() bool { return p.X.IsZero() && p.Y.IsZero() }

// Equal reports whether p == q.
func (p *G2Affine) Equal(q *G2Affine) bool { return p.X.Equal(&q.X) && p.Y.Equal(&q.Y) }

// Neg sets p = -q and returns p.
func (p *G2Affine) Neg(q *G2Affine) *G2Affine {
	p.X.Set(&q.X)
	if q.IsInfinity() {
		p.Y.SetZero()
	} else {
		p.Y.Neg(&q.Y)
	}
	return p
}

// IsOnCurve reports whether p satisfies y² = x³ + b' (infinity counts as on
// the curve). This does not check subgroup membership; see IsInSubgroup.
func (p *G2Affine) IsOnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	var lhs, rhs Fp2
	lhs.Square(&p.Y)
	rhs.Square(&p.X)
	rhs.Mul(&rhs, &p.X)
	b := twistB()
	rhs.Add(&rhs, &b)
	return lhs.Equal(&rhs)
}

// IsInSubgroup reports whether p is in the order-r subgroup (by checking
// [r]p == O; correct albeit not the fastest method).
func (p *G2Affine) IsInSubgroup() bool {
	if !p.IsOnCurve() {
		return false
	}
	var j G2Jac
	j.scalarMulBig(p, fr.Modulus())
	return j.IsInfinity()
}

// IsInfinity reports whether p is the point at infinity.
func (p *G2Jac) IsInfinity() bool { return p.Z.IsZero() }

// Set sets p = q and returns p.
func (p *G2Jac) Set(q *G2Jac) *G2Jac { *p = *q; return p }

// SetInfinity sets p to the point at infinity and returns p.
func (p *G2Jac) SetInfinity() *G2Jac { *p = G2Jac{}; return p }

// FromAffine lifts q to Jacobian coordinates and returns p.
func (p *G2Jac) FromAffine(q *G2Affine) *G2Jac {
	if q.IsInfinity() {
		return p.SetInfinity()
	}
	p.X.Set(&q.X)
	p.Y.Set(&q.Y)
	p.Z.SetOne()
	return p
}

// FromJacobian converts q to affine coordinates and returns p.
func (p *G2Affine) FromJacobian(q *G2Jac) *G2Affine {
	if q.Z.IsZero() {
		p.X.SetZero()
		p.Y.SetZero()
		return p
	}
	var zInv, zInv2, zInv3 Fp2
	zInv.Inverse(&q.Z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	p.X.Mul(&q.X, &zInv2)
	p.Y.Mul(&q.Y, &zInv3)
	return p
}

// Double sets p = 2q and returns p.
func (p *G2Jac) Double(q *G2Jac) *G2Jac {
	if q.IsInfinity() {
		return p.SetInfinity()
	}
	var a, b, c, d, e, f, t Fp2
	a.Square(&q.X)
	b.Square(&q.Y)
	c.Square(&b)
	d.Add(&q.X, &b)
	d.Square(&d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Double(&d)
	e.Double(&a)
	e.Add(&e, &a)
	f.Square(&e)

	var x3, y3, z3 Fp2
	x3.Sub(&f, t.Double(&d))
	y3.Sub(&d, &x3)
	y3.Mul(&e, &y3)
	var c8 Fp2
	c8.Double(&c)
	c8.Double(&c8)
	c8.Double(&c8)
	y3.Sub(&y3, &c8)
	z3.Mul(&q.Y, &q.Z)
	z3.Double(&z3)

	p.X = x3
	p.Y = y3
	p.Z = z3
	return p
}

// AddAssign sets p = p + q and returns p.
func (p *G2Jac) AddAssign(q *G2Jac) *G2Jac {
	if q.IsInfinity() {
		return p
	}
	if p.IsInfinity() {
		return p.Set(q)
	}
	var z1z1, z2z2, u1, u2, s1, s2 Fp2
	z1z1.Square(&p.Z)
	z2z2.Square(&q.Z)
	u1.Mul(&p.X, &z2z2)
	u2.Mul(&q.X, &z1z1)
	s1.Mul(&p.Y, &q.Z)
	s1.Mul(&s1, &z2z2)
	s2.Mul(&q.Y, &p.Z)
	s2.Mul(&s2, &z1z1)

	if u1.Equal(&u2) {
		if s1.Equal(&s2) {
			return p.Double(p)
		}
		return p.SetInfinity()
	}

	var h, i, j, r, v Fp2
	h.Sub(&u2, &u1)
	i.Double(&h)
	i.Square(&i)
	j.Mul(&h, &i)
	r.Sub(&s2, &s1)
	r.Double(&r)
	v.Mul(&u1, &i)

	var x3, y3, z3, t Fp2
	x3.Square(&r)
	x3.Sub(&x3, &j)
	x3.Sub(&x3, t.Double(&v))
	y3.Sub(&v, &x3)
	y3.Mul(&r, &y3)
	t.Mul(&s1, &j)
	t.Double(&t)
	y3.Sub(&y3, &t)
	z3.Add(&p.Z, &q.Z)
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h)

	p.X = x3
	p.Y = y3
	p.Z = z3
	return p
}

// ScalarMul sets p = [s]q and returns p.
func (p *G2Jac) ScalarMul(q *G2Affine, s *fr.Element) *G2Jac {
	return p.scalarMulBig(q, s.BigInt())
}

func (p *G2Jac) scalarMulBig(q *G2Affine, s *big.Int) *G2Jac {
	if q.IsInfinity() || s.Sign() == 0 {
		return p.SetInfinity()
	}
	var acc, base G2Jac
	acc.SetInfinity()
	base.FromAffine(q)
	for i := s.BitLen() - 1; i >= 0; i-- {
		acc.Double(&acc)
		if s.Bit(i) == 1 {
			acc.AddAssign(&base)
		}
	}
	return p.Set(&acc)
}

// G2ScalarMul returns [s]q in affine coordinates.
func G2ScalarMul(q *G2Affine, s *fr.Element) G2Affine {
	var j G2Jac
	j.ScalarMul(q, s)
	var out G2Affine
	out.FromJacobian(&j)
	return out
}

// G2Add returns p + q in affine coordinates.
func G2Add(p, q *G2Affine) G2Affine {
	var jp, jq G2Jac
	jp.FromAffine(p)
	jq.FromAffine(q)
	jp.AddAssign(&jq)
	var out G2Affine
	out.FromJacobian(&jp)
	return out
}
