package bn254

import (
	"fmt"
	"math/big"

	"github.com/zkdet/zkdet/internal/fr"
)

// G1Affine is a point on E: y² = x³ + 3 over Fp in affine coordinates.
// The point at infinity is encoded as (0, 0), which is not on the curve.
type G1Affine struct {
	X, Y Fp
}

// G1Jac is a point in Jacobian coordinates (X/Z², Y/Z³); Z == 0 encodes the
// point at infinity. The zero value is the point at infinity.
type G1Jac struct {
	X, Y, Z Fp
}

// G1Generator returns the standard generator (1, 2).
func G1Generator() G1Affine {
	return G1Affine{X: NewFp(1), Y: NewFp(2)}
}

// IsInfinity reports whether p is the point at infinity.
func (p *G1Affine) IsInfinity() bool { return p.X.IsZero() && p.Y.IsZero() }

// Equal reports whether p == q.
func (p *G1Affine) Equal(q *G1Affine) bool { return p.X.Equal(&q.X) && p.Y.Equal(&q.Y) }

// Neg sets p = -q and returns p.
func (p *G1Affine) Neg(q *G1Affine) *G1Affine {
	p.X.Set(&q.X)
	if q.IsInfinity() {
		p.Y.SetZero()
	} else {
		p.Y.Neg(&q.Y)
	}
	return p
}

// IsOnCurve reports whether p satisfies y² = x³ + 3 (infinity counts as on
// the curve). G1 has prime order, so on-curve implies in-subgroup.
func (p *G1Affine) IsOnCurve() bool {
	if p.IsInfinity() {
		return true
	}
	var lhs, rhs, three Fp
	lhs.Square(&p.Y)
	rhs.Square(&p.X)
	rhs.Mul(&rhs, &p.X)
	three = NewFp(3)
	rhs.Add(&rhs, &three)
	return lhs.Equal(&rhs)
}

// Bytes returns the uncompressed 64-byte encoding (X ‖ Y, big-endian).
func (p *G1Affine) Bytes() [64]byte {
	var out [64]byte
	x := p.X.Bytes()
	y := p.Y.Bytes()
	copy(out[:32], x[:])
	copy(out[32:], y[:])
	return out
}

// G1FromBytes decodes an uncompressed 64-byte encoding, rejecting points
// that are not on the curve.
func G1FromBytes(b []byte) (G1Affine, error) {
	if len(b) != 64 {
		return G1Affine{}, fmt.Errorf("bn254: g1 encoding must be 64 bytes, got %d", len(b))
	}
	x, err := FpFromBytesCanonical(b[:32])
	if err != nil {
		return G1Affine{}, fmt.Errorf("bn254: g1 x: %w", err)
	}
	y, err := FpFromBytesCanonical(b[32:])
	if err != nil {
		return G1Affine{}, fmt.Errorf("bn254: g1 y: %w", err)
	}
	p := G1Affine{X: x, Y: y}
	if !p.IsOnCurve() {
		return G1Affine{}, fmt.Errorf("bn254: point not on G1")
	}
	return p, nil
}

// FromJacobian converts q to affine coordinates and returns p.
func (p *G1Affine) FromJacobian(q *G1Jac) *G1Affine {
	if q.Z.IsZero() {
		p.X.SetZero()
		p.Y.SetZero()
		return p
	}
	var zInv, zInv2, zInv3 Fp
	zInv.Inverse(&q.Z)
	zInv2.Square(&zInv)
	zInv3.Mul(&zInv2, &zInv)
	p.X.Mul(&q.X, &zInv2)
	p.Y.Mul(&q.Y, &zInv3)
	return p
}

// g1BatchFromJacobian converts points to affine with one shared inversion.
func g1BatchFromJacobian(out []G1Affine, in []G1Jac) {
	zs := make([]Fp, len(in))
	for i := range in {
		zs[i] = in[i].Z
	}
	fpBatchInverse(zs)
	for i := range in {
		if in[i].Z.IsZero() {
			out[i] = G1Affine{}
			continue
		}
		var z2, z3 Fp
		z2.Square(&zs[i])
		z3.Mul(&z2, &zs[i])
		out[i].X.Mul(&in[i].X, &z2)
		out[i].Y.Mul(&in[i].Y, &z3)
	}
}

// IsInfinity reports whether p is the point at infinity.
func (p *G1Jac) IsInfinity() bool { return p.Z.IsZero() }

// Set sets p = q and returns p.
func (p *G1Jac) Set(q *G1Jac) *G1Jac { *p = *q; return p }

// SetInfinity sets p to the point at infinity and returns p.
func (p *G1Jac) SetInfinity() *G1Jac { *p = G1Jac{}; return p }

// FromAffine lifts q to Jacobian coordinates and returns p.
func (p *G1Jac) FromAffine(q *G1Affine) *G1Jac {
	if q.IsInfinity() {
		return p.SetInfinity()
	}
	p.X.Set(&q.X)
	p.Y.Set(&q.Y)
	p.Z.SetOne()
	return p
}

// Double sets p = 2q (dbl-2009-l, a = 0) and returns p.
func (p *G1Jac) Double(q *G1Jac) *G1Jac {
	if q.IsInfinity() {
		return p.SetInfinity()
	}
	var a, b, c, d, e, f, t Fp
	a.Square(&q.X)  // A = X²
	b.Square(&q.Y)  // B = Y²
	c.Square(&b)    // C = B²
	d.Add(&q.X, &b) // D = 2((X+B)² - A - C)
	d.Square(&d)
	d.Sub(&d, &a)
	d.Sub(&d, &c)
	d.Double(&d)
	e.Double(&a) // E = 3A
	e.Add(&e, &a)
	f.Square(&e) // F = E²

	var x3, y3, z3 Fp
	t.Double(&d)
	x3.Sub(&f, &t)  // X3 = F - 2D
	y3.Sub(&d, &x3) // Y3 = E(D - X3) - 8C
	y3.Mul(&e, &y3)
	var c8 Fp
	c8.Double(&c)
	c8.Double(&c8)
	c8.Double(&c8)
	y3.Sub(&y3, &c8)
	z3.Mul(&q.Y, &q.Z) // Z3 = 2YZ
	z3.Double(&z3)

	p.X = x3
	p.Y = y3
	p.Z = z3
	return p
}

// AddAssign sets p = p + q (general Jacobian addition) and returns p.
func (p *G1Jac) AddAssign(q *G1Jac) *G1Jac {
	if q.IsInfinity() {
		return p
	}
	if p.IsInfinity() {
		return p.Set(q)
	}
	// add-2007-bl
	var z1z1, z2z2, u1, u2, s1, s2 Fp
	z1z1.Square(&p.Z)
	z2z2.Square(&q.Z)
	u1.Mul(&p.X, &z2z2)
	u2.Mul(&q.X, &z1z1)
	s1.Mul(&p.Y, &q.Z)
	s1.Mul(&s1, &z2z2)
	s2.Mul(&q.Y, &p.Z)
	s2.Mul(&s2, &z1z1)

	if u1.Equal(&u2) {
		if s1.Equal(&s2) {
			return p.Double(p)
		}
		return p.SetInfinity()
	}

	var h, i, j, r, v Fp
	h.Sub(&u2, &u1) // H = U2 - U1
	i.Double(&h)    // I = (2H)²
	i.Square(&i)
	j.Mul(&h, &i)   // J = H·I
	r.Sub(&s2, &s1) // r = 2(S2 - S1)
	r.Double(&r)
	v.Mul(&u1, &i) // V = U1·I

	var x3, y3, z3, t Fp
	x3.Square(&r) // X3 = r² - J - 2V
	x3.Sub(&x3, &j)
	t.Double(&v)
	x3.Sub(&x3, &t)
	y3.Sub(&v, &x3) // Y3 = r(V - X3) - 2S1·J
	y3.Mul(&r, &y3)
	t.Mul(&s1, &j)
	t.Double(&t)
	y3.Sub(&y3, &t)
	z3.Add(&p.Z, &q.Z) // Z3 = ((Z1+Z2)² - Z1Z1 - Z2Z2)·H
	z3.Square(&z3)
	z3.Sub(&z3, &z1z1)
	z3.Sub(&z3, &z2z2)
	z3.Mul(&z3, &h)

	p.X = x3
	p.Y = y3
	p.Z = z3
	return p
}

// AddMixed sets p = p + q for an affine q and returns p.
func (p *G1Jac) AddMixed(q *G1Affine) *G1Jac {
	var qj G1Jac
	qj.FromAffine(q)
	return p.AddAssign(&qj)
}

// Neg sets p = -q and returns p.
func (p *G1Jac) Neg(q *G1Jac) *G1Jac {
	p.X.Set(&q.X)
	p.Y.Neg(&q.Y)
	p.Z.Set(&q.Z)
	return p
}

// ScalarMul sets p = [s]q and returns p. s is taken mod r.
func (p *G1Jac) ScalarMul(q *G1Affine, s *fr.Element) *G1Jac {
	return p.scalarMulBig(q, s.BigInt())
}

func (p *G1Jac) scalarMulBig(q *G1Affine, s *big.Int) *G1Jac {
	var acc G1Jac
	acc.SetInfinity()
	if q.IsInfinity() || s.Sign() == 0 {
		return p.SetInfinity()
	}
	var base G1Jac
	base.FromAffine(q)
	for i := s.BitLen() - 1; i >= 0; i-- {
		acc.Double(&acc)
		if s.Bit(i) == 1 {
			acc.AddAssign(&base)
		}
	}
	return p.Set(&acc)
}

// G1ScalarMul returns [s]q in affine coordinates.
func G1ScalarMul(q *G1Affine, s *fr.Element) G1Affine {
	var j G1Jac
	j.ScalarMul(q, s)
	var out G1Affine
	out.FromJacobian(&j)
	return out
}

// G1Add returns p + q in affine coordinates.
func G1Add(p, q *G1Affine) G1Affine {
	var j G1Jac
	j.FromAffine(p)
	j.AddMixed(q)
	var out G1Affine
	out.FromJacobian(&j)
	return out
}
