package bn254

import (
	"fmt"
	"math/rand"
	"testing"
)

func BenchmarkG1MSM(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	const maxLog = 16
	points := msmTestPoints(1 << maxLog)
	scalars := msmTestScalars(rng, 1<<maxLog)
	for _, logN := range []int{10, 12, 14, 16} {
		n := 1 << logN
		b.Run(fmt.Sprintf("2^%d", logN), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := G1MSM(points[:n], scalars[:n]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
