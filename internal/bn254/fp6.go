package bn254

// Fp6 is the cubic extension Fp2[v]/(v³ - ξ) with ξ = 9 + u.
// An element is B0 + B1·v + B2·v². The zero value is 0.
type Fp6 struct {
	B0, B1, B2 Fp2
}

func fp6Zero() Fp6 { return Fp6{} }
func fp6One() Fp6  { return Fp6{B0: fp2One()} }

// IsZero reports whether z == 0.
func (z *Fp6) IsZero() bool { return z.B0.IsZero() && z.B1.IsZero() && z.B2.IsZero() }

// Equal reports whether z == x.
func (z *Fp6) Equal(x *Fp6) bool {
	return z.B0.Equal(&x.B0) && z.B1.Equal(&x.B1) && z.B2.Equal(&x.B2)
}

// Set sets z = x and returns z.
func (z *Fp6) Set(x *Fp6) *Fp6 { *z = *x; return z }

// SetOne sets z = 1 and returns z.
func (z *Fp6) SetOne() *Fp6 { *z = fp6One(); return z }

// Add sets z = x + y and returns z.
func (z *Fp6) Add(x, y *Fp6) *Fp6 {
	z.B0.Add(&x.B0, &y.B0)
	z.B1.Add(&x.B1, &y.B1)
	z.B2.Add(&x.B2, &y.B2)
	return z
}

// Sub sets z = x - y and returns z.
func (z *Fp6) Sub(x, y *Fp6) *Fp6 {
	z.B0.Sub(&x.B0, &y.B0)
	z.B1.Sub(&x.B1, &y.B1)
	z.B2.Sub(&x.B2, &y.B2)
	return z
}

// Neg sets z = -x and returns z.
func (z *Fp6) Neg(x *Fp6) *Fp6 {
	z.B0.Neg(&x.B0)
	z.B1.Neg(&x.B1)
	z.B2.Neg(&x.B2)
	return z
}

// Mul sets z = x * y (Toom/Karatsuba-style interpolation) and returns z.
func (z *Fp6) Mul(x, y *Fp6) *Fp6 {
	// v0 = x0y0, v1 = x1y1, v2 = x2y2
	var v0, v1, v2 Fp2
	v0.Mul(&x.B0, &y.B0)
	v1.Mul(&x.B1, &y.B1)
	v2.Mul(&x.B2, &y.B2)

	// c0 = v0 + ξ((x1+x2)(y1+y2) - v1 - v2)
	var t0, t1, c0, c1, c2 Fp2
	t0.Add(&x.B1, &x.B2)
	t1.Add(&y.B1, &y.B2)
	c0.Mul(&t0, &t1)
	c0.Sub(&c0, &v1)
	c0.Sub(&c0, &v2)
	c0.MulByNonResidue(&c0)
	c0.Add(&c0, &v0)

	// c1 = (x0+x1)(y0+y1) - v0 - v1 + ξv2
	t0.Add(&x.B0, &x.B1)
	t1.Add(&y.B0, &y.B1)
	c1.Mul(&t0, &t1)
	c1.Sub(&c1, &v0)
	c1.Sub(&c1, &v1)
	var xv2 Fp2
	xv2.MulByNonResidue(&v2)
	c1.Add(&c1, &xv2)

	// c2 = (x0+x2)(y0+y2) - v0 - v2 + v1
	t0.Add(&x.B0, &x.B2)
	t1.Add(&y.B0, &y.B2)
	c2.Mul(&t0, &t1)
	c2.Sub(&c2, &v0)
	c2.Sub(&c2, &v2)
	c2.Add(&c2, &v1)

	z.B0 = c0
	z.B1 = c1
	z.B2 = c2
	return z
}

// Square sets z = x² and returns z.
func (z *Fp6) Square(x *Fp6) *Fp6 { return z.Mul(x, x) }

// MulByV sets z = x · v, i.e. (b0,b1,b2) ↦ (ξ·b2, b0, b1), and returns z.
func (z *Fp6) MulByV(x *Fp6) *Fp6 {
	var t Fp2
	t.MulByNonResidue(&x.B2)
	b0, b1 := x.B0, x.B1
	z.B0 = t
	z.B1 = b0
	z.B2 = b1
	return z
}

// MulByFp2 sets z = x * c for an Fp2 scalar c and returns z.
func (z *Fp6) MulByFp2(x *Fp6, c *Fp2) *Fp6 {
	z.B0.Mul(&x.B0, c)
	z.B1.Mul(&x.B1, c)
	z.B2.Mul(&x.B2, c)
	return z
}

// Inverse sets z = x⁻¹ (or 0 when x == 0) and returns z.
func (z *Fp6) Inverse(x *Fp6) *Fp6 {
	// Standard cubic-extension inversion:
	// A = b0² - ξ·b1·b2, B = ξ·b2² - b0·b1, C = b1² - b0·b2
	// F = b0·A + ξ·b1·C + ξ·b2·B ; z = (A, B, C)/F
	var a, b, c, t Fp2
	a.Square(&x.B0)
	t.Mul(&x.B1, &x.B2)
	t.MulByNonResidue(&t)
	a.Sub(&a, &t)

	b.Square(&x.B2)
	b.MulByNonResidue(&b)
	t.Mul(&x.B0, &x.B1)
	b.Sub(&b, &t)

	c.Square(&x.B1)
	t.Mul(&x.B0, &x.B2)
	c.Sub(&c, &t)

	var f, t2 Fp2
	f.Mul(&x.B0, &a)
	t2.Mul(&x.B1, &c)
	t2.MulByNonResidue(&t2)
	f.Add(&f, &t2)
	t2.Mul(&x.B2, &b)
	t2.MulByNonResidue(&t2)
	f.Add(&f, &t2)

	f.Inverse(&f)
	z.B0.Mul(&a, &f)
	z.B1.Mul(&b, &f)
	z.B2.Mul(&c, &f)
	return z
}
