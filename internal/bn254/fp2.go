package bn254

import "math/big"

// Fp2 is the quadratic extension Fp[u]/(u²+1). An element is A0 + A1·u.
// The zero value is 0.
type Fp2 struct {
	A0, A1 Fp
}

func fp2Zero() Fp2 { return Fp2{} }
func fp2One() Fp2  { return Fp2{A0: fpOne()} }

// NewFp2 returns a0 + a1·u.
func NewFp2(a0, a1 Fp) Fp2 { return Fp2{A0: a0, A1: a1} }

// MustFp2FromDecimal parses two base-10 literals as a0 + a1·u.
func MustFp2FromDecimal(a0, a1 string) Fp2 {
	return Fp2{A0: MustFpFromDecimal(a0), A1: MustFpFromDecimal(a1)}
}

// IsZero reports whether z == 0.
func (z *Fp2) IsZero() bool { return z.A0.IsZero() && z.A1.IsZero() }

// IsOne reports whether z == 1.
func (z *Fp2) IsOne() bool { return z.A0.IsOne() && z.A1.IsZero() }

// Equal reports whether z == x.
func (z *Fp2) Equal(x *Fp2) bool { return z.A0.Equal(&x.A0) && z.A1.Equal(&x.A1) }

// Set sets z = x and returns z.
func (z *Fp2) Set(x *Fp2) *Fp2 { *z = *x; return z }

// SetZero sets z = 0 and returns z.
func (z *Fp2) SetZero() *Fp2 { *z = Fp2{}; return z }

// SetOne sets z = 1 and returns z.
func (z *Fp2) SetOne() *Fp2 { *z = fp2One(); return z }

// String formats z as "a0 + a1*u".
func (z Fp2) String() string { return z.A0.String() + " + " + z.A1.String() + "*u" }

// Add sets z = x + y and returns z.
func (z *Fp2) Add(x, y *Fp2) *Fp2 {
	z.A0.Add(&x.A0, &y.A0)
	z.A1.Add(&x.A1, &y.A1)
	return z
}

// Sub sets z = x - y and returns z.
func (z *Fp2) Sub(x, y *Fp2) *Fp2 {
	z.A0.Sub(&x.A0, &y.A0)
	z.A1.Sub(&x.A1, &y.A1)
	return z
}

// Double sets z = 2x and returns z.
func (z *Fp2) Double(x *Fp2) *Fp2 {
	z.A0.Double(&x.A0)
	z.A1.Double(&x.A1)
	return z
}

// Neg sets z = -x and returns z.
func (z *Fp2) Neg(x *Fp2) *Fp2 {
	z.A0.Neg(&x.A0)
	z.A1.Neg(&x.A1)
	return z
}

// Conjugate sets z = a0 - a1·u and returns z.
func (z *Fp2) Conjugate(x *Fp2) *Fp2 {
	z.A0.Set(&x.A0)
	z.A1.Neg(&x.A1)
	return z
}

// Mul sets z = x * y using Karatsuba (u² = -1) and returns z.
func (z *Fp2) Mul(x, y *Fp2) *Fp2 {
	var v0, v1, t0, t1, res0, res1 Fp
	v0.Mul(&x.A0, &y.A0)
	v1.Mul(&x.A1, &y.A1)
	// res0 = v0 - v1
	res0.Sub(&v0, &v1)
	// res1 = (x0+x1)(y0+y1) - v0 - v1
	t0.Add(&x.A0, &x.A1)
	t1.Add(&y.A0, &y.A1)
	res1.Mul(&t0, &t1)
	res1.Sub(&res1, &v0)
	res1.Sub(&res1, &v1)
	z.A0 = res0
	z.A1 = res1
	return z
}

// Square sets z = x² and returns z.
func (z *Fp2) Square(x *Fp2) *Fp2 {
	// (a0+a1u)² = (a0+a1)(a0-a1) + 2a0a1·u
	var s, d, m Fp
	s.Add(&x.A0, &x.A1)
	d.Sub(&x.A0, &x.A1)
	m.Mul(&x.A0, &x.A1)
	z.A0.Mul(&s, &d)
	z.A1.Double(&m)
	return z
}

// MulByFp sets z = x * c for a base-field scalar c and returns z.
func (z *Fp2) MulByFp(x *Fp2, c *Fp) *Fp2 {
	z.A0.Mul(&x.A0, c)
	z.A1.Mul(&x.A1, c)
	return z
}

// MulByNonResidue sets z = x * ξ with ξ = 9 + u (the Fp6 non-residue)
// and returns z.
func (z *Fp2) MulByNonResidue(x *Fp2) *Fp2 {
	// (a0 + a1u)(9 + u) = (9a0 - a1) + (a0 + 9a1)u
	var nine, t0, t1 Fp
	nine = NewFp(9)
	var r0, r1 Fp
	t0.Mul(&x.A0, &nine)
	r0.Sub(&t0, &x.A1)
	t1.Mul(&x.A1, &nine)
	r1.Add(&x.A0, &t1)
	z.A0 = r0
	z.A1 = r1
	return z
}

// Inverse sets z = x⁻¹ (or 0 when x == 0) and returns z.
func (z *Fp2) Inverse(x *Fp2) *Fp2 {
	// 1/(a0+a1u) = (a0 - a1u)/(a0² + a1²)
	var norm, t Fp
	norm.Square(&x.A0)
	t.Square(&x.A1)
	norm.Add(&norm, &t)
	norm.Inverse(&norm)
	z.A0.Mul(&x.A0, &norm)
	t.Neg(&x.A1)
	z.A1.Mul(&t, &norm)
	return z
}

// Exp sets z = x^e for non-negative e and returns z.
func (z *Fp2) Exp(x *Fp2, e *big.Int) *Fp2 {
	if e.Sign() < 0 {
		//lint:ignore panicfree exponents here are the fixed Frobenius/cofactor constants of the curve, never attacker input; the chainable *Fp2 API has no error slot
		panic("bn254: negative exponent")
	}
	res := fp2One()
	base := *x
	for i := e.BitLen() - 1; i >= 0; i-- {
		res.Square(&res)
		if e.Bit(i) == 1 {
			res.Mul(&res, &base)
		}
	}
	*z = res
	return z
}
