package bn254

import (
	"math/big"
	"testing"
	"testing/quick"

	"github.com/zkdet/zkdet/internal/fr"
)

func randFp2() Fp2 {
	a := fr.MustRandom()
	b := fr.MustRandom()
	return Fp2{A0: FpFromBig(a.BigInt()), A1: FpFromBig(b.BigInt())}
}

func randFp6() Fp6 {
	return Fp6{B0: randFp2(), B1: randFp2(), B2: randFp2()}
}

func randFp12() Fp12 {
	return Fp12{C0: randFp6(), C1: randFp6()}
}

func TestFp2FieldAxioms(t *testing.T) {
	for i := 0; i < 50; i++ {
		x, y, z := randFp2(), randFp2(), randFp2()
		var l, r, t1, t2 Fp2
		// Distributivity.
		l.Add(&y, &z)
		l.Mul(&x, &l)
		t1.Mul(&x, &y)
		t2.Mul(&x, &z)
		r.Add(&t1, &t2)
		if !l.Equal(&r) {
			t.Fatal("fp2 distributivity")
		}
		// Square vs Mul.
		var sq, mm Fp2
		sq.Square(&x)
		mm.Mul(&x, &x)
		if !sq.Equal(&mm) {
			t.Fatal("fp2 square != mul")
		}
		// Inverse.
		if !x.IsZero() {
			var inv, prod Fp2
			inv.Inverse(&x)
			prod.Mul(&x, &inv)
			if !prod.IsOne() {
				t.Fatal("fp2 inverse")
			}
		}
	}
}

func TestFp2NonResidue(t *testing.T) {
	// MulByNonResidue must agree with multiplying by 9+u.
	xi := MustFp2FromDecimal("9", "1")
	for i := 0; i < 20; i++ {
		x := randFp2()
		var a, b Fp2
		a.MulByNonResidue(&x)
		b.Mul(&x, &xi)
		if !a.Equal(&b) {
			t.Fatal("MulByNonResidue != * (9+u)")
		}
	}
}

func TestFp6FieldAxioms(t *testing.T) {
	for i := 0; i < 25; i++ {
		x, y, z := randFp6(), randFp6(), randFp6()
		var l, r, t1, t2 Fp6
		l.Add(&y, &z)
		l.Mul(&x, &l)
		t1.Mul(&x, &y)
		t2.Mul(&x, &z)
		r.Add(&t1, &t2)
		if !l.Equal(&r) {
			t.Fatal("fp6 distributivity")
		}
		if !x.IsZero() {
			var inv, prod Fp6
			inv.Inverse(&x)
			prod.Mul(&x, &inv)
			one := fp6One()
			if !prod.Equal(&one) {
				t.Fatal("fp6 inverse")
			}
		}
	}
}

func TestFp6MulByV(t *testing.T) {
	// MulByV must agree with multiplication by the element v.
	v := Fp6{B1: fp2One()}
	for i := 0; i < 10; i++ {
		x := randFp6()
		var a, b Fp6
		a.MulByV(&x)
		b.Mul(&x, &v)
		if !a.Equal(&b) {
			t.Fatal("MulByV mismatch")
		}
	}
}

func TestFp12FieldAxioms(t *testing.T) {
	for i := 0; i < 10; i++ {
		x, y, z := randFp12(), randFp12(), randFp12()
		var l, r, t1, t2 Fp12
		l.Add(&y, &z)
		l.Mul(&x, &l)
		t1.Mul(&x, &y)
		t2.Mul(&x, &z)
		r.Add(&t1, &t2)
		if !l.Equal(&r) {
			t.Fatal("fp12 distributivity")
		}
		var sq, mm Fp12
		sq.Square(&x)
		mm.Mul(&x, &x)
		if !sq.Equal(&mm) {
			t.Fatal("fp12 square != mul")
		}
		if !x.IsZero() {
			var inv, prod Fp12
			inv.Inverse(&x)
			prod.Mul(&x, &inv)
			if !prod.IsOne() {
				t.Fatal("fp12 inverse")
			}
		}
	}
}

func TestFrobeniusMatchesExp(t *testing.T) {
	p := FpModulus()
	for i := 0; i < 3; i++ {
		x := randFp12()
		var f, e Fp12
		f.Frobenius(&x)
		e.Exp(&x, p)
		if !f.Equal(&e) {
			t.Fatal("Frobenius != x^p")
		}
		var f2, e2 Fp12
		f2.FrobeniusSquare(&x)
		e2.Exp(&x, new(big.Int).Mul(p, p))
		if !f2.Equal(&e2) {
			t.Fatal("FrobeniusSquare != x^(p^2)")
		}
	}
}

func TestG1GeneratorOnCurve(t *testing.T) {
	g := G1Generator()
	if !g.IsOnCurve() {
		t.Fatal("G1 generator not on curve")
	}
	// [r]G == infinity.
	var j G1Jac
	j.scalarMulBig(&g, fr.Modulus())
	if !j.IsInfinity() {
		t.Fatal("[r]G1 != O")
	}
}

func TestG2GeneratorOnCurveAndSubgroup(t *testing.T) {
	g := G2Generator()
	if !g.IsOnCurve() {
		t.Fatal("G2 generator not on curve")
	}
	if !g.IsInSubgroup() {
		t.Fatal("[r]G2 != O")
	}
}

func TestG1GroupLaws(t *testing.T) {
	g := G1Generator()
	a := fr.NewElement(123456789)
	b := fr.NewElement(987654321)

	pa := G1ScalarMul(&g, &a)
	pb := G1ScalarMul(&g, &b)

	// [a]G + [b]G == [a+b]G
	var ab fr.Element
	ab.Add(&a, &b)
	lhs := G1Add(&pa, &pb)
	rhs := G1ScalarMul(&g, &ab)
	if !lhs.Equal(&rhs) {
		t.Fatal("G1 additive homomorphism fails")
	}

	// P + (-P) == O
	var negPa G1Affine
	negPa.Neg(&pa)
	sum := G1Add(&pa, &negPa)
	if !sum.IsInfinity() {
		t.Fatal("P + (-P) != O")
	}

	// Doubling consistency: [2]P == P + P.
	two := fr.NewElement(2)
	d1 := G1ScalarMul(&pa, &two)
	d2 := G1Add(&pa, &pa)
	if !d1.Equal(&d2) {
		t.Fatal("[2]P != P+P")
	}

	// Scalar mult result stays on curve.
	if !pa.IsOnCurve() {
		t.Fatal("scalar mult left the curve")
	}
}

func TestG2GroupLaws(t *testing.T) {
	g := G2Generator()
	a := fr.NewElement(31415926)
	b := fr.NewElement(27182818)

	pa := G2ScalarMul(&g, &a)
	pb := G2ScalarMul(&g, &b)
	var ab fr.Element
	ab.Add(&a, &b)
	lhs := G2Add(&pa, &pb)
	rhs := G2ScalarMul(&g, &ab)
	if !lhs.Equal(&rhs) {
		t.Fatal("G2 additive homomorphism fails")
	}
	if !pa.IsOnCurve() {
		t.Fatal("G2 scalar mult left the curve")
	}
}

func TestG1SerializationRoundTrip(t *testing.T) {
	g := G1Generator()
	s := fr.MustRandom()
	p := G1ScalarMul(&g, &s)
	b := p.Bytes()
	back, err := G1FromBytes(b[:])
	if err != nil {
		t.Fatalf("G1FromBytes: %v", err)
	}
	if !back.Equal(&p) {
		t.Fatal("round trip mismatch")
	}
	// Corrupt a byte: either decoding fails or the point is off-curve.
	b[5] ^= 0xff
	if _, err := G1FromBytes(b[:]); err == nil {
		t.Fatal("accepted corrupted point")
	}
	if _, err := G1FromBytes(b[:10]); err == nil {
		t.Fatal("accepted wrong length")
	}
}

// TestPairingBilinearity is the decisive correctness check for the whole
// pairing stack: e([a]P, [b]Q) == e(P, Q)^(ab) for random a, b.
func TestPairingBilinearity(t *testing.T) {
	if testing.Short() {
		t.Skip("pairing test skipped in -short mode")
	}
	g1 := G1Generator()
	g2 := G2Generator()

	base := Pair(&g1, &g2)
	if base.IsOne() {
		t.Fatal("e(G1, G2) == 1: pairing degenerate")
	}

	a := fr.NewElement(7)
	b := fr.NewElement(13)
	pa := G1ScalarMul(&g1, &a)
	qb := G2ScalarMul(&g2, &b)

	lhs := Pair(&pa, &qb)
	var ab fr.Element
	ab.Mul(&a, &b)
	var rhs Fp12
	rhs.Exp(&base, ab.BigInt())
	if !lhs.Equal(&rhs) {
		t.Fatal("bilinearity fails: e([a]P,[b]Q) != e(P,Q)^(ab)")
	}

	// Left-linearity with a random point addition.
	c := fr.NewElement(29)
	pc := G1ScalarMul(&g1, &c)
	sum := G1Add(&pa, &pc)
	l := Pair(&sum, &g2)
	e1 := Pair(&pa, &g2)
	e2 := Pair(&pc, &g2)
	var r Fp12
	r.Mul(&e1, &e2)
	if !l.Equal(&r) {
		t.Fatal("e(P1+P2, Q) != e(P1,Q)e(P2,Q)")
	}
}

func TestPairingGTOrder(t *testing.T) {
	if testing.Short() {
		t.Skip("pairing test skipped in -short mode")
	}
	g1 := G1Generator()
	g2 := G2Generator()
	e := Pair(&g1, &g2)
	var er Fp12
	er.Exp(&e, fr.Modulus())
	if !er.IsOne() {
		t.Fatal("e(G1,G2)^r != 1: target not in GT")
	}
}

func TestPairingInfinity(t *testing.T) {
	g1 := G1Generator()
	g2 := G2Generator()
	var inf1 G1Affine
	var inf2 G2Affine
	e1 := Pair(&inf1, &g2)
	e2 := Pair(&g1, &inf2)
	if !e1.IsOne() || !e2.IsOne() {
		t.Fatal("pairing with infinity should be 1")
	}
}

func TestPairingCheck(t *testing.T) {
	if testing.Short() {
		t.Skip("pairing test skipped in -short mode")
	}
	g1 := G1Generator()
	g2 := G2Generator()
	a := fr.NewElement(42)

	// e([a]G1, G2) * e(-G1, [a]G2) == 1
	pa := G1ScalarMul(&g1, &a)
	qa := G2ScalarMul(&g2, &a)
	var negG1 G1Affine
	negG1.Neg(&g1)
	ok, err := PairingCheck([]G1Affine{pa, negG1}, []G2Affine{g2, qa})
	if err != nil {
		t.Fatal(err)
	}
	if !ok {
		t.Fatal("valid pairing product rejected")
	}

	// A wrong relation must fail.
	b := fr.NewElement(43)
	qb := G2ScalarMul(&g2, &b)
	ok, err = PairingCheck([]G1Affine{pa, negG1}, []G2Affine{g2, qb})
	if err != nil {
		t.Fatal(err)
	}
	if ok {
		t.Fatal("invalid pairing product accepted")
	}

	if _, err := PairingCheck([]G1Affine{pa}, nil); err == nil {
		t.Fatal("length mismatch not reported")
	}
}

func TestMSMMatchesNaive(t *testing.T) {
	g := G1Generator()
	for _, n := range []int{0, 1, 5, 33, 100, 300} {
		points := make([]G1Affine, n)
		scalars := make([]fr.Element, n)
		var want G1Jac
		want.SetInfinity()
		for i := 0; i < n; i++ {
			s := fr.NewElement(uint64(i*i + 1))
			points[i] = G1ScalarMul(&g, &s)
			scalars[i] = fr.NewElement(uint64(7*i + 3))
			var term G1Jac
			term.ScalarMul(&points[i], &scalars[i])
			want.AddAssign(&term)
		}
		var wantAff G1Affine
		wantAff.FromJacobian(&want)
		got, err := G1MSM(points, scalars)
		if err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if !got.Equal(&wantAff) {
			t.Fatalf("n=%d: msm mismatch", n)
		}
	}
	if _, err := G1MSM(make([]G1Affine, 2), make([]fr.Element, 3)); err == nil {
		t.Fatal("length mismatch not reported")
	}
}

func TestMSMRandomScalars(t *testing.T) {
	g := G1Generator()
	n := 128
	points := make([]G1Affine, n)
	scalars := make([]fr.Element, n)
	var want G1Jac
	want.SetInfinity()
	for i := 0; i < n; i++ {
		s := fr.MustRandom()
		points[i] = G1ScalarMul(&g, &s)
		scalars[i] = fr.MustRandom()
		var term G1Jac
		term.ScalarMul(&points[i], &scalars[i])
		want.AddAssign(&term)
	}
	var wantAff G1Affine
	wantAff.FromJacobian(&want)
	got, err := G1MSM(points, scalars)
	if err != nil {
		t.Fatal(err)
	}
	if !got.Equal(&wantAff) {
		t.Fatal("msm with random scalars mismatch")
	}
}

func TestQuickG1ScalarDistributes(t *testing.T) {
	g := G1Generator()
	prop := func(a, b uint32) bool {
		ea, eb := fr.NewElement(uint64(a)), fr.NewElement(uint64(b))
		var sum fr.Element
		sum.Add(&ea, &eb)
		lhs := G1ScalarMul(&g, &sum)
		pa := G1ScalarMul(&g, &ea)
		pb := G1ScalarMul(&g, &eb)
		rhs := G1Add(&pa, &pb)
		return lhs.Equal(&rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 10}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkPairing(b *testing.B) {
	g1 := G1Generator()
	g2 := G2Generator()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Pair(&g1, &g2)
	}
}

func BenchmarkG1ScalarMul(b *testing.B) {
	g := G1Generator()
	s := fr.MustRandom()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		G1ScalarMul(&g, &s)
	}
}

func BenchmarkMSM(b *testing.B) {
	g := G1Generator()
	for _, n := range []int{256, 1024, 4096} {
		points := make([]G1Affine, n)
		scalars := make([]fr.Element, n)
		base := g
		for i := 0; i < n; i++ {
			points[i] = base
			base = G1Add(&base, &g)
			scalars[i] = fr.NewElement(uint64(i)*0x9e3779b97f4a7c15 + 1)
		}
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := G1MSM(points, scalars); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func TestQuickMSMLinearity(t *testing.T) {
	// MSM(points, a·s) == [a]·MSM(points, s) for a scalar a — linearity of
	// the multi-scalar multiplication as a whole.
	g := G1Generator()
	points := make([]G1Affine, 40)
	base := g
	for i := range points {
		points[i] = base
		base = G1Add(&base, &g)
	}
	prop := func(a uint32, seed uint32) bool {
		scalars := make([]fr.Element, len(points))
		s := uint64(seed) + 1
		for i := range scalars {
			s = s*6364136223846793005 + 1442695040888963407
			scalars[i] = fr.NewElement(s >> 8)
		}
		ae := fr.NewElement(uint64(a) + 1)
		scaled := make([]fr.Element, len(scalars))
		for i := range scalars {
			scaled[i].Mul(&scalars[i], &ae)
		}
		lhs, err := G1MSM(points, scaled)
		if err != nil {
			return false
		}
		base, err := G1MSM(points, scalars)
		if err != nil {
			return false
		}
		rhs := G1ScalarMul(&base, &ae)
		return lhs.Equal(&rhs)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 5}); err != nil {
		t.Fatal(err)
	}
}

func TestG2SerializationViaFp2Coords(t *testing.T) {
	// G2 points survive coordinate-wise reconstruction (the encoding the
	// SRS serializer uses).
	g := G2Generator()
	s := fr.NewElement(987654321)
	p := G2ScalarMul(&g, &s)
	q := G2Affine{X: p.X, Y: p.Y}
	if !q.IsOnCurve() || !q.Equal(&p) {
		t.Fatal("G2 coordinate round trip failed")
	}
}
