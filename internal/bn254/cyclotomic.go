package bn254

import (
	"math/big"
	"sync"
)

// After the easy part of the final exponentiation, the result lies in the
// cyclotomic subgroup GΦ₁₂(p) = {x ∈ Fp12 : x^(p⁴-p²+1) = 1}. Two facts
// make the hard part much cheaper there:
//
//   - x^(p⁶+1) = 1, so the inverse is the (free) Fp6-conjugate, which
//     unlocks signed-digit (NAF) exponentiation; and
//   - squaring decomposes over three Fp4 sub-towers (Granger–Scott,
//     eprint 2009/565 §3.2), costing 9 Fp2 squarings instead of the
//     18 Fp2 multiplies of a generic Fp12 squaring.
//
// Correctness of CyclotomicSquare against the generic Square, and of the
// NAF exponentiation against the generic Exp, is pinned by tests on
// easy-part outputs.

// CyclotomicSquare sets z = x² for x in the cyclotomic subgroup GΦ₁₂(p)
// and returns z. The result is undefined for x outside the subgroup.
//
// With coordinates x = Σ aᵢ·wⁱ over Fp2 (a0=C0.B0, a1=C1.B0, a2=C0.B1,
// a3=C1.B1, a4=C0.B2, a5=C1.B2), the three Fp4 pairs are (a0,a3), (a1,a4)
// and (a2,a5); for each pair (g,h), g² + ξ·h² and 2gh feed the compressed
// squaring formulas.
func (z *Fp12) CyclotomicSquare(x *Fp12) *Fp12 {
	// Pair (a0, a3): A = a3² , B = a0² , tA = 2·a0·a3
	var t0, t1, t2, t3, t4, t5, t6, t7, t8 Fp2
	t0.Square(&x.C1.B1)
	t1.Square(&x.C0.B0)
	t6.Add(&x.C1.B1, &x.C0.B0)
	t6.Square(&t6)
	t6.Sub(&t6, &t0)
	t6.Sub(&t6, &t1) // 2·a0·a3

	// Pair (a4, a1): C = a4², D = a1², tB = 2·a4·a1
	t2.Square(&x.C0.B2)
	t3.Square(&x.C1.B0)
	t7.Add(&x.C0.B2, &x.C1.B0)
	t7.Square(&t7)
	t7.Sub(&t7, &t2)
	t7.Sub(&t7, &t3) // 2·a4·a1

	// Pair (a5, a2): E = a5², F = a2², tC = 2·a5·a2·ξ
	t4.Square(&x.C1.B2)
	t5.Square(&x.C0.B1)
	t8.Add(&x.C1.B2, &x.C0.B1)
	t8.Square(&t8)
	t8.Sub(&t8, &t4)
	t8.Sub(&t8, &t5)
	t8.MulByNonResidue(&t8) // 2·a5·a2·ξ

	t0.MulByNonResidue(&t0)
	t0.Add(&t0, &t1) // ξ·a3² + a0²
	t2.MulByNonResidue(&t2)
	t2.Add(&t2, &t3) // ξ·a4² + a1²
	t4.MulByNonResidue(&t4)
	t4.Add(&t4, &t5) // ξ·a5² + a2²

	// zᵢ = 3·tᵢ - 2·aᵢ on the even part, 3·tᵢ + 2·aᵢ on the odd part.
	var u Fp2
	u.Sub(&t0, &x.C0.B0)
	u.Double(&u)
	z.C0.B0.Add(&u, &t0)

	u.Sub(&t2, &x.C0.B1)
	u.Double(&u)
	z.C0.B1.Add(&u, &t2)

	u.Sub(&t4, &x.C0.B2)
	u.Double(&u)
	z.C0.B2.Add(&u, &t4)

	u.Add(&t8, &x.C1.B0)
	u.Double(&u)
	z.C1.B0.Add(&u, &t8)

	u.Add(&t6, &x.C1.B1)
	u.Double(&u)
	z.C1.B1.Add(&u, &t6)

	u.Add(&t7, &x.C1.B2)
	u.Double(&u)
	z.C1.B2.Add(&u, &t7)
	return z
}

// nafDigits returns the non-adjacent form of e, least significant digit
// first. Each digit is in {-1, 0, 1} and no two adjacent digits are both
// nonzero, so roughly 1/3 of digits trigger a multiply (versus 1/2 for
// plain binary).
func nafDigits(e *big.Int) []int8 {
	n := new(big.Int).Set(e)
	three := big.NewInt(3)
	var out []int8
	for n.Sign() > 0 {
		if n.Bit(0) == 1 {
			// d = 2 - (n mod 4), i.e. ±1 chosen so (n - d) ≡ 0 mod 4.
			m := new(big.Int).And(n, three)
			if m.Cmp(big.NewInt(1)) == 0 {
				out = append(out, 1)
				n.Sub(n, big.NewInt(1))
			} else {
				out = append(out, -1)
				n.Add(n, big.NewInt(1))
			}
		} else {
			out = append(out, 0)
		}
		n.Rsh(n, 1)
	}
	return out
}

// hardExpNAF caches the NAF of the hard-part exponent (p⁴-p²+1)/r.
var hardExpNAF = sync.OnceValue(func() []int8 {
	return nafDigits(hardExponent())
})

// tNAF caches the NAF digits of the BN parameter t.
var tNAF = sync.OnceValue(func() []int8 {
	return nafDigits(new(big.Int).SetUint64(4965661367192848881))
})

// expByT sets z = x^t (the 63-bit BN parameter) for cyclotomic x.
func (z *Fp12) expByT(x *Fp12) *Fp12 { return z.expCyclotomic(x, tNAF()) }

// hardPart raises a cyclotomic element to (p⁴-p²+1)/r using the
// Devegili–Scott–Dahab decomposition: writing the exponent modulo the
// subgroup order p⁴-p²+1 as
//
//	(p+p²+p³) - 2 + 6·t²p² - 12·tp - 18·(t+t²p) - 30·t² - 36·(t³+t³p)
//
// only three exponentiations by the 63-bit t remain (everything else is a
// Frobenius, a conjugate, or one of the ~13 multiplies of the Olivos
// vector-addition chain), versus a 762-bit generic exponentiation. The two
// exponents agree modulo the cyclotomic subgroup order — an identity
// checked against the generic path by tests — so the result is
// bit-identical to f^((p⁴-p²+1)/r).
func hardPart(f *Fp12) Fp12 {
	var fu, fu2, fu3 Fp12
	fu.expByT(f)
	fu2.expByT(&fu)
	fu3.expByT(&fu2)

	// y0 = f^p · f^(p²) · f^(p³), y1 = f⁻¹, y2 = (f^(t²))^(p²),
	// y3 = ((f^t)^p)⁻¹, y4 = (f^t · (f^(t²))^p)⁻¹, y5 = (f^(t²))⁻¹,
	// y6 = (f^(t³) · (f^(t³))^p)⁻¹; inverses are conjugates.
	var y0, y1, y2, y3, y4, y5, y6, tmp Fp12
	y0.Frobenius(f)
	tmp.FrobeniusSquare(f)
	y0.Mul(&y0, &tmp)
	tmp.Frobenius(&tmp)
	y0.Mul(&y0, &tmp)
	y1.Conjugate(f)
	y2.FrobeniusSquare(&fu2)
	y3.Frobenius(&fu)
	y3.Conjugate(&y3)
	y4.Frobenius(&fu2)
	y4.Mul(&y4, &fu)
	y4.Conjugate(&y4)
	y5.Conjugate(&fu2)
	y6.Frobenius(&fu3)
	y6.Mul(&y6, &fu3)
	y6.Conjugate(&y6)

	// Olivos chain for y0 · y1² · y2⁶ · y3¹² · y4¹⁸ · y5³⁰ · y6³⁶.
	var t0, t1 Fp12
	t0.CyclotomicSquare(&y6)
	t0.Mul(&t0, &y4)
	t0.Mul(&t0, &y5)
	t1.Mul(&y3, &y5)
	t1.Mul(&t1, &t0)
	t0.Mul(&t0, &y2)
	t1.CyclotomicSquare(&t1)
	t1.Mul(&t1, &t0)
	t1.CyclotomicSquare(&t1)
	t0.Mul(&t1, &y1)
	t1.Mul(&t1, &y0)
	t0.CyclotomicSquare(&t0)
	t0.Mul(&t0, &t1)
	return t0
}

// expCyclotomic sets z = x^e for x in the cyclotomic subgroup, using NAF
// digits with the conjugate as inverse and cyclotomic squarings.
func (z *Fp12) expCyclotomic(x *Fp12, digits []int8) *Fp12 {
	var xInv Fp12
	xInv.Conjugate(x)
	res := fp12One()
	base := *x
	for i := len(digits) - 1; i >= 0; i-- {
		res.CyclotomicSquare(&res)
		switch digits[i] {
		case 1:
			res.Mul(&res, &base)
		case -1:
			res.Mul(&res, &xInv)
		}
	}
	*z = res
	return z
}
