# Developer entry points. `make check` is the full pre-merge gate: it runs
# vet, a full build, the complete test suite, and the race detector over
# the concurrency-bearing packages (the parallel FFT/MSM/prover hot paths).

GO ?= go

# Packages that spawn worker pools or serve concurrent clients; these get
# the race detector. contracts is here for the seal-time batch-verification
# path: the block producer marks proofs pre-verified concurrently with
# contract execution consuming the marks.
RACE_PKGS = ./internal/poly/... ./internal/bn254/... ./internal/plonk/... ./internal/kzg/... \
	./internal/chain/... ./internal/node/... ./internal/indexer/... ./internal/contracts/...

.PHONY: check vet build test race bench bench-verify node-demo

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Package-level prover-stack benchmarks (Domain.FFT, G1MSM, kzg.Commit,
# plonk.Prove at 2^10..2^16); see EXPERIMENTS.md for recorded trajectories.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkFFT$$|BenchmarkG1MSM$$|BenchmarkCommit$$|BenchmarkProve$$' -benchmem \
		./internal/poly/ ./internal/bn254/ ./internal/kzg/ ./internal/plonk/

# Verification-engine benchmarks: the pairing check naive/sparse/precomp,
# single-proof plonk.Verify, and BatchVerify at N = 1, 4, 16, 64 (watch
# ns/proof flatten); see EXPERIMENTS.md §Fig. 7 for recorded numbers.
bench-verify:
	$(GO) test -run='^$$' -bench='BenchmarkPairingCheck$$|BenchmarkVerify$$|BenchmarkBatchVerify$$' \
		./internal/bn254/ ./internal/plonk/

# Boot the node daemon in-process and drive 100 concurrent clients through
# full exchange lifecycles over HTTP JSON-RPC; prints tx/s and p50/p99.
node-demo:
	$(GO) run ./cmd/zkdet-node load -clients 100
