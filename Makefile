# Developer entry points. `make check` is the full pre-merge gate: it runs
# vet, a full build, the complete test suite, and the race detector over
# the concurrency-bearing packages (the parallel FFT/MSM/prover hot paths).

GO ?= go

# Packages that spawn worker pools; these get the race detector.
RACE_PKGS = ./internal/poly/... ./internal/bn254/... ./internal/plonk/... ./internal/kzg/...

.PHONY: check vet build test race bench

check: vet build test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race $(RACE_PKGS)

# Package-level prover-stack benchmarks (Domain.FFT, G1MSM, kzg.Commit,
# plonk.Prove at 2^10..2^16); see EXPERIMENTS.md for recorded trajectories.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkFFT$$|BenchmarkG1MSM$$|BenchmarkCommit$$|BenchmarkProve$$' -benchmem \
		./internal/poly/ ./internal/bn254/ ./internal/kzg/ ./internal/plonk/
