# Developer entry points. `make check` is the full pre-merge gate: it runs
# vet, a full build, the repo's own static-analysis suite (zkdet-lint), the
# complete test suite, and the race detector over the concurrency-bearing
# packages (the parallel FFT/MSM/prover hot paths).

GO ?= go

# Packages that spawn worker pools or serve concurrent clients; these get
# the race detector. contracts is here for the seal-time batch-verification
# path: the block producer marks proofs pre-verified concurrently with
# contract execution consuming the marks. storage/core/zkdet-node joined
# once their lock annotations landed: the DHT repair path, the circuit-key
# cache, and the JSON-RPC daemon all serve concurrent callers.
# internal/chain/... includes internal/chain/exec (the parallel batch
# scheduler/commit-log) and the engine's bit-identity property tests.
RACE_PKGS = ./internal/poly/... ./internal/bn254/... ./internal/plonk/... ./internal/kzg/... \
	./internal/chain/... ./internal/node/... ./internal/indexer/... ./internal/contracts/... \
	./internal/storage/... ./internal/core/... ./internal/p2p/... ./cmd/zkdet-node/... \
	./internal/wal/... ./internal/snapshot/... ./internal/ct/...

.PHONY: check vet build lint audit test race fuzz-smoke bench bench-verify bench-p2p bench-exec bench-wal node-demo cluster-demo cluster-demo-durable

check: vet build lint audit test race

vet:
	$(GO) vet ./...

build:
	$(GO) build ./...

# zkdet-lint is the repo-specific analyzer suite (cryptocompare,
# errcompare, secretscope, gaspurity, lockguard, panicfree, detreplay),
# stdlib-only, defined in cmd/zkdet-lint. Non-zero exit on any finding;
# suppressions require a written justification (see DESIGN.md §9, §16).
lint:
	$(GO) run ./cmd/zkdet-lint ./...

# The circuit soundness auditor (DESIGN.md §16): audits the constraint
# system of every circuit in internal/circuit/audit/registry for
# unconstrained wires, dead/duplicate gates, broken range checks, open
# custom-gate runs and unsatisfied gates, then runs the auditor's own unit
# and mutation-kill tests (every registered circuit must flag ≥95% of
# single-gate-deletion mutants; the clean baselines must stay at zero
# findings).
audit:
	$(GO) run ./cmd/zkdet-lint -audit
	$(GO) test ./internal/circuit/audit/...

test:
	$(GO) test ./...

# Proving under the race detector is 5-10x slower than native (internal/core
# re-proves full exchange lifecycles), so the default 10m per-package test
# timeout is not enough; raise it rather than thin out coverage.
race:
	$(GO) test -race -timeout=30m $(RACE_PKGS)

# Native Go fuzzing, smoke-length: 10s per target over the byte-level
# attack surfaces (field-element decoding, transcript challenge
# derivation). CI runs this; `go test -fuzz` with a longer -fuzztime digs
# deeper locally.
fuzz-smoke:
	$(GO) test -run='^$$' -fuzz='^FuzzFromBytesRoundTrip$$' -fuzztime=10s ./internal/fr/
	$(GO) test -run='^$$' -fuzz='^FuzzSetBytesCanonical$$' -fuzztime=10s ./internal/fr/
	$(GO) test -run='^$$' -fuzz='^FuzzTranscriptChallenge$$' -fuzztime=10s ./internal/transcript/
	$(GO) test -run='^$$' -fuzz='^FuzzTornReplay$$' -fuzztime=10s ./internal/wal/
	$(GO) test -run='^$$' -fuzz='^FuzzSnapshotDecode$$' -fuzztime=10s ./internal/snapshot/
	$(GO) test -run='^$$' -fuzz='^FuzzProofFromBytes$$' -fuzztime=10s ./internal/plonk/
	$(GO) test -run='^$$' -fuzz='^FuzzLogUpWitness$$' -fuzztime=10s ./internal/plonk/
	$(GO) test -run='^$$' -fuzz='^FuzzCommitmentDecode$$' -fuzztime=10s ./internal/ct/
	$(GO) test -run='^$$' -fuzz='^FuzzCTProofDecode$$' -fuzztime=10s ./internal/ct/

# Package-level prover-stack benchmarks (Domain.FFT, G1MSM, kzg.Commit,
# plonk.Prove at 2^10..2^16); see EXPERIMENTS.md for recorded trajectories.
bench:
	$(GO) test -run='^$$' -bench='BenchmarkFFT$$|BenchmarkG1MSM$$|BenchmarkCommit$$|BenchmarkProve$$' -benchmem \
		./internal/poly/ ./internal/bn254/ ./internal/kzg/ ./internal/plonk/

# Verification-engine benchmarks: the pairing check naive/sparse/precomp,
# single-proof plonk.Verify, and BatchVerify at N = 1, 4, 16, 64 (watch
# ns/proof flatten); see EXPERIMENTS.md §Fig. 7 for recorded numbers.
bench-verify:
	$(GO) test -run='^$$' -bench='BenchmarkPairingCheck$$|BenchmarkVerify$$|BenchmarkBatchVerify$$' \
		./internal/bn254/ ./internal/plonk/

# Network-layer benchmarks: gossip propagation latency vs fanout and
# headers-first sync time vs chain length, on the in-memory SimNet; see
# EXPERIMENTS.md §Network layer for recorded numbers.
bench-p2p:
	$(GO) test -run='^$$' -bench='BenchmarkGossipPropagation$$|BenchmarkChainSync$$' -benchtime=10x \
		./internal/bench/

# Execution-layer benchmark: sealed tx/s for the parallel batch engine vs
# the serial reference at 1/2/4/8 workers and 100/1k/10k clients on a
# conflict-light DataNFT workload; see EXPERIMENTS.md §Execution layer for
# recorded numbers. `go run ./cmd/zkdet-bench -exec` prints the same sweep
# as a table with speedups and engine counters.
bench-exec:
	$(GO) test -run='^$$' -bench='BenchmarkExecThroughput$$' -benchtime=1x ./internal/bench/

# Durability benchmarks: raw WAL append throughput by sync policy, durable
# vs in-memory sealed tx/s (the ≤2x acceptance criterion at the default
# group commit), and crash-recovery time vs chain length; see EXPERIMENTS.md
# §Durability layer for recorded numbers. `go run ./cmd/zkdet-bench -wal`
# prints the same experiments as tables.
bench-wal:
	$(GO) test -run='^$$' -bench='BenchmarkWALAppend$$|BenchmarkDurableExec$$|BenchmarkRecovery$$' \
		-benchtime=1x ./internal/bench/

# Boot the node daemon in-process and drive 100 concurrent clients through
# full exchange lifecycles over HTTP JSON-RPC; prints tx/s and p50/p99.
node-demo:
	$(GO) run ./cmd/zkdet-node load -clients 100

# Seven full ZKDET replicas over the fault-injecting simulated transport:
# gossip, leader rotation, a 3|4 partition healed mid-mint, an escrow sale,
# and a cluster-wide AuditLineage check on every node.
cluster-demo:
	$(GO) run ./cmd/zkdet-cluster

# The same cluster with every member persisting to a data directory, plus a
# SIGKILL-and-restart phase: one member is killed mid-run with no shutdown
# path, rebuilt from its snapshot + WAL tail alone, and must rejoin from
# checkpoint height and serve identical AuditLineage reports.
cluster-demo-durable:
	$(GO) run ./cmd/zkdet-cluster -data-dir $$(mktemp -d)
