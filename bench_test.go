package zkdet

// One testing.B benchmark per table and figure of the paper's evaluation
// (§VI). The same measurements, with configurable scale and formatted
// side-by-side output, are available via `go run ./cmd/zkdet-bench -all`;
// EXPERIMENTS.md records the paper-vs-measured comparison.

import (
	"sync"
	"testing"

	"github.com/zkdet/zkdet/internal/apps/transformer"
	"github.com/zkdet/zkdet/internal/bench"
	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
	"github.com/zkdet/zkdet/internal/plonk"
	"github.com/zkdet/zkdet/internal/storage"
)

var benchSys = sync.OnceValue(func() *core.System {
	s, err := bench.NewSystem(1 << 13)
	if err != nil {
		panic(err)
	}
	return s
})

func benchData(n int) core.Dataset {
	d := make(core.Dataset, n)
	for i := range d {
		d[i] = fr.NewElement(uint64(i + 1))
	}
	return d
}

// BenchmarkFig5Setup measures universal SRS generation plus circuit
// preprocessing — Figure 5's series, at two scaled sizes.
func BenchmarkFig5Setup(b *testing.B) {
	for _, n := range []int{1 << 8, 1 << 10} {
		b.Run(itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.Fig5Setup([]int{n}); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkFig6ProofGen measures π_e, π_t and π_k proving time — Figure 6's
// three series.
func BenchmarkFig6ProofGen(b *testing.B) {
	sys := benchSys()
	for _, n := range []int{2, 8} {
		data := benchData(n)
		k := fr.NewElement(42)
		// Warm circuit setups outside the timed region.
		if _, _, _, _, err := sys.EncryptAndProve(data, k); err != nil {
			b.Fatal(err)
		}
		cs, os := data.Commit()
		if _, _, err := sys.ProveDuplication(data, cs, os); err != nil {
			b.Fatal(err)
		}
		b.Run("PiE/"+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, _, _, err := sys.EncryptAndProve(data, k); err != nil {
					b.Fatal(err)
				}
			}
		})
		b.Run("PiT/"+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, _, err := sys.ProveDuplication(data, cs, os); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	// π_k is data-size independent: one series entry.
	data := benchData(2)
	seller, err := core.NewSeller(sys, data, fr.NewElement(7), core.TruePredicate{})
	if err != nil {
		b.Fatal(err)
	}
	kv := fr.NewElement(99)
	hv := core.HashChallenge(kv)
	if _, _, err := seller.NegotiateKey(kv, hv); err != nil {
		b.Fatal(err)
	}
	b.Run("PiK", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, _, err := seller.NegotiateKey(kv, hv); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkFig7Verify measures ZKDET verification (flat) against the ZKCP
// baseline's input-dependent verifier — Figure 7's two series.
func BenchmarkFig7Verify(b *testing.B) {
	sys := benchSys()
	for _, n := range []int{2, 8} {
		data := benchData(n)
		st, _, _, proof, err := sys.EncryptAndProve(data, fr.NewElement(5))
		if err != nil {
			b.Fatal(err)
		}
		b.Run("ZKDET/"+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if err := sys.VerifyEncryption(st, proof); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
	for _, n := range []int{8, 64, 256} {
		b.Run("ZKCP/"+itoa(n), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				core.ZKCPVerifierCost(n)
			}
		})
	}
}

// BenchmarkTable1Processing measures the data-processing transformation
// proofs — Table I's rows, scaled.
func BenchmarkTable1Processing(b *testing.B) {
	sys := benchSys()
	b.Run("LogReg/4", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.Table1LogReg(sys, []int{4}); err != nil {
				b.Fatal(err)
			}
		}
	})
	cfg := transformer.Config{SeqLen: 2, DModel: 2, DK: 2, DFF: 2, DOut: 2}
	b.Run("Transformer/"+itoa(cfg.ParamCount()), func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			if _, err := bench.Table1Transformer(sys, []transformer.Config{cfg}); err != nil {
				b.Fatal(err)
			}
		}
	})
}

// BenchmarkTable2Gas deploys and invokes every contract operation of
// Table II, reporting gas as a custom metric.
func BenchmarkTable2Gas(b *testing.B) {
	sys := benchSys()
	rows, err := bench.Table2Gas(sys)
	if err != nil {
		b.Fatal(err)
	}
	for _, row := range rows {
		row := row
		b.Run(sanitize(row.Operation), func(b *testing.B) {
			b.ReportMetric(float64(row.Gas), "gas")
			b.ReportMetric(float64(row.PaperGas), "paper-gas")
		})
	}
}

// BenchmarkProofSize reports the constant proof size (§VI-B3).
func BenchmarkProofSize(b *testing.B) {
	b.ReportMetric(float64(plonk.ProofSize), "bytes")
}

// BenchmarkOnChainVerification measures the gas-metered on-chain verifier
// call (§VI-C2).
func BenchmarkOnChainVerification(b *testing.B) {
	sys := benchSys()
	vk, err := sys.KeyCircuitVK()
	if err != nil {
		b.Fatal(err)
	}
	data := benchData(2)
	seller, err := core.NewSeller(sys, data, fr.NewElement(3), core.TruePredicate{})
	if err != nil {
		b.Fatal(err)
	}
	kv := fr.NewElement(11)
	hv := core.HashChallenge(kv)
	st, proof, err := seller.NegotiateKey(kv, hv)
	if err != nil {
		b.Fatal(err)
	}

	c := chain.New()
	if _, err := c.Deploy("verifier", contracts.NewVerifier(vk), contracts.VerifierCodeSize); err != nil {
		b.Fatal(err)
	}
	alice := chain.AddressFromString("alice")
	args := contracts.VerifyArgs(proof, []fr.Element{st.KC, st.KeyCommitment, st.HV})
	var lastGas uint64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Submit(chain.Transaction{
			From: alice, Contract: "verifier", Method: "verify",
			Args: args, Nonce: c.NonceOf(alice),
		})
		if err != nil {
			b.Fatal(err)
		}
		if r.Err != nil {
			b.Fatal(r.Err)
		}
		lastGas = r.GasUsed
	}
	b.ReportMetric(float64(lastGas), "gas")
}

// BenchmarkCeremonyContribution measures one Powers-of-Tau contribution.
func BenchmarkCeremonyContribution(b *testing.B) {
	cer, err := kzg.NewCeremony(64)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := cer.Contribute([]byte{byte(i)}); err != nil {
			b.Fatal(err)
		}
	}
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var buf [20]byte
	i := len(buf)
	for n > 0 {
		i--
		buf[i] = byte('0' + n%10)
		n /= 10
	}
	return string(buf[i:])
}

func sanitize(s string) string {
	out := make([]rune, 0, len(s))
	for _, r := range s {
		switch {
		case r == ' ' || r == '(' || r == ')':
			out = append(out, '_')
		default:
			out = append(out, r)
		}
	}
	return string(out)
}

// BenchmarkChainThroughput measures raw transaction throughput of the chain
// substrate (mint+transfer mix) — the abstract's "high throughput despite
// large data volumes" claim rests on the chain carrying only metadata.
func BenchmarkChainThroughput(b *testing.B) {
	c := chain.New()
	if _, err := c.Deploy(contracts.DataNFTName, &contracts.DataNFT{}, contracts.DataNFTCodeSize); err != nil {
		b.Fatal(err)
	}
	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")
	uri := make([]byte, 32)
	commit := make([]byte, 64)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := c.Submit(chain.Transaction{
			From: alice, Contract: contracts.DataNFTName, Method: "mint",
			Args: contracts.EncodeArgs(uri, commit), Nonce: c.NonceOf(alice),
		})
		if err != nil || r.Err != nil {
			b.Fatal(err, r.Err)
		}
		id, _ := contracts.DecU64(r.Return)
		r, err = c.Submit(chain.Transaction{
			From: alice, Contract: contracts.DataNFTName, Method: "transfer",
			Args: contracts.EncodeArgs(contracts.U64(id), bob[:]), Nonce: c.NonceOf(alice),
		})
		if err != nil || r.Err != nil {
			b.Fatal(err, r.Err)
		}
		if i%100 == 99 {
			c.SealBlock()
		}
	}
	b.ReportMetric(float64(b.N*2)/b.Elapsed().Seconds(), "tx/s")
}

// BenchmarkStorageThroughput measures the DHT's put/get throughput for
// ciphertext blobs.
func BenchmarkStorageThroughput(b *testing.B) {
	net, err := storage.NewNetwork(16)
	if err != nil {
		b.Fatal(err)
	}
	blob := make([]byte, 32*1024)
	for i := range blob {
		blob[i] = byte(i)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		blob[0] = byte(i)
		blob[1] = byte(i >> 8)
		uri, err := net.Put("bench", blob)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := net.Get(uri); err != nil {
			b.Fatal(err)
		}
	}
	b.SetBytes(int64(2 * len(blob)))
}
