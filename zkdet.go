// Package zkdet is the public API of the ZKDET reproduction: a traceable
// and privacy-preserving data exchange scheme based on non-fungible tokens
// and zero-knowledge proofs (Song, Gao, Song, Xiao — ICDCS 2022).
//
// A ZKDET deployment combines four layers, all implemented in this module
// from scratch on the Go standard library:
//
//   - a Plonk zkSNARK over BN254 with KZG commitments (internal/plonk,
//     internal/kzg, internal/bn254) using the circuit-friendly MiMC cipher
//     and Poseidon hash (internal/mimc, internal/poseidon);
//   - a blockchain substrate with EVM-calibrated gas metering and the
//     DataNFT / clock-auction / escrow / verifier contracts
//     (internal/chain, internal/contracts);
//   - an IPFS-like content-addressed storage network (internal/storage);
//   - the ZKDET protocols themselves: proofs of encryption π_e, proofs of
//     transformation π_t (duplication, aggregation, partition, processing),
//     the key-secure two-phase exchange (π_p, π_k) and the ZKCP baseline
//     (internal/core).
//
// # Quickstart
//
//	sys, _ := zkdet.NewSystem(1 << 12)          // universal setup
//	m, _, _ := zkdet.NewMarketplace(sys, 8)     // chain + storage + contracts
//	alice := zkdet.AddressFromString("alice")
//	data := zkdet.EncodeBytes([]byte("dataset"))
//	asset, _ := m.MintAsset(alice, "alice", data, zkdet.RandomKey())
//	// asset.TokenID is live on-chain; the encrypted data sits in storage.
//
// See examples/ for complete programs: quickstart, a full marketplace
// exchange, verifiable model training, and provenance tracing.
package zkdet

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/kzg"
)

// Re-exported core types. The underlying packages carry the full
// documentation; these aliases are the stable public surface.
type (
	// System holds the universal SRS and per-circuit preprocessing.
	System = core.System
	// Marketplace is a full deployment: chain, storage, contracts, proofs.
	Marketplace = core.Marketplace
	// Dataset is a data asset's plaintext (vector of field elements).
	Dataset = core.Dataset
	// Ciphertext is an encrypted dataset with its CTR nonce.
	Ciphertext = core.Ciphertext
	// Asset is an owner's handle to a minted data asset.
	Asset = core.Asset
	// TransformResult is the outcome of an on-chain transformation.
	TransformResult = core.TransformResult
	// TransformProof is a proof of transformation π_t.
	TransformProof = core.TransformProof
	// ProofChain is a verifiable sequence of transformations.
	ProofChain = core.ProofChain
	// Processor is a pluggable data-processing transformation f.
	Processor = core.Processor
	// Predicate is a public property φ proven about exchanged data.
	Predicate = core.Predicate
	// Seller, Buyer and Arbiter are the §IV-F exchange roles.
	Seller = core.Seller
	// Buyer is the exchange counterparty validating and paying for data.
	Buyer = core.Buyer
	// Arbiter is the off-chain reference arbiter 𝒥.
	Arbiter = core.Arbiter
	// Listing is the public face of a dataset offered for sale.
	Listing = core.Listing
	// Address identifies a chain account.
	Address = chain.Address
	// DeployGas reports contract deployment costs (Table II).
	DeployGas = core.DeployGas
	// Scalar is an element of the proof system's scalar field.
	Scalar = fr.Element
	// ProofRegistry is the public off-chain proof store.
	ProofRegistry = core.ProofRegistry
	// TokenProofs bundles one token's published proofs.
	TokenProofs = core.TokenProofs
	// AuditReport summarizes a lineage audit.
	AuditReport = core.AuditReport
)

// Predicate implementations (§III-C's φ).
type (
	// TruePredicate accepts every dataset.
	TruePredicate = core.TruePredicate
	// RangePredicate bounds every entry below 2^Bits.
	RangePredicate = core.RangePredicate
	// SumPredicate fixes the dataset's element sum.
	SumPredicate = core.SumPredicate
	// NonZeroPredicate forbids missing (zero) values.
	NonZeroPredicate = core.NonZeroPredicate
)

// NewSystem generates a fresh proving system whose SRS supports circuits of
// up to maxConstraints gates. The setup secret is sampled from
// crypto/rand and discarded (see kzg.Ceremony for the multi-party variant).
func NewSystem(maxConstraints int) (*System, error) {
	n := 64
	for n < maxConstraints {
		n <<= 1
	}
	srs, err := kzg.Setup(4*n + 16)
	if err != nil {
		return nil, fmt.Errorf("zkdet: %w", err)
	}
	return core.NewSystem(srs), nil
}

// NewSystemFromCeremony builds a proving system from a completed
// Powers-of-Tau ceremony, verifying its transcript first.
func NewSystemFromCeremony(c *kzg.Ceremony) (*System, error) {
	srs, err := c.SRS()
	if err != nil {
		return nil, fmt.Errorf("zkdet: %w", err)
	}
	if err := kzg.VerifyChain(c.Contributions(), srs); err != nil {
		return nil, fmt.Errorf("zkdet: %w", err)
	}
	return core.NewSystem(srs), nil
}

// NewMarketplace deploys the contract suite on a fresh simulated chain with
// a storage network of the given size.
func NewMarketplace(sys *System, storageNodes int) (*Marketplace, DeployGas, error) {
	return core.NewMarketplace(sys, storageNodes)
}

// EncodeBytes packs raw bytes into a Dataset.
func EncodeBytes(data []byte) Dataset { return core.EncodeBytes(data) }

// DecodeBytes unpacks a Dataset produced by EncodeBytes.
func DecodeBytes(d Dataset) ([]byte, error) { return core.DecodeBytes(d) }

// RandomKey draws a fresh encryption key.
func RandomKey() Scalar { return fr.MustRandom() }

// NewScalar converts a uint64 into a field element.
func NewScalar(v uint64) Scalar { return fr.NewElement(v) }

// AddressFromString derives a deterministic account address from a label.
func AddressFromString(s string) Address { return chain.AddressFromString(s) }

// NewProofRegistry returns an empty public proof store for use with
// Marketplace.AuditLineage.
func NewProofRegistry() *ProofRegistry { return core.NewProofRegistry() }
