module github.com/zkdet/zkdet

go 1.22
