// Command zkdet-ceremony runs and verifies a Powers-of-Tau ceremony and
// manages SRS files — the operational side of ZKDET's universal setup.
//
// Usage:
//
//	zkdet-ceremony -new -size 4096 -parties alice,bob,carol -out srs.bin
//	zkdet-ceremony -verify srs.bin
//
// The output file is the structurally-validated format of kzg.SRSFromBytes:
// loading re-checks the power chain with a batched pairing check, so a
// corrupted or tampered file can never be used for proving.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"strings"

	"github.com/zkdet/zkdet/internal/kzg"
)

func main() {
	log.SetFlags(0)
	var (
		newFlag    = flag.Bool("new", false, "run a new ceremony")
		size       = flag.Int("size", 4096, "number of SRS powers (max provable degree)")
		parties    = flag.String("parties", "party-1,party-2,party-3", "comma-separated contributor labels")
		out        = flag.String("out", "srs.bin", "output file for the final SRS")
		verifyFlag = flag.String("verify", "", "verify an existing SRS file and exit")
	)
	flag.Parse()

	switch {
	case *verifyFlag != "":
		if err := verifySRSFile(*verifyFlag); err != nil {
			log.Fatalf("zkdet-ceremony: %v", err)
		}
	case *newFlag:
		if err := runCeremony(*size, strings.Split(*parties, ","), *out); err != nil {
			log.Fatalf("zkdet-ceremony: %v", err)
		}
	default:
		flag.Usage()
		os.Exit(2)
	}
}

func runCeremony(size int, parties []string, out string) error {
	if len(parties) == 0 || (len(parties) == 1 && parties[0] == "") {
		return fmt.Errorf("need at least one contributor")
	}
	fmt.Printf("• starting ceremony: %d powers, %d contributors\n", size, len(parties))
	cer, err := kzg.NewCeremony(size)
	if err != nil {
		return err
	}
	for _, p := range parties {
		p = strings.TrimSpace(p)
		if err := cer.Contribute([]byte(p)); err != nil {
			return fmt.Errorf("contribution %q: %w", p, err)
		}
		fmt.Printf("• %s contributed\n", p)
	}
	srs, err := cer.SRS()
	if err != nil {
		return err
	}
	if err := kzg.VerifyChain(cer.Contributions(), srs); err != nil {
		return fmt.Errorf("chain verification: %w", err)
	}
	fmt.Printf("• contribution chain verified (%d updates)\n", len(cer.Contributions()))
	data := srs.Bytes()
	if err := os.WriteFile(out, data, 0o644); err != nil {
		return err
	}
	fmt.Printf("• SRS written to %s (%d bytes, max degree %d)\n", out, len(data), srs.MaxDegree())
	return nil
}

func verifySRSFile(path string) error {
	data, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	srs, err := kzg.SRSFromBytes(data)
	if err != nil {
		return fmt.Errorf("INVALID: %w", err)
	}
	fmt.Printf("• %s: VALID — %d G1 powers (max degree %d), power chain verified\n",
		path, len(srs.G1), srs.MaxDegree())
	return nil
}
