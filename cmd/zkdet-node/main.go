// Command zkdet-node runs a ZKDET node daemon: a simulated chain with the
// deployed contract suite, a mempool + block producer, an event/provenance
// indexer, and an HTTP JSON-RPC gateway.
//
//	zkdet-node serve -addr :8545         run the daemon
//	zkdet-node load  -clients 100        boot a daemon and hammer it over HTTP
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"os/signal"
	"syscall"
	"time"
)

func main() {
	if len(os.Args) < 2 {
		usage()
		os.Exit(2)
	}
	var err error
	switch os.Args[1] {
	case "serve":
		err = cmdServe(os.Args[2:])
	case "load":
		err = cmdLoad(os.Args[2:])
	default:
		usage()
		os.Exit(2)
	}
	if err != nil {
		fmt.Fprintln(os.Stderr, "zkdet-node:", err)
		os.Exit(1)
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, `usage:
  zkdet-node serve [-addr :8545] [-block-interval 25ms] [-max-block-txs 256] [-exec-workers 0] [-data-dir DIR] [-role archive|full] [-checkpoint-every 64]
  zkdet-node load  [-clients 100] [-addr 127.0.0.1:0] [-workload exchange|transfer] [-txs-per-client 5] [-data-dir DIR]`)
}

func nodeFlags(fs *flag.FlagSet, cfg *serverConfig) {
	fs.DurationVar(&cfg.node.BlockInterval, "block-interval", cfg.node.BlockInterval, "seal interval")
	fs.IntVar(&cfg.node.MaxBlockTxs, "max-block-txs", cfg.node.MaxBlockTxs, "max transactions per block")
	fs.IntVar(&cfg.node.MaxPoolTxs, "max-pool-txs", cfg.node.MaxPoolTxs, "mempool capacity")
	fs.IntVar(&cfg.storageNodes, "storage-nodes", cfg.storageNodes, "simulated storage network size")
	fs.IntVar(&cfg.node.ExecWorkers, "exec-workers", cfg.node.ExecWorkers, "parallel execution width for block batches (0 = machine size, 1 = serial)")
	fs.StringVar(&cfg.dataDir, "data-dir", cfg.dataDir, "durable mode: persist WAL + snapshots here and recover on restart (empty = in-memory)")
	fs.StringVar(&cfg.role, "role", cfg.role, "durable pruning role: archive (keep all history) or full (drop bodies below checkpoints)")
	fs.Uint64Var(&cfg.checkpointEvery, "checkpoint-every", cfg.checkpointEvery, "durable mode: snapshot cadence in blocks (0 = default 64)")
}

func cmdServe(args []string) error {
	fs := flag.NewFlagSet("serve", flag.ExitOnError)
	addr := fs.String("addr", ":8545", "listen address")
	cfg := defaultServerConfig()
	nodeFlags(fs, &cfg)
	if err := fs.Parse(args); err != nil {
		return err
	}

	fmt.Println("setting up proof system and deploying contracts…")
	srv, err := newServer(cfg)
	if err != nil {
		return err
	}
	defer srv.close()
	if rep := srv.recovery; rep != nil {
		fmt.Printf("recovered %s: height %d (snapshot %d + %d WAL blocks, %d blobs",
			cfg.dataDir, rep.Head, rep.SnapshotHeight, rep.BlocksReplayed, rep.BlobsReplayed)
		if rep.TornBytes > 0 {
			fmt.Printf(", %d torn bytes repaired", rep.TornBytes)
		}
		fmt.Println(")")
		for _, s := range rep.SkippedSnapshots {
			fmt.Println("  skipped corrupt snapshot:", s)
		}
	}
	bound, err := srv.listen(*addr)
	if err != nil {
		return err
	}
	fmt.Printf("zkdet-node listening on %s (JSON-RPC 2.0, POST /)\n", bound)

	sig := make(chan os.Signal, 1)
	signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
	<-sig
	fmt.Println("shutting down, sealing final block…")
	return nil
}

func cmdLoad(args []string) error {
	fs := flag.NewFlagSet("load", flag.ExitOnError)
	addr := fs.String("addr", "127.0.0.1:0", "listen address for the in-process daemon")
	clients := fs.Int("clients", 100, "concurrent exchange clients")
	workload := fs.String("workload", "exchange", "client workload: exchange (full lifecycle) or transfer (light, scales to 10k clients)")
	txPerClient := fs.Int("txs-per-client", 5, "transfers per client (transfer workload only)")
	cfg := defaultServerConfig()
	nodeFlags(fs, &cfg)
	if err := fs.Parse(args); err != nil {
		return err
	}
	if *workload != "exchange" && *workload != "transfer" {
		return fmt.Errorf("unknown workload %q (want exchange or transfer)", *workload)
	}

	fmt.Println("setting up proof system and deploying contracts…")
	srv, err := newServer(cfg)
	if err != nil {
		return err
	}
	defer srv.close()
	bound, err := srv.listen(*addr)
	if err != nil {
		return err
	}

	var report *loadReport
	if *workload == "transfer" {
		fmt.Printf("daemon on %s; launching %d clients × %d plain transfers (light workload)\n",
			bound, *clients, *txPerClient)
		report, err = runTransferLoad("http://"+bound, *clients, *txPerClient)
	} else {
		fmt.Printf("daemon on %s; proving the shared π_k…\n", bound)
		start := time.Now()
		var fx *exchangeFixture
		fx, err = buildFixture(srv.mkt.Sys)
		if err != nil {
			return err
		}
		fmt.Printf("π_k proved in %s; launching %d clients (each runs a full exchange: "+
			"faucet, publish, mint, duplicate, escrow open, settle with on-chain verification, transfer, provenance check)\n",
			time.Since(start).Round(time.Millisecond), *clients)
		report, err = runLoad("http://"+bound, fx, *clients)
	}
	if err != nil {
		return err
	}
	fmt.Println(report)
	if report.Provenance != report.Clients {
		return fmt.Errorf("provenance verification failed for %d clients", report.Clients-report.Provenance)
	}
	if *workload == "exchange" {
		fmt.Println("confidential showcase: mint a hidden-amount note, split it, open it with the auditor key…")
		if err := runConfidentialShowcase("http://" + bound); err != nil {
			return fmt.Errorf("confidential showcase: %w", err)
		}
	}
	var stats map[string]any
	if err := newRPCClient("http://"+bound).call("zkdet_stats", map[string]any{}, &stats); err == nil {
		out, _ := json.MarshalIndent(stats, "", "  ")
		fmt.Printf("server stats:\n%s\n", out)
	}
	return nil
}
