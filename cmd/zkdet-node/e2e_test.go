package main

import (
	"net/http/httptest"
	"sync"
	"testing"
	"time"

	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
)

// bootServer starts an in-process daemon behind an httptest listener.
func bootServer(t *testing.T, cfg serverConfig) (*server, *rpcClient) {
	t.Helper()
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	t.Cleanup(func() {
		ts.Close()
		srv.close()
	})
	return srv, newRPCClient(ts.URL)
}

func testCfg() serverConfig {
	cfg := defaultServerConfig()
	cfg.node.BlockInterval = 5 * time.Millisecond
	cfg.node.MaxBlockTxs = 64
	return cfg
}

func TestGatewayBasics(t *testing.T) {
	_, c := bootServer(t, testCfg())

	// Unknown method and malformed params come back as JSON-RPC errors.
	if err := c.call("zkdet_nope", map[string]any{}, nil); err == nil {
		t.Fatal("unknown method accepted")
	}
	if err := c.call("zkdet_receipt", map[string]any{"txHash": "0xzz"}, nil); err == nil {
		t.Fatal("bad hash accepted")
	}

	// Faucet then a plain value transfer through the full pipeline.
	if err := c.call("zkdet_faucet", map[string]any{"address": "alice", "amount": 10_000}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.sendWait(txParams{From: "alice", To: "bob", Value: 777})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Included || res.BlockNumber == 0 {
		t.Fatalf("not included: %+v", res)
	}

	// The receipt endpoint agrees with what sendTransaction returned.
	var rec txResult
	if err := c.call("zkdet_receipt", map[string]any{"txHash": res.TxHash}, &rec); err != nil {
		t.Fatal(err)
	}
	if rec.BlockNumber != res.BlockNumber {
		t.Fatalf("receipt block %d, send block %d", rec.BlockNumber, res.BlockNumber)
	}

	var height struct {
		Height uint64 `json:"height"`
	}
	if err := c.call("zkdet_blockNumber", map[string]any{}, &height); err != nil {
		t.Fatal(err)
	}
	if height.Height < res.BlockNumber {
		t.Fatalf("height %d < inclusion block %d", height.Height, res.BlockNumber)
	}

	// Transfers with value but no recipient are rejected at execution.
	bad, err := c.sendWait(txParams{From: "alice", Value: 5})
	if err == nil && bad.Reverted == "" {
		t.Fatal("zero-recipient transfer accepted")
	}
}

func TestGatewayStorageRoundTrip(t *testing.T) {
	_, c := bootServer(t, testCfg())
	blob := []byte("ciphertext bytes")
	var put struct {
		URI string `json:"uri"`
	}
	if err := c.call("zkdet_storagePut", map[string]any{"owner": "alice", "data": hexBytes(blob)}, &put); err != nil {
		t.Fatal(err)
	}
	var got struct {
		Data string `json:"data"`
	}
	if err := c.call("zkdet_storageGet", map[string]any{"uri": put.URI}, &got); err != nil {
		t.Fatal(err)
	}
	back, err := parseBytes(got.Data)
	if err != nil {
		t.Fatal(err)
	}
	if string(back) != string(blob) {
		t.Fatalf("storage round trip: %q", back)
	}
}

func TestGatewayEventsQuery(t *testing.T) {
	_, c := bootServer(t, testCfg())
	if err := c.call("zkdet_faucet", map[string]any{"address": "alice", "amount": 1 << 30}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.sendWait(txParams{
		From: "alice", Contract: contracts.DataNFTName, Method: "mint",
		Args: hexBytes(contracts.EncodeArgs([]byte("u"), []byte("c"))),
	})
	if err != nil {
		t.Fatal(err)
	}
	id, err := contracts.DecU64(mustParse(t, res.Return))
	if err != nil {
		t.Fatal(err)
	}
	var evs struct {
		Entries []eventOut `json:"entries"`
		Total   int        `json:"total"`
	}
	if err := c.call("zkdet_events", map[string]any{
		"contract": contracts.DataNFTName, "name": "Transfer",
		"topic": hexBytes(contracts.U64(id)),
	}, &evs); err != nil {
		t.Fatal(err)
	}
	if evs.Total != 1 || len(evs.Entries) != 1 || evs.Entries[0].TxHash != res.TxHash {
		t.Fatalf("events query: %+v", evs)
	}
}

func mustParse(t *testing.T, s string) []byte {
	t.Helper()
	b, err := parseBytes(s)
	if err != nil {
		t.Fatal(err)
	}
	return b
}

// TestE2EHundredClients is the acceptance run: ≥100 concurrent clients each
// drive a complete exchange lifecycle through the HTTP JSON-RPC gateway —
// mint, duplicate, escrow open, settle (real on-chain Plonk verification of
// the shared π_k), NFT transfer — then verify the provenance lineage the
// indexer reports against what they actually did.
func TestE2EHundredClients(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e load test")
	}
	srv, c := bootServer(t, testCfg())

	fx, err := buildFixture(srv.mkt.Sys)
	if err != nil {
		t.Fatal(err)
	}
	const clients = 100
	report, err := runLoad(c.url, fx, clients)
	if err != nil {
		t.Fatal(err)
	}
	if report.Provenance != clients {
		t.Fatalf("provenance verified for %d/%d clients", report.Provenance, clients)
	}
	const txPerClient = 5 // mint, duplicate, open, settle, transfer
	if report.Txs != clients*txPerClient {
		t.Fatalf("clients waited on %d txs, want %d", report.Txs, clients*txPerClient)
	}
	if report.P50 == 0 || report.P99 < report.P50 {
		t.Fatalf("latency percentiles: p50=%s p99=%s", report.P50, report.P99)
	}

	s := srv.node.Stats()
	if s.TxsIncluded != clients*txPerClient {
		t.Fatalf("node included %d txs, want %d", s.TxsIncluded, clients*txPerClient)
	}
	if s.PoolSize != 0 {
		t.Fatalf("pool not drained: %d", s.PoolSize)
	}
	// Every settle's π_k went through the seal-time batch verifier; none
	// were evicted.
	if s.ProofsPreverified != clients {
		t.Fatalf("ProofsPreverified = %d, want %d", s.ProofsPreverified, clients)
	}
	if s.ProofsEvicted != 0 {
		t.Fatalf("ProofsEvicted = %d, want 0", s.ProofsEvicted)
	}
	ixs := srv.ix.Stats()
	if ixs.Tokens != clients*2 {
		t.Fatalf("indexer tracked %d tokens, want %d", ixs.Tokens, clients*2)
	}
	t.Logf("e2e: %s", report)
}

// TestE2EClientsShareNode checks the gateway under mixed read/write load:
// while exchange clients run, reader goroutines hammer stats and events.
func TestE2EClientsShareNode(t *testing.T) {
	if testing.Short() {
		t.Skip("e2e load test")
	}
	srv, c := bootServer(t, testCfg())
	fx, err := buildFixture(srv.mkt.Sys)
	if err != nil {
		t.Fatal(err)
	}

	stopReaders := make(chan struct{})
	var readers sync.WaitGroup
	for i := 0; i < 4; i++ {
		readers.Add(1)
		go func() {
			defer readers.Done()
			rc := newRPCClient(c.url)
			for {
				select {
				case <-stopReaders:
					return
				default:
				}
				var stats map[string]any
				if err := rc.call("zkdet_stats", map[string]any{}, &stats); err != nil {
					t.Errorf("stats during load: %v", err)
					return
				}
				var evs struct {
					Total int `json:"total"`
				}
				if err := rc.call("zkdet_events", map[string]any{
					"contract": contracts.DataNFTName, "name": "Transfer", "limit": 5,
				}, &evs); err != nil {
					t.Errorf("events during load: %v", err)
					return
				}
			}
		}()
	}
	report, err := runLoad(c.url, fx, 16)
	close(stopReaders)
	readers.Wait()
	if err != nil {
		t.Fatal(err)
	}
	if report.Provenance != 16 {
		t.Fatalf("provenance verified for %d/16", report.Provenance)
	}
}

// TestGatewayConfidential drives the confidential-token RPC family end to
// end: enable, mint, inspect (commitment only), transfer, and auditor
// opening — including the disabled-by-default and wrong-key rejections.
func TestGatewayConfidential(t *testing.T) {
	_, c := bootServer(t, testCfg())

	for _, who := range []string{"issuer", "alice", "bob"} {
		if err := c.call("zkdet_faucet", map[string]any{"address": who, "amount": 10_000_000}, nil); err != nil {
			t.Fatal(err)
		}
	}

	// Disabled by default.
	if err := c.call("zkdet_ctMint", map[string]any{"pays": []map[string]any{{"value": 1, "to": "alice"}}}, nil); err == nil {
		t.Fatal("mint accepted before ctEnable")
	}

	ak := ct.AuditorKeyFromSecret(fr.NewElement(0x5ec7))
	pub := ak.PublicKey()
	pubB := pub.Bytes()
	if err := c.call("zkdet_ctEnable", map[string]any{
		"issuer": "issuer", "auditorPub": hexBytes(pubB[:]),
	}, nil); err != nil {
		t.Fatal(err)
	}

	type notesResult struct {
		Notes []ctNoteOut `json:"notes"`
	}
	var minted notesResult
	if err := c.call("zkdet_ctMint", map[string]any{
		"pays": []map[string]any{{"value": 1200, "to": "alice"}},
	}, &minted); err != nil {
		t.Fatal(err)
	}
	if len(minted.Notes) != 1 || minted.Notes[0].Value != 1200 || minted.Notes[0].Blinder == "" {
		t.Fatalf("mint result %+v", minted)
	}

	// The public view carries the commitment but never the amount.
	var view ctNoteOut
	if err := c.call("zkdet_ctNote", map[string]any{"id": minted.Notes[0].ID}, &view); err != nil {
		t.Fatal(err)
	}
	if view.Value != 0 || view.Blinder != "" || view.Status != "unspent" || view.Commitment == "" {
		t.Fatalf("public note view leaks: %+v", view)
	}

	var moved notesResult
	if err := c.call("zkdet_ctTransfer", map[string]any{
		"sender": "alice",
		"inputs": []map[string]any{{
			"id": minted.Notes[0].ID, "value": 1200, "blinder": minted.Notes[0].Blinder,
		}},
		"pays": []map[string]any{{"value": 700, "to": "bob"}, {"value": 500, "to": "alice"}},
	}, &moved); err != nil {
		t.Fatal(err)
	}
	if len(moved.Notes) != 2 || moved.Notes[0].Value != 700 || moved.Notes[1].Value != 500 {
		t.Fatalf("transfer result %+v", moved)
	}

	// A wrong auditor secret is refused; the right one opens the amount.
	wrong := fr.NewElement(0xbad)
	wrongB := wrong.Bytes()
	if err := c.call("zkdet_ctAudit", map[string]any{
		"auditorSecret": hexBytes(wrongB[:]), "noteId": moved.Notes[0].ID,
	}, nil); err == nil {
		t.Fatal("wrong auditor key accepted")
	}
	sk := fr.NewElement(0x5ec7)
	skB := sk.Bytes()
	var opened notesResult
	if err := c.call("zkdet_ctAudit", map[string]any{
		"auditorSecret": hexBytes(skB[:]), "noteId": moved.Notes[0].ID,
	}, &opened); err != nil {
		t.Fatal(err)
	}
	if len(opened.Notes) != 1 || opened.Notes[0].Value != 700 {
		t.Fatalf("auditor opening %+v", opened)
	}
}
