package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"sync"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/fr"
)

// rpcClient is a minimal JSON-RPC 2.0 client over HTTP.
type rpcClient struct {
	url  string
	http *http.Client
}

func newRPCClient(url string) *rpcClient {
	return &rpcClient{url: url, http: &http.Client{Timeout: 2 * time.Minute}}
}

func (c *rpcClient) call(method string, params, out any) error {
	body, err := json.Marshal(map[string]any{
		"jsonrpc": "2.0", "id": 1, "method": method, "params": params,
	})
	if err != nil {
		return err
	}
	resp, err := c.http.Post(c.url, "application/json", bytes.NewReader(body))
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	var envelope struct {
		Result json.RawMessage `json:"result"`
		Error  *rpcError       `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&envelope); err != nil {
		return err
	}
	if envelope.Error != nil {
		return fmt.Errorf("rpc %s: %s (code %d)", method, envelope.Error.Message, envelope.Error.Code)
	}
	if out != nil {
		return json.Unmarshal(envelope.Result, out)
	}
	return nil
}

// sendWait submits a transaction with wait+autoNonce and fails on revert.
func (c *rpcClient) sendWait(p txParams) (*txResult, error) {
	p.Wait = true
	p.AutoNonce = true
	var res txResult
	if err := c.call("zkdet_sendTransaction", p, &res); err != nil {
		return nil, err
	}
	if res.Reverted != "" {
		return nil, fmt.Errorf("tx %s reverted: %s", res.TxHash, res.Reverted)
	}
	return &res, nil
}

// exchangeFixture is the π_k material every load client shares. All sellers
// use the same key k and buyer challenge k_v, so one proof settles every
// exchange — the prover runs once, while each settle still pays the real
// on-chain Plonk verification.
type exchangeFixture struct {
	ciphertext []byte // published dataset ciphertext D̂
	commitment []byte // on-chain NFT commitment field (c_d ‖ c_k)
	hv         []byte // h_v = H(k_v)
	ck         []byte // c_k
	kc         []byte // k_c = k + k_v
	proof      []byte // π_k
}

// buildFixture derives the shared exchange material from the server's proof
// system (the verifier contract's vk comes from the same SRS).
func buildFixture(sys *core.System) (*exchangeFixture, error) {
	data := make(core.Dataset, 4)
	for i := range data {
		data[i] = fr.NewElement(uint64(1000 + i))
	}
	key := fr.NewElement(0xC0FFEE)
	seller, err := core.NewSeller(sys, data, key, core.TruePredicate{})
	if err != nil {
		return nil, err
	}
	listing := seller.Listing(0)
	kv := fr.NewElement(0xBEEF)
	hv := core.HashChallenge(kv)
	st, piK, err := seller.NegotiateKey(kv, hv)
	if err != nil {
		return nil, err
	}
	ct := seller.Ciphertext()
	cdB := listing.Statement.DataCommitment.Bytes()
	ckB := listing.KeyCommitment.Bytes()
	hvB := hv.Bytes()
	kcB := st.KC.Bytes()
	return &exchangeFixture{
		ciphertext: ct.Bytes(),
		commitment: append(cdB[:], ckB[:]...),
		hv:         hvB[:],
		ck:         ckB[:],
		kc:         kcB[:],
		proof:      piK.Bytes(),
	}, nil
}

// loadReport is what one load run measured.
type loadReport struct {
	Clients    int
	Txs        int
	Elapsed    time.Duration
	TPS        float64
	P50        time.Duration
	P99        time.Duration
	Provenance int // clients whose lineage check passed
}

func (r *loadReport) String() string {
	return fmt.Sprintf("clients=%d txs=%d elapsed=%.2fs tps=%.0f p50=%s p99=%s provenance-verified=%d/%d",
		r.Clients, r.Txs, r.Elapsed.Seconds(), r.TPS, r.P50, r.P99, r.Provenance, r.Clients)
}

// provenanceOut mirrors the zkdet_provenance result.
type provenanceOut struct {
	Tokens []tokenOut  `json:"tokens"`
	Edges  [][2]uint64 `json:"edges"`
}

// runClient drives one full data-exchange lifecycle through the gateway:
// faucet → publish ciphertext → mint → duplicate → escrow open → settle
// (real on-chain π_k verification) → NFT transfer → provenance check.
// It returns the tx hashes it waited on plus whether the lineage the
// indexer reports matches what the client actually did.
func runClient(c *rpcClient, id int, fx *exchangeFixture, latencies *[]time.Duration, mu *sync.Mutex) (int, bool, error) {
	sellerLabel := fmt.Sprintf("seller-%03d", id)
	buyerLabel := fmt.Sprintf("buyer-%03d", id)
	const price = 5000

	for _, who := range []string{sellerLabel, buyerLabel} {
		if err := c.call("zkdet_faucet", map[string]any{"address": who, "amount": 1 << 30}, nil); err != nil {
			return 0, false, err
		}
	}
	var put struct {
		URI string `json:"uri"`
	}
	if err := c.call("zkdet_storagePut", map[string]any{"owner": sellerLabel, "data": hexBytes(fx.ciphertext)}, &put); err != nil {
		return 0, false, err
	}
	uri, err := parseBytes(put.URI)
	if err != nil {
		return 0, false, err
	}

	txs := 0
	wait := func(p txParams) (*txResult, error) {
		start := time.Now()
		res, err := c.sendWait(p)
		if err != nil {
			return nil, err
		}
		mu.Lock()
		*latencies = append(*latencies, time.Since(start))
		mu.Unlock()
		txs++
		return res, nil
	}
	mustID := func(res *txResult) (uint64, error) {
		raw, err := parseBytes(res.Return)
		if err != nil {
			return 0, err
		}
		return contracts.DecU64(raw)
	}

	// Mint the root token and duplicate it — a two-node lineage.
	res, err := wait(txParams{
		From: sellerLabel, Contract: contracts.DataNFTName, Method: "mint",
		Args: hexBytes(contracts.EncodeArgs(uri, fx.commitment)),
	})
	if err != nil {
		return txs, false, fmt.Errorf("mint: %w", err)
	}
	rootID, err := mustID(res)
	if err != nil {
		return txs, false, err
	}
	res, err = wait(txParams{
		From: sellerLabel, Contract: contracts.DataNFTName, Method: "duplicate",
		Args: hexBytes(contracts.EncodeArgs(contracts.U64(rootID), uri, fx.commitment)),
	})
	if err != nil {
		return txs, false, fmt.Errorf("duplicate: %w", err)
	}
	childID, err := mustID(res)
	if err != nil {
		return txs, false, err
	}

	// Key-secure exchange: buyer opens, seller settles with the shared π_k.
	exchangeID := uint64(id + 1)
	sellerAddr := chain.AddressFromString(sellerLabel)
	buyerAddr := chain.AddressFromString(buyerLabel)
	if _, err := wait(txParams{
		From: buyerLabel, Contract: contracts.EscrowName, Method: "open", Value: price,
		Args: hexBytes(contracts.EncodeArgs(contracts.U64(exchangeID), sellerAddr[:], fx.hv, fx.ck)),
	}); err != nil {
		return txs, false, fmt.Errorf("open: %w", err)
	}
	if _, err := wait(txParams{
		From: sellerLabel, Contract: contracts.EscrowName, Method: "settle",
		Args: hexBytes(contracts.EncodeArgs(contracts.U64(exchangeID), fx.kc, fx.proof, fx.kc, fx.ck, fx.hv)),
	}); err != nil {
		return txs, false, fmt.Errorf("settle: %w", err)
	}
	if _, err := wait(txParams{
		From: sellerLabel, Contract: contracts.DataNFTName, Method: "transfer",
		Args: hexBytes(contracts.EncodeArgs(contracts.U64(childID), buyerAddr[:])),
	}); err != nil {
		return txs, false, fmt.Errorf("transfer: %w", err)
	}

	// The indexer's lineage must say: child ← root, child owned by the
	// buyer, exchange settled.
	var lin provenanceOut
	if err := c.call("zkdet_provenance", map[string]any{"tokenId": childID}, &lin); err != nil {
		return txs, false, err
	}
	ok := len(lin.Tokens) == 2 &&
		lin.Tokens[0].ID == childID && lin.Tokens[1].ID == rootID &&
		lin.Tokens[0].Kind == "duplication" && lin.Tokens[1].Kind == "mint" &&
		lin.Tokens[0].Owner == buyerAddr.String() &&
		len(lin.Edges) == 1 && lin.Edges[0] == [2]uint64{rootID, childID}
	if ok {
		var ex struct {
			Status string `json:"status"`
			Value  uint64 `json:"value"`
		}
		if err := c.call("zkdet_exchange", map[string]any{"id": exchangeID}, &ex); err != nil {
			return txs, false, err
		}
		ok = ex.Status == "settled" && ex.Value == price
	}
	return txs, ok, nil
}

// runTransferClient is the light workload: one faucet, then txPerClient
// plain value transfers to the client's own payee. No proofs, no contract
// state — pure admission/execution/sealing throughput, cheap enough per
// client to push the population toward 10k and watch the parallel batch
// engine's scheduling (disjoint pairs: every tx is conflict-free).
func runTransferClient(c *rpcClient, id, txPerClient int, latencies *[]time.Duration, mu *sync.Mutex) (int, error) {
	payer := fmt.Sprintf("payer-%05d", id)
	payee := fmt.Sprintf("payee-%05d", id)
	if err := c.call("zkdet_faucet", map[string]any{"address": payer, "amount": 1 << 20}, nil); err != nil {
		return 0, err
	}
	txs := 0
	for i := 0; i < txPerClient; i++ {
		start := time.Now()
		if _, err := c.sendWait(txParams{From: payer, To: payee, Value: 1}); err != nil {
			return txs, fmt.Errorf("transfer %d: %w", i, err)
		}
		mu.Lock()
		*latencies = append(*latencies, time.Since(start))
		mu.Unlock()
		txs++
	}
	return txs, nil
}

// runTransferLoad fans clients concurrent plain-transfer streams at the
// gateway; the report's provenance count is not applicable and stays at
// Clients so the caller's check passes.
func runTransferLoad(url string, clients, txPerClient int) (*loadReport, error) {
	var (
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
		errs      = make([]error, clients)
		txCounts  = make([]int, clients)
	)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := newRPCClient(url)
			txCounts[i], errs[i] = runTransferClient(c, i, txPerClient, &latencies, &mu)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := &loadReport{Clients: clients, Elapsed: elapsed, Provenance: clients}
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("client %d: %w", i, errs[i])
		}
		report.Txs += txCounts[i]
	}
	report.TPS = float64(report.Txs) / elapsed.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		report.P50 = latencies[len(latencies)/2]
		report.P99 = latencies[len(latencies)*99/100]
	}
	return report, nil
}

// runLoad fans clients concurrent exchange flows at the gateway and reports
// throughput and latency percentiles.
func runLoad(url string, fx *exchangeFixture, clients int) (*loadReport, error) {
	var (
		mu        sync.Mutex
		latencies []time.Duration
		wg        sync.WaitGroup
		errs      = make([]error, clients)
		txCounts  = make([]int, clients)
		verified  = make([]bool, clients)
	)
	start := time.Now()
	for i := 0; i < clients; i++ {
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			c := newRPCClient(url)
			txCounts[i], verified[i], errs[i] = runClient(c, i, fx, &latencies, &mu)
		}(i)
	}
	wg.Wait()
	elapsed := time.Since(start)

	report := &loadReport{Clients: clients, Elapsed: elapsed}
	for i := 0; i < clients; i++ {
		if errs[i] != nil {
			return nil, fmt.Errorf("client %d: %w", i, errs[i])
		}
		report.Txs += txCounts[i]
		if verified[i] {
			report.Provenance++
		}
	}
	report.TPS = float64(report.Txs) / elapsed.Seconds()
	sort.Slice(latencies, func(i, j int) bool { return latencies[i] < latencies[j] })
	if len(latencies) > 0 {
		report.P50 = latencies[len(latencies)/2]
		report.P99 = latencies[len(latencies)*99/100]
	}
	return report, nil
}
