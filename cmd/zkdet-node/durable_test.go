package main

import (
	"net/http/httptest"
	"testing"
)

// bootDurable starts an in-process durable daemon WITHOUT registering a
// clean shutdown — the caller decides whether it crashes or closes.
func bootDurable(t *testing.T, dir string) (*server, *httptest.Server, *rpcClient) {
	t.Helper()
	cfg := testCfg()
	cfg.dataDir = dir
	cfg.checkpointEvery = 3
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	return srv, ts, newRPCClient(ts.URL)
}

// TestDurableCrashRestart is the daemon half of the crash-recovery
// acceptance criterion: a -data-dir node is loaded over RPC, killed without
// any shutdown path (WAL buffers abandoned, checkpoints not awaited), and a
// fresh process on the same directory serves the identical receipts and
// blobs for every pre-crash transaction, then keeps sealing.
func TestDurableCrashRestart(t *testing.T) {
	dir := t.TempDir()
	srv, ts, c := bootDurable(t, dir)

	if err := c.call("zkdet_faucet", map[string]any{"address": "alice", "amount": 100_000}, nil); err != nil {
		t.Fatal(err)
	}
	// Enough transfers to cross several checkpoints (checkpointEvery=3).
	type acked struct {
		hash  string
		block uint64
	}
	var txs []acked
	for i := 0; i < 8; i++ {
		res, err := c.sendWait(txParams{From: "alice", To: "bob", Value: uint64(100 + i)})
		if err != nil {
			t.Fatalf("transfer %d: %v", i, err)
		}
		txs = append(txs, acked{hash: res.TxHash, block: res.BlockNumber})
	}
	var put struct {
		URI string `json:"uri"`
	}
	if err := c.call("zkdet_storagePut", map[string]any{"owner": "alice", "data": "0xdeadbeef"}, &put); err != nil {
		t.Fatal(err)
	}

	// SIGKILL: drop the listener and abandon the durable engine mid-state.
	// The producer is stopped only afterwards, so its final seal finds a
	// dead log — exactly what a killed process leaves behind.
	ts.Close()
	srv.durable.Crash()
	srv.node.Stop()

	// A fresh process on the same data dir recovers and serves everything
	// that was acknowledged before the crash.
	srv2, ts2, c2 := bootDurable(t, dir)
	t.Cleanup(func() {
		ts2.Close()
		srv2.close()
	})
	rep := srv2.recovery
	if rep == nil || rep.Head == 0 {
		t.Fatalf("restart recovered nothing: %+v", rep)
	}
	if rep.Head < txs[len(txs)-1].block {
		t.Fatalf("recovered head %d below last acked block %d", rep.Head, txs[len(txs)-1].block)
	}
	if rep.SnapshotHeight == 0 {
		t.Fatalf("recovery ignored the checkpoints: %+v", rep)
	}
	for i, tx := range txs {
		var rec txResult
		if err := c2.call("zkdet_receipt", map[string]any{"txHash": tx.hash}, &rec); err != nil {
			t.Fatalf("receipt %d lost across restart: %v", i, err)
		}
		if rec.BlockNumber != tx.block {
			t.Fatalf("receipt %d moved: block %d, was %d", i, rec.BlockNumber, tx.block)
		}
	}
	var got struct {
		Data string `json:"data"`
	}
	if err := c2.call("zkdet_storageGet", map[string]any{"uri": put.URI}, &got); err != nil {
		t.Fatalf("blob lost across restart: %v", err)
	}
	if got.Data != "0xdeadbeef" {
		t.Fatalf("blob changed across restart: %s", got.Data)
	}

	// The reborn daemon keeps working on top of the recovered state.
	res, err := c2.sendWait(txParams{From: "alice", To: "bob", Value: 999})
	if err != nil {
		t.Fatalf("transfer after restart: %v", err)
	}
	if res.BlockNumber <= rep.Head {
		t.Fatalf("post-restart tx landed at %d, not above recovered head %d", res.BlockNumber, rep.Head)
	}
}

// TestDurableCrashBeforeFirstCheckpoint pins the faucet-durability bug: a
// crash with NO snapshot on disk leaves only the WAL, and the replayed
// transfers need their funding faucet credit — which lives outside any
// block — to come back from the log too.
func TestDurableCrashBeforeFirstCheckpoint(t *testing.T) {
	dir := t.TempDir()
	cfg := testCfg()
	cfg.dataDir = dir
	cfg.checkpointEvery = 1 << 20 // never checkpoint
	srv, err := newServer(cfg)
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(srv.handler())
	c := newRPCClient(ts.URL)
	if err := c.call("zkdet_faucet", map[string]any{"address": "carol", "amount": 5_000}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.sendWait(txParams{From: "carol", To: "dave", Value: 123})
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	srv.durable.Crash()
	srv.node.Stop()

	srv2, ts2, c2 := bootDurable(t, dir)
	t.Cleanup(func() {
		ts2.Close()
		srv2.close()
	})
	rep := srv2.recovery
	if rep.SnapshotPath != "" {
		t.Fatalf("no checkpoint should exist, recovery used %s", rep.SnapshotPath)
	}
	if rep.FaucetsReplayed != 1 {
		t.Fatalf("replayed %d faucet credits, want 1", rep.FaucetsReplayed)
	}
	var rec txResult
	if err := c2.call("zkdet_receipt", map[string]any{"txHash": res.TxHash}, &rec); err != nil {
		t.Fatalf("pre-crash receipt lost: %v", err)
	}
	if got := srv2.mkt.Chain.BalanceOf(mustAddr(t, "dave")); got != 123 {
		t.Fatalf("dave's balance after recovery = %d, want 123", got)
	}
}

func mustAddr(t *testing.T, label string) [20]byte {
	t.Helper()
	a, err := parseAddr(label)
	if err != nil {
		t.Fatal(err)
	}
	return a
}

// TestDurableCleanRestartUsesShutdownCheckpoint verifies the graceful path:
// close() checkpoints, so the next start restores from a snapshot at the
// final height and replays nothing.
func TestDurableCleanRestartUsesShutdownCheckpoint(t *testing.T) {
	dir := t.TempDir()
	srv, ts, c := bootDurable(t, dir)
	if err := c.call("zkdet_faucet", map[string]any{"address": "alice", "amount": 10_000}, nil); err != nil {
		t.Fatal(err)
	}
	res, err := c.sendWait(txParams{From: "alice", To: "bob", Value: 1})
	if err != nil {
		t.Fatal(err)
	}
	ts.Close()
	srv.close() // graceful: checkpoint + WAL close

	srv2, ts2, _ := bootDurable(t, dir)
	t.Cleanup(func() {
		ts2.Close()
		srv2.close()
	})
	rep := srv2.recovery
	if rep.SnapshotHeight < res.BlockNumber {
		t.Fatalf("shutdown checkpoint missing: snapshot at %d, sealed through %d", rep.SnapshotHeight, res.BlockNumber)
	}
	if rep.BlocksReplayed != 0 {
		t.Fatalf("clean restart replayed %d blocks, want 0", rep.BlocksReplayed)
	}
}
