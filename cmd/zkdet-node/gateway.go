package main

import (
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/indexer"
	"github.com/zkdet/zkdet/internal/node"
	"github.com/zkdet/zkdet/internal/storage"
)

// gateway is the JSON-RPC 2.0 endpoint (POST /) of the node daemon.
//
// Methods:
//
//	zkdet_sendTransaction  submit a tx; wait=true blocks until sealed
//	zkdet_receipt          receipt + block number by tx hash
//	zkdet_blockNumber      current chain height
//	zkdet_events           indexed event query with topic/range/pagination
//	zkdet_provenance       lineage DAG of a token
//	zkdet_exchange         folded escrow exchange record
//	zkdet_stats            node + indexer counters
//	zkdet_faucet           credit an address (devnet only)
//	zkdet_nextNonce        next pool-assigned nonce for an address
//	zkdet_storagePut       store a blob, returns its URI
//	zkdet_storageGet       fetch a blob by URI
//	zkdet_ctEnable         deploy the confidential-token subsystem (devnet only)
//	zkdet_ctMint           mint confidential notes (issuer; returns openings)
//	zkdet_ctTransfer       spend notes into new outputs (returns openings)
//	zkdet_ctNote           public view of a note: owner, status, commitment
//	zkdet_ctAudit          open hidden amounts with the designated auditor key
type gateway struct {
	srv *server
}

// JSON-RPC error codes (the standard ones plus one server range).
const (
	codeParse      = -32700
	codeBadRequest = -32600
	codeNoMethod   = -32601
	codeBadParams  = -32602
	codeExecution  = -32000
)

type rpcRequest struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Method  string          `json:"method"`
	Params  json.RawMessage `json:"params"`
}

type rpcError struct {
	Code    int    `json:"code"`
	Message string `json:"message"`
}

type rpcResponse struct {
	JSONRPC string          `json:"jsonrpc"`
	ID      json.RawMessage `json:"id"`
	Result  any             `json:"result,omitempty"`
	Error   *rpcError       `json:"error,omitempty"`
}

func (g *gateway) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		http.Error(w, "POST only", http.StatusMethodNotAllowed)
		return
	}
	body, err := io.ReadAll(io.LimitReader(r.Body, 16<<20))
	if err != nil {
		http.Error(w, err.Error(), http.StatusBadRequest)
		return
	}
	var req rpcRequest
	resp := rpcResponse{JSONRPC: "2.0"}
	if err := json.Unmarshal(body, &req); err != nil {
		resp.Error = &rpcError{Code: codeParse, Message: err.Error()}
	} else {
		resp.ID = req.ID
		result, rerr := g.dispatch(r, &req)
		if rerr != nil {
			resp.Error = rerr
		} else {
			resp.Result = result
		}
	}
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(&resp)
}

func (g *gateway) dispatch(r *http.Request, req *rpcRequest) (any, *rpcError) {
	switch req.Method {
	case "zkdet_sendTransaction":
		return g.sendTransaction(r, req.Params)
	case "zkdet_receipt":
		return g.receipt(req.Params)
	case "zkdet_blockNumber":
		return map[string]uint64{"height": g.srv.mkt.Chain.Height()}, nil
	case "zkdet_events":
		return g.events(req.Params)
	case "zkdet_provenance":
		return g.provenance(req.Params)
	case "zkdet_exchange":
		return g.exchange(req.Params)
	case "zkdet_stats":
		return g.stats(), nil
	case "zkdet_faucet":
		return g.faucet(req.Params)
	case "zkdet_nextNonce":
		return g.nextNonce(req.Params)
	case "zkdet_storagePut":
		return g.storagePut(req.Params)
	case "zkdet_storageGet":
		return g.storageGet(req.Params)
	case "zkdet_ctEnable":
		return g.ctEnable(req.Params)
	case "zkdet_ctMint":
		return g.ctMint(req.Params)
	case "zkdet_ctTransfer":
		return g.ctTransfer(req.Params)
	case "zkdet_ctNote":
		return g.ctNote(req.Params)
	case "zkdet_ctAudit":
		return g.ctAudit(req.Params)
	default:
		return nil, &rpcError{Code: codeNoMethod, Message: fmt.Sprintf("unknown method %q", req.Method)}
	}
}

// --- wire helpers ---

// parseAddr accepts a 0x-prefixed hex address or a human label (hashed the
// way chain.AddressFromString does), so load tools can say "alice".
func parseAddr(s string) (chain.Address, error) {
	if s == "" {
		return chain.Address{}, nil
	}
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		return chain.AddressFromHex(s)
	}
	return chain.AddressFromString(s), nil
}

func parseBytes(s string) ([]byte, error) {
	if s == "" {
		return nil, nil
	}
	if len(s) >= 2 && s[0] == '0' && (s[1] == 'x' || s[1] == 'X') {
		s = s[2:]
	}
	return hex.DecodeString(s)
}

func hexBytes(b []byte) string {
	if len(b) == 0 {
		return ""
	}
	return "0x" + hex.EncodeToString(b)
}

func badParams(err error) *rpcError {
	return &rpcError{Code: codeBadParams, Message: err.Error()}
}

func decodeParams(raw json.RawMessage, into any) *rpcError {
	if len(raw) == 0 {
		return &rpcError{Code: codeBadParams, Message: "missing params"}
	}
	if err := json.Unmarshal(raw, into); err != nil {
		return badParams(err)
	}
	return nil
}

// --- transactions ---

type txParams struct {
	From      string `json:"from"`
	To        string `json:"to"`
	Contract  string `json:"contract"`
	Method    string `json:"method"`
	Args      string `json:"args"` // hex
	Value     uint64 `json:"value"`
	Nonce     uint64 `json:"nonce"`
	GasLimit  uint64 `json:"gasLimit"`
	AutoNonce bool   `json:"autoNonce"`
	Wait      bool   `json:"wait"`
}

type txResult struct {
	TxHash      string     `json:"txHash"`
	Included    bool       `json:"included"`
	BlockNumber uint64     `json:"blockNumber,omitempty"`
	GasUsed     uint64     `json:"gasUsed,omitempty"`
	Return      string     `json:"return,omitempty"`
	Reverted    string     `json:"reverted,omitempty"`
	Logs        []eventOut `json:"logs,omitempty"`
}

type eventOut struct {
	Contract string `json:"contract"`
	Name     string `json:"name"`
	Topic    string `json:"topic,omitempty"`
	Data     string `json:"data,omitempty"`
	Block    uint64 `json:"block,omitempty"`
	TxHash   string `json:"txHash,omitempty"`
}

func eventsOut(block uint64, txHash string, evs []chain.Event) []eventOut {
	out := make([]eventOut, len(evs))
	for i, ev := range evs {
		out[i] = eventOut{
			Contract: ev.Contract, Name: ev.Name,
			Topic: hexBytes(ev.Topic), Data: hexBytes(ev.Data),
			Block: block, TxHash: txHash,
		}
	}
	return out
}

func (g *gateway) sendTransaction(r *http.Request, raw json.RawMessage) (any, *rpcError) {
	var p txParams
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	from, err := parseAddr(p.From)
	if err != nil {
		return nil, badParams(err)
	}
	to, err := parseAddr(p.To)
	if err != nil {
		return nil, badParams(err)
	}
	args, err := parseBytes(p.Args)
	if err != nil {
		return nil, badParams(err)
	}
	tx := chain.Transaction{
		From: from, To: to, Contract: p.Contract, Method: p.Method,
		Args: args, Value: p.Value, Nonce: p.Nonce, GasLimit: p.GasLimit,
	}
	if !p.Wait {
		h, err := g.srv.node.Submit(tx)
		if err != nil {
			return nil, &rpcError{Code: codeExecution, Message: err.Error()}
		}
		return &txResult{TxHash: h.String()}, nil
	}
	res, err := g.srv.node.SubmitAndWait(r.Context(), tx, p.AutoNonce)
	if err != nil {
		// Execution-level rejections (revert, bad nonce at execution) carry
		// the tx hash; admission failures do not.
		if res.TxHash != (chain.Hash{}) && !errors.Is(err, node.ErrWaitCanceled) {
			return &txResult{TxHash: res.TxHash.String(), Reverted: err.Error()}, nil
		}
		return nil, &rpcError{Code: codeExecution, Message: err.Error()}
	}
	out := &txResult{
		TxHash:      res.TxHash.String(),
		Included:    true,
		BlockNumber: res.BlockNumber,
	}
	if rc := res.Receipt; rc != nil {
		out.GasUsed = rc.GasUsed
		out.Return = hexBytes(rc.Return)
		out.Logs = eventsOut(res.BlockNumber, res.TxHash.String(), rc.Logs)
		if rc.Err != nil {
			out.Reverted = rc.Err.Error()
		}
	}
	return out, nil
}

func (g *gateway) receipt(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		TxHash string `json:"txHash"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	h, err := chain.HashFromHex(p.TxHash)
	if err != nil {
		return nil, badParams(err)
	}
	rc, ok := g.srv.mkt.Chain.Receipt(h)
	if !ok {
		return nil, &rpcError{Code: codeExecution, Message: "unknown transaction"}
	}
	block, _ := g.srv.ix.TxBlock(h)
	out := &txResult{
		TxHash: h.String(), Included: true, BlockNumber: block,
		GasUsed: rc.GasUsed, Return: hexBytes(rc.Return),
		Logs: eventsOut(block, h.String(), rc.Logs),
	}
	if rc.Err != nil {
		out.Reverted = rc.Err.Error()
	}
	return out, nil
}

// --- queries ---

type eventsParams struct {
	Contract  string `json:"contract"`
	Name      string `json:"name"`
	Topic     string `json:"topic"`
	FromBlock uint64 `json:"fromBlock"`
	ToBlock   uint64 `json:"toBlock"`
	Offset    int    `json:"offset"`
	Limit     int    `json:"limit"`
}

func (g *gateway) events(raw json.RawMessage) (any, *rpcError) {
	var p eventsParams
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	topic, err := parseBytes(p.Topic)
	if err != nil {
		return nil, badParams(err)
	}
	entries, total, err := g.srv.ix.Query(indexer.Filter{
		Contract: p.Contract, Name: p.Name, Topic: topic,
		FromBlock: p.FromBlock, ToBlock: p.ToBlock,
		Offset: p.Offset, Limit: p.Limit,
	})
	if err != nil {
		return nil, badParams(err)
	}
	out := make([]eventOut, len(entries))
	for i, e := range entries {
		out[i] = eventsOut(e.Block, e.TxHash.String(), []chain.Event{e.Event})[0]
	}
	return map[string]any{"entries": out, "total": total}, nil
}

type tokenOut struct {
	ID       uint64   `json:"id"`
	Kind     string   `json:"kind"`
	Owner    string   `json:"owner"`
	Parents  []uint64 `json:"parents,omitempty"`
	Children []uint64 `json:"children,omitempty"`
	Burned   bool     `json:"burned,omitempty"`
}

func (g *gateway) provenance(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		TokenID uint64 `json:"tokenId"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	lin, err := g.srv.ix.Lineage(p.TokenID)
	if err != nil {
		return nil, &rpcError{Code: codeExecution, Message: err.Error()}
	}
	tokens := make([]tokenOut, len(lin.Tokens))
	for i, t := range lin.Tokens {
		tokens[i] = tokenOut{
			ID: t.ID, Kind: t.Kind.String(), Owner: t.Owner.String(),
			Parents: t.Parents, Children: t.Children, Burned: t.Burned,
		}
	}
	edges := make([][2]uint64, len(lin.Edges))
	for i, e := range lin.Edges {
		edges[i] = [2]uint64{e.Parent, e.Child}
	}
	return map[string]any{"tokens": tokens, "edges": edges}, nil
}

func (g *gateway) exchange(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		ID uint64 `json:"id"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	rec, err := g.srv.ix.Exchange(p.ID)
	if err != nil {
		return nil, &rpcError{Code: codeExecution, Message: err.Error()}
	}
	return map[string]any{
		"id": rec.ID, "seller": rec.Seller.String(), "status": rec.Status,
		"value": rec.Value, "kc": hexBytes(rec.KC), "hv": hexBytes(rec.HV),
	}, nil
}

func (g *gateway) stats() any {
	ns := g.srv.node.Stats()
	is := g.srv.ix.Stats()
	out := map[string]any{
		"height": g.srv.mkt.Chain.Height(),
		"node": map[string]any{
			"poolSize": ns.PoolSize, "admitted": ns.Admitted,
			"rejected": ns.Rejected, "evicted": ns.Evicted,
			"blocksSealed": ns.BlocksSealed, "txsIncluded": ns.TxsIncluded,
			"proofsPreverified": ns.ProofsPreverified, "proofsEvicted": ns.ProofsEvicted,
			"latencyP50Ms": float64(ns.LatencyP50.Microseconds()) / 1000,
			"latencyP99Ms": float64(ns.LatencyP99.Microseconds()) / 1000,
		},
		"indexer": map[string]any{
			"blocks": is.Blocks, "events": is.Events, "txs": is.Txs,
			"tokens": is.Tokens, "keys": is.Keys,
		},
	}
	if d := g.srv.durable; d != nil {
		ds := d.Stats()
		out["durable"] = map[string]any{
			"blocksLogged": ds.BlocksLogged, "blobsLogged": ds.BlobsLogged,
			"checkpoints": ds.Checkpoints, "lastCheckpoint": d.LastCheckpoint(),
			"prunedTxs":  ds.PrunedTxs,
			"walAppends": ds.WAL.Appends, "walSyncs": ds.WAL.Syncs,
			"walSegments": ds.WAL.Segments, "walPrunedSegments": ds.WAL.PrunedSegments,
		}
	}
	return out
}

func (g *gateway) faucet(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		Address string `json:"address"`
		Amount  uint64 `json:"amount"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	a, err := parseAddr(p.Address)
	if err != nil {
		return nil, badParams(err)
	}
	// In durable mode the credit must hit the WAL before it is acknowledged
	// — an off-block state mutation a crash would otherwise silently lose,
	// leaving the WAL tail unreplayable (transfers without their funding).
	if d := g.srv.durable; d != nil {
		if err := d.Faucet(a, p.Amount); err != nil {
			return nil, &rpcError{Code: codeExecution, Message: err.Error()}
		}
	} else {
		g.srv.mkt.Chain.Faucet(a, p.Amount)
	}
	return map[string]any{"address": a.String(), "balance": g.srv.mkt.Chain.BalanceOf(a)}, nil
}

func (g *gateway) nextNonce(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		Address string `json:"address"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	a, err := parseAddr(p.Address)
	if err != nil {
		return nil, badParams(err)
	}
	return map[string]uint64{"nonce": g.srv.node.NextNonce(a)}, nil
}

// --- confidential tokens ---

// ctPayIn is one requested output of a confidential mint or transfer.
type ctPayIn struct {
	Value uint64 `json:"value"`
	To    string `json:"to"`
}

// ctNoteOut is the wallet view of a note: the public record plus — only on
// the RPC that created it — the opening (value, blinder) the owner needs
// to spend it. The opening never appears on-chain.
type ctNoteOut struct {
	ID         uint64 `json:"id"`
	Owner      string `json:"owner"`
	Status     string `json:"status"`
	Commitment string `json:"commitment"`
	Digest     string `json:"digest"`
	Value      uint64 `json:"value,omitempty"`
	Blinder    string `json:"blinder,omitempty"`
}

func ctStatusString(s byte) string {
	switch s {
	case 1:
		return "unspent"
	case 2:
		return "spent"
	case 3:
		return "locked"
	default:
		return fmt.Sprintf("unknown(%d)", s)
	}
}

func ctNoteView(n *contracts.CTNote) ctNoteOut {
	comm := n.Comm.Bytes()
	dig := n.Comm.Digest()
	return ctNoteOut{
		ID: n.ID, Owner: n.Owner.String(), Status: ctStatusString(n.Status),
		Commitment: hexBytes(comm[:]), Digest: hexBytes(dig[:]),
	}
}

func (g *gateway) ctDeployment() (*core.ConfidentialDeployment, *rpcError) {
	d := g.srv.mkt.Confidential()
	if d == nil {
		return nil, &rpcError{Code: codeExecution, Message: core.ErrConfidentialDisabled.Error()}
	}
	return d, nil
}

// ctEnable deploys the confidential subsystem. Devnet-only, like the
// faucet: a production genesis would bake the deployment in.
func (g *gateway) ctEnable(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		Issuer     string `json:"issuer"`
		AuditorPub string `json:"auditorPub"` // 64-byte G1 point, hex
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	issuer, err := parseAddr(p.Issuer)
	if err != nil {
		return nil, badParams(err)
	}
	pubRaw, err := parseBytes(p.AuditorPub)
	if err != nil {
		return nil, badParams(err)
	}
	pub, err := ct.CommitmentFromBytes(pubRaw)
	if err != nil {
		return nil, badParams(fmt.Errorf("auditorPub: %w", err))
	}
	d, err := g.srv.mkt.EnableConfidential(issuer, pub.P)
	if err != nil {
		return nil, &rpcError{Code: codeExecution, Message: err.Error()}
	}
	return map[string]any{
		"issuer": d.Issuer.String(), "token": contracts.ConfidentialTokenName,
		"verifier": core.PiCTVerifierName,
		"verifierGas": d.VerifierGas, "tokenGas": d.TokenGas,
	}, nil
}

func (g *gateway) ctMint(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		Pays []ctPayIn `json:"pays"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	if _, rerr := g.ctDeployment(); rerr != nil {
		return nil, rerr
	}
	pays, rerr := g.ctPayments(p.Pays)
	if rerr != nil {
		return nil, rerr
	}
	notes, err := g.srv.mkt.ConfidentialMint(pays)
	if err != nil {
		return nil, &rpcError{Code: codeExecution, Message: err.Error()}
	}
	return map[string]any{"notes": g.ctWalletNotes(notes)}, nil
}

func (g *gateway) ctTransfer(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		Sender string `json:"sender"`
		Inputs []struct {
			ID      uint64 `json:"id"`
			Value   uint64 `json:"value"`
			Blinder string `json:"blinder"` // hex field element
		} `json:"inputs"`
		Pays []ctPayIn `json:"pays"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	if _, rerr := g.ctDeployment(); rerr != nil {
		return nil, rerr
	}
	sender, err := parseAddr(p.Sender)
	if err != nil {
		return nil, badParams(err)
	}
	ins := make([]*core.ConfNote, len(p.Inputs))
	for i, in := range p.Inputs {
		rec, err := contracts.ReadCTNote(g.srv.mkt.Chain, contracts.ConfidentialTokenName, in.ID)
		if err != nil {
			return nil, &rpcError{Code: codeExecution, Message: err.Error()}
		}
		blinder, err := parseBytes(in.Blinder)
		if err != nil {
			return nil, badParams(err)
		}
		r, err := fr.FromBytesCanonical(blinder)
		if err != nil {
			return nil, badParams(fmt.Errorf("input %d blinder: %w", in.ID, err))
		}
		ins[i] = &core.ConfNote{
			ID: rec.ID, Owner: rec.Owner, Comm: rec.Comm,
			Opening: ct.Opening{V: in.Value, R: r},
		}
	}
	pays, rerr := g.ctPayments(p.Pays)
	if rerr != nil {
		return nil, rerr
	}
	notes, err := g.srv.mkt.ConfidentialTransfer(sender, ins, pays)
	if err != nil {
		return nil, &rpcError{Code: codeExecution, Message: err.Error()}
	}
	return map[string]any{"notes": g.ctWalletNotes(notes)}, nil
}

func (g *gateway) ctPayments(pays []ctPayIn) ([]core.ConfPayment, *rpcError) {
	out := make([]core.ConfPayment, len(pays))
	for i, pay := range pays {
		to, err := parseAddr(pay.To)
		if err != nil {
			return nil, badParams(err)
		}
		out[i] = core.ConfPayment{Value: pay.Value, To: to}
	}
	return out, nil
}

func (g *gateway) ctWalletNotes(notes []*core.ConfNote) []ctNoteOut {
	out := make([]ctNoteOut, len(notes))
	for i, n := range notes {
		comm := n.Comm.Bytes()
		dig := n.Comm.Digest()
		blinder := n.Opening.R.Bytes()
		out[i] = ctNoteOut{
			ID: n.ID, Owner: n.Owner.String(), Status: "unspent",
			Commitment: hexBytes(comm[:]), Digest: hexBytes(dig[:]),
			Value: n.Opening.V, Blinder: hexBytes(blinder[:]),
		}
	}
	return out
}

func (g *gateway) ctNote(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		ID uint64 `json:"id"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	rec, err := contracts.ReadCTNote(g.srv.mkt.Chain, contracts.ConfidentialTokenName, p.ID)
	if err != nil {
		return nil, &rpcError{Code: codeExecution, Message: err.Error()}
	}
	return ctNoteView(rec), nil
}

// ctAudit opens hidden amounts with the designated auditor's secret key.
// With noteId it opens one note; otherwise it enumerates the contract's
// settled exchanges (optionally filtered by tokenId) and opens each
// payment note — the designated-auditor view of AuditLineage.
func (g *gateway) ctAudit(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		AuditorSecret string `json:"auditorSecret"` // hex field element
		NoteID        uint64 `json:"noteId"`
		TokenID       uint64 `json:"tokenId"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	d, rerr := g.ctDeployment()
	if rerr != nil {
		return nil, rerr
	}
	skRaw, err := parseBytes(p.AuditorSecret)
	if err != nil {
		return nil, badParams(err)
	}
	sk, err := fr.FromBytesCanonical(skRaw)
	if err != nil {
		return nil, badParams(fmt.Errorf("auditorSecret: %w", err))
	}
	ak := ct.AuditorKeyFromSecret(sk)
	if pub := ak.PublicKey(); !pub.Equal(&d.AuditorPub) {
		return nil, &rpcError{Code: codeExecution, Message: "auditorSecret does not match the deployed auditor key"}
	}
	params := ct.DefaultParams()
	openNote := func(id uint64) (ctNoteOut, *rpcError) {
		rec, err := contracts.ReadCTNote(g.srv.mkt.Chain, contracts.ConfidentialTokenName, id)
		if err != nil {
			return ctNoteOut{}, &rpcError{Code: codeExecution, Message: err.Error()}
		}
		op, err := ak.Open(params, rec.Comm, &rec.Audit)
		if err != nil {
			return ctNoteOut{}, &rpcError{Code: codeExecution, Message: fmt.Sprintf("opening note %d: %v", id, err)}
		}
		view := ctNoteView(rec)
		view.Value = op.V
		return view, nil
	}
	if p.NoteID != 0 {
		view, rerr := openNote(p.NoteID)
		if rerr != nil {
			return nil, rerr
		}
		return map[string]any{"notes": []ctNoteOut{view}}, nil
	}
	settlements, err := contracts.ReadCTSettlements(g.srv.mkt.Chain, contracts.ConfidentialTokenName)
	if err != nil {
		return nil, &rpcError{Code: codeExecution, Message: err.Error()}
	}
	type paymentOut struct {
		ExchangeID uint64 `json:"exchangeId"`
		TokenID    uint64 `json:"tokenId"`
		NoteID     uint64 `json:"noteId"`
		Value      uint64 `json:"value"`
	}
	payments := []paymentOut{}
	for _, s := range settlements {
		if !s.Settled || (p.TokenID != 0 && s.TokenID != p.TokenID) {
			continue
		}
		view, rerr := openNote(s.NoteID)
		if rerr != nil {
			return nil, rerr
		}
		payments = append(payments, paymentOut{
			ExchangeID: s.ExchangeID, TokenID: s.TokenID,
			NoteID: s.NoteID, Value: view.Value,
		})
	}
	return map[string]any{"payments": payments}, nil
}

func (g *gateway) storagePut(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		Owner string `json:"owner"`
		Data  string `json:"data"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	data, err := parseBytes(p.Data)
	if err != nil {
		return nil, badParams(err)
	}
	uri, err := g.srv.mkt.Store.Put(p.Owner, data)
	if err != nil {
		return nil, &rpcError{Code: codeExecution, Message: err.Error()}
	}
	return map[string]string{"uri": hexBytes(uri[:])}, nil
}

func (g *gateway) storageGet(raw json.RawMessage) (any, *rpcError) {
	var p struct {
		URI string `json:"uri"`
	}
	if rerr := decodeParams(raw, &p); rerr != nil {
		return nil, rerr
	}
	raw2, err := parseBytes(p.URI)
	if err != nil {
		return nil, badParams(err)
	}
	var uri storage.URI
	if len(raw2) != len(uri) {
		return nil, badParams(fmt.Errorf("uri must be %d bytes", len(uri)))
	}
	copy(uri[:], raw2)
	data, err := g.srv.mkt.Store.Get(uri)
	if err != nil {
		return nil, &rpcError{Code: codeExecution, Message: err.Error()}
	}
	return map[string]string{"data": hexBytes(data)}, nil
}
