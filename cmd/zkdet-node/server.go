package main

import (
	"fmt"
	"net"
	"net/http"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/indexer"
	"github.com/zkdet/zkdet/internal/node"
	"github.com/zkdet/zkdet/internal/snapshot"
	"github.com/zkdet/zkdet/internal/storage"
)

// serverConfig tunes one daemon instance.
type serverConfig struct {
	storageNodes int
	srsSize      int
	node         node.Config
	// dataDir, when set, makes the node durable: blocks, receipts, and blob
	// puts are write-ahead logged and periodically checkpointed there, and
	// a restart recovers from the directory instead of starting fresh.
	dataDir         string
	role            string // "archive" or "full" (durable mode only)
	checkpointEvery uint64 // snapshot cadence in blocks (durable mode only)
}

func defaultServerConfig() serverConfig {
	return serverConfig{
		storageNodes: 8,
		// Large enough for the π_k circuit the escrow verifier checks.
		srsSize: 1 << 12,
		node:    node.DefaultConfig(),
		role:    "archive",
	}
}

// server is a running ZKDET node: the deployed marketplace, the block
// producer, the event indexer, and the HTTP JSON-RPC gateway over them.
// With a data dir configured it also carries the durable state engine and
// the report of the recovery that ran at boot.
type server struct {
	mkt      *core.Marketplace
	node     *node.Node
	ix       *indexer.Indexer
	http     *http.Server
	lis      net.Listener
	durable  *snapshot.DurableStore   // nil when running in-memory
	recovery *snapshot.RecoveryReport // nil when running in-memory
}

// newServer deploys a fresh chain + contract suite and starts the block
// producer. It does not listen yet; call listen or serve the handler
// directly (tests use httptest).
//
// In-memory mode (no dataDir) uses the simulated storage network. Durable
// mode opens the state engine at dataDir, recovers whatever a previous
// process persisted — latest verified snapshot plus WAL tail — and only
// then starts sealing, so a SIGKILL'd daemon restarts where it left off.
func newServer(cfg serverConfig) (*server, error) {
	sys, err := core.NewTestSystem(cfg.srsSize)
	if err != nil {
		return nil, fmt.Errorf("proof system setup: %w", err)
	}
	srv := &server{}
	var mkt *core.Marketplace
	if cfg.dataDir == "" {
		if mkt, _, err = core.NewMarketplace(sys, cfg.storageNodes); err != nil {
			return nil, fmt.Errorf("deploying marketplace: %w", err)
		}
		srv.ix = mkt.AttachIndexer()
	} else {
		role, err := snapshot.ParseRole(cfg.role)
		if err != nil {
			return nil, err
		}
		d, err := snapshot.Open(snapshot.Options{
			Dir: cfg.dataDir, Role: role, CheckpointEvery: cfg.checkpointEvery,
		})
		if err != nil {
			return nil, fmt.Errorf("opening data dir: %w", err)
		}
		bs := d.Blobs(storage.NewStore())
		if mkt, _, err = core.NewMarketplaceWith(sys, chain.New(), bs); err != nil {
			return nil, fmt.Errorf("deploying marketplace: %w", err)
		}
		srv.ix = mkt.AttachIndexer() // before Recover: the indexer re-sees restored blocks
		rep, err := d.Recover(mkt.Chain)
		if err != nil {
			return nil, fmt.Errorf("recovering %s: %w", cfg.dataDir, err)
		}
		if err := d.Attach(mkt.Chain); err != nil {
			return nil, err
		}
		srv.durable, srv.recovery = d, rep
	}
	// Fold every block's proof-carrying transactions into one pairing
	// check at seal time.
	cfg.node.SealVerifier = mkt.ProofChecker()
	n := node.New(mkt.Chain, cfg.node)
	n.Start()
	srv.mkt, srv.node = mkt, n
	return srv, nil
}

// handler returns the JSON-RPC gateway handler.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", &gateway{srv: s})
	return mux
}

// listen binds the gateway to addr and serves until close.
func (s *server) listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	s.http = &http.Server{Handler: s.handler()}
	go func() { _ = s.http.Serve(lis) }()
	return lis.Addr().String(), nil
}

// close stops the HTTP server (if listening) and the block producer, then
// checkpoints and closes the durable engine so the next start recovers
// from a snapshot instead of replaying the whole WAL.
func (s *server) close() {
	if s.http != nil {
		_ = s.http.Close()
	}
	s.node.Stop()
	if s.durable != nil {
		if err := s.durable.Checkpoint(); err != nil {
			fmt.Println("zkdet-node: shutdown checkpoint:", err)
		}
		if err := s.durable.Close(); err != nil {
			fmt.Println("zkdet-node: closing data dir:", err)
		}
	}
}
