package main

import (
	"fmt"
	"net"
	"net/http"

	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/indexer"
	"github.com/zkdet/zkdet/internal/node"
)

// serverConfig tunes one daemon instance.
type serverConfig struct {
	storageNodes int
	srsSize      int
	node         node.Config
}

func defaultServerConfig() serverConfig {
	return serverConfig{
		storageNodes: 8,
		// Large enough for the π_k circuit the escrow verifier checks.
		srsSize: 1 << 12,
		node:    node.DefaultConfig(),
	}
}

// server is a running ZKDET node: the deployed marketplace, the block
// producer, the event indexer, and the HTTP JSON-RPC gateway over them.
type server struct {
	mkt  *core.Marketplace
	node *node.Node
	ix   *indexer.Indexer
	http *http.Server
	lis  net.Listener
}

// newServer deploys a fresh chain + contract suite and starts the block
// producer. It does not listen yet; call listen or serve the handler
// directly (tests use httptest).
func newServer(cfg serverConfig) (*server, error) {
	sys, err := core.NewTestSystem(cfg.srsSize)
	if err != nil {
		return nil, fmt.Errorf("proof system setup: %w", err)
	}
	mkt, _, err := core.NewMarketplace(sys, cfg.storageNodes)
	if err != nil {
		return nil, fmt.Errorf("deploying marketplace: %w", err)
	}
	ix := mkt.AttachIndexer()
	// Fold every block's proof-carrying transactions into one pairing
	// check at seal time.
	cfg.node.SealVerifier = mkt.ProofChecker()
	n := node.New(mkt.Chain, cfg.node)
	n.Start()
	return &server{mkt: mkt, node: n, ix: ix}, nil
}

// handler returns the JSON-RPC gateway handler.
func (s *server) handler() http.Handler {
	mux := http.NewServeMux()
	mux.Handle("/", &gateway{srv: s})
	return mux
}

// listen binds the gateway to addr and serves until close.
func (s *server) listen(addr string) (string, error) {
	lis, err := net.Listen("tcp", addr)
	if err != nil {
		return "", err
	}
	s.lis = lis
	s.http = &http.Server{Handler: s.handler()}
	go func() { _ = s.http.Serve(lis) }()
	return lis.Addr().String(), nil
}

// close stops the HTTP server (if listening) and the block producer.
func (s *server) close() {
	if s.http != nil {
		_ = s.http.Close()
	}
	s.node.Stop()
}
