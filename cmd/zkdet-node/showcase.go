package main

import (
	"fmt"

	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
)

// runConfidentialShowcase drives one confidential-token sequence through the
// JSON-RPC gateway after the load run: enable the subsystem with a demo
// auditor key, mint a hidden-amount note, split it with a π_ct transfer,
// show that the public view carries only the commitment, and finally open
// the amount with the auditor key. It is a single pass — π_ct proving costs
// ~1.5s per output note, so this is a demo, not part of the load loop.
func runConfidentialShowcase(url string) error {
	c := newRPCClient(url)
	for _, who := range []string{"ct-issuer", "ct-alice", "ct-bob"} {
		if err := c.call("zkdet_faucet", map[string]any{"address": who, "amount": 10_000_000}, nil); err != nil {
			return err
		}
	}

	auditor := ct.AuditorKeyFromSecret(fr.NewElement(0xdeca_f))
	pub := auditor.PublicKey()
	pubB := pub.Bytes()
	if err := c.call("zkdet_ctEnable", map[string]any{
		"issuer": "ct-issuer", "auditorPub": hexBytes(pubB[:]),
	}, nil); err != nil {
		return err
	}

	type notesResult struct {
		Notes []ctNoteOut `json:"notes"`
	}
	var minted notesResult
	if err := c.call("zkdet_ctMint", map[string]any{
		"pays": []map[string]any{{"value": 5000, "to": "ct-alice"}},
	}, &minted); err != nil {
		return err
	}
	if len(minted.Notes) != 1 {
		return fmt.Errorf("mint returned %d notes", len(minted.Notes))
	}
	note := minted.Notes[0]
	fmt.Printf("  minted note %d to ct-alice; on-chain commitment %s… (amount hidden)\n",
		note.ID, note.Commitment[:16])

	var moved notesResult
	if err := c.call("zkdet_ctTransfer", map[string]any{
		"sender": "ct-alice",
		"inputs": []map[string]any{{"id": note.ID, "value": note.Value, "blinder": note.Blinder}},
		"pays":   []map[string]any{{"value": 3200, "to": "ct-bob"}, {"value": 1800, "to": "ct-alice"}},
	}, &moved); err != nil {
		return err
	}
	if len(moved.Notes) != 2 {
		return fmt.Errorf("transfer returned %d notes", len(moved.Notes))
	}
	fmt.Printf("  π_ct transfer split it into notes %d and %d (balance + range proved in zero knowledge)\n",
		moved.Notes[0].ID, moved.Notes[1].ID)

	var view ctNoteOut
	if err := c.call("zkdet_ctNote", map[string]any{"id": moved.Notes[0].ID}, &view); err != nil {
		return err
	}
	if view.Value != 0 || view.Blinder != "" {
		return fmt.Errorf("public note view leaks the opening: %+v", view)
	}

	sk := fr.NewElement(0xdeca_f)
	skB := sk.Bytes()
	var opened notesResult
	if err := c.call("zkdet_ctAudit", map[string]any{
		"auditorSecret": hexBytes(skB[:]), "noteId": moved.Notes[0].ID,
	}, &opened); err != nil {
		return err
	}
	if len(opened.Notes) != 1 || opened.Notes[0].Value != 3200 {
		return fmt.Errorf("auditor opening mismatch: %+v", opened)
	}
	fmt.Printf("  public view shows only the commitment; auditor key opens note %d to %d\n",
		moved.Notes[0].ID, opened.Notes[0].Value)
	return nil
}
