// Command zkdet drives a complete ZKDET scenario against an in-process
// deployment: mint data assets, transform them with proofs, trace
// provenance, and run the key-secure exchange. It is the CLI counterpart of
// the examples, with the workload under flag control.
//
// Usage:
//
//	zkdet -entries 8 -nodes 8 -price 5000          # full scenario
//	zkdet -scenario mint                           # just mint + verify π_e
//	zkdet -scenario transform                      # mint + aggregate/partition/duplicate + trace
//	zkdet -scenario exchange                       # mint + key-secure sale
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"github.com/zkdet/zkdet"
	"github.com/zkdet/zkdet/internal/fr"
)

func main() {
	log.SetFlags(0)
	var (
		entries  = flag.Int("entries", 4, "dataset size in field elements")
		nodes    = flag.Int("nodes", 8, "storage network size")
		price    = flag.Uint64("price", 5000, "sale price for the exchange scenario")
		scenario = flag.String("scenario", "all", "mint, transform, exchange or all")
		maxGates = flag.Int("gates", 1<<14, "maximum circuit size the SRS supports")
	)
	flag.Parse()

	if *entries < 1 {
		log.Fatal("zkdet: -entries must be positive")
	}
	fmt.Printf("zkdet demo — %d entries, %d storage nodes\n", *entries, *nodes)
	fmt.Println("• universal setup…")
	sys, err := zkdet.NewSystem(*maxGates)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	m, gas, err := zkdet.NewMarketplace(sys, *nodes)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	fmt.Printf("• deployed: nft=%dgas auction=%dgas escrow=%dgas verifier=%dgas\n",
		gas.DataNFT, gas.Auction, gas.Escrow, gas.Verifier)

	alice := zkdet.AddressFromString("alice")
	bob := zkdet.AddressFromString("bob")
	m.Chain.Faucet(alice, 1_000_000)
	m.Chain.Faucet(bob, 1_000_000)

	data := make(zkdet.Dataset, *entries)
	for i := range data {
		data[i] = zkdet.NewScalar(uint64(1000 + i))
	}

	switch *scenario {
	case "mint":
		runMint(m, alice, data)
	case "transform":
		asset := runMint(m, alice, data)
		runTransform(m, alice, asset)
	case "exchange":
		asset := runMint(m, alice, data)
		runExchange(m, alice, bob, asset, *price)
	case "all":
		asset := runMint(m, alice, data)
		runTransform(m, alice, asset)
		second, err := m.MintAsset(alice, "alice", data, zkdet.RandomKey())
		if err != nil {
			log.Fatalf("mint: %v", err)
		}
		runExchange(m, alice, bob, second, *price)
	default:
		fmt.Fprintf(os.Stderr, "unknown scenario %q\n", *scenario)
		flag.Usage()
		os.Exit(2)
	}

	m.Chain.SealBlock()
	if err := m.Chain.VerifyIntegrity(); err != nil {
		log.Fatalf("chain integrity: %v", err)
	}
	fmt.Printf("• chain sealed at height %d, integrity verified\n", m.Chain.Height())
}

func runMint(m *zkdet.Marketplace, owner zkdet.Address, data zkdet.Dataset) *zkdet.Asset {
	asset, err := m.MintAsset(owner, "alice", data, zkdet.RandomKey())
	if err != nil {
		log.Fatalf("mint: %v", err)
	}
	if err := m.Sys.VerifyEncryption(asset.Statement, asset.EncProof); err != nil {
		log.Fatalf("π_e: %v", err)
	}
	fmt.Printf("• minted token #%d (π_e verified, ciphertext at %s…)\n",
		asset.TokenID, asset.URI.String()[:12])
	return asset
}

func runTransform(m *zkdet.Marketplace, owner zkdet.Address, asset *zkdet.Asset) {
	dup, err := m.Duplicate(owner, "alice", asset)
	if err != nil {
		log.Fatalf("duplicate: %v", err)
	}
	if err := m.Sys.VerifyTransform(dup.Proof, nil); err != nil {
		log.Fatalf("π_t: %v", err)
	}
	fmt.Printf("• duplicated #%d → #%d (π_t verified)\n", asset.TokenID, dup.Assets[0].TokenID)

	agg, err := m.Aggregate(owner, "alice", []*zkdet.Asset{asset, dup.Assets[0]})
	if err != nil {
		log.Fatalf("aggregate: %v", err)
	}
	fmt.Printf("• aggregated #%d+#%d → #%d (π_t verified: %v)\n",
		asset.TokenID, dup.Assets[0].TokenID, agg.Assets[0].TokenID,
		m.Sys.VerifyTransform(agg.Proof, nil) == nil)

	n := len(agg.Assets[0].Data)
	part, err := m.Partition(owner, "alice", agg.Assets[0], []int{n / 2, n - n/2})
	if err != nil {
		log.Fatalf("partition: %v", err)
	}
	fmt.Printf("• partitioned #%d → #%d,#%d (π_t verified: %v)\n",
		agg.Assets[0].TokenID, part.Assets[0].TokenID, part.Assets[1].TokenID,
		m.Sys.VerifyTransform(part.Proof, nil) == nil)

	lineage, err := m.Trace(part.Assets[0].TokenID)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	fmt.Printf("• provenance of #%d:\n", part.Assets[0].TokenID)
	for _, tok := range lineage {
		fmt.Printf("    #%d %-11s prev=%v\n", tok.ID, tok.Kind, tok.PrevIDs)
	}
}

func runExchange(m *zkdet.Marketplace, seller, buyer zkdet.Address, asset *zkdet.Asset, price uint64) {
	sellerBefore := m.Chain.BalanceOf(seller)
	got, err := m.SellViaEscrow(uint64(asset.TokenID), seller, buyer, asset, zkdet.TruePredicate{}, price)
	if err != nil {
		log.Fatalf("exchange: %v", err)
	}
	fmt.Printf("• key-secure exchange settled: buyer received %d entries, seller earned %d\n",
		len(got), m.Chain.BalanceOf(seller)-sellerBefore)
	var sample fr.Element
	sample.Set(&got[0])
	fmt.Printf("  first decrypted entry: %s\n", sample.String())
}
