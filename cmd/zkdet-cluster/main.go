// Command zkdet-cluster runs the multi-node demo: N replicas of the full
// ZKDET deployment (chain + contract suite + blob store) connected by the
// simulated p2p transport, with faults injected mid-run.
//
// The script exercises the whole networking subsystem:
//
//  1. mint and transform data assets through one node — transactions
//     gossip to the rotation leader, blocks replicate back by sync;
//
//  2. degrade every link (latency, jitter, drops) and keep going;
//
//  3. partition the cluster 3|4 while a mint is in flight — block
//     production stalls (rotation trades liveness for fork-freedom) and
//     the mint completes only after the heal;
//
//  4. sell an asset through the on-chain escrow, whose settle transaction
//     carries a π_k that every hop batch-verifies before re-gossip — then
//     sell another against a confidential note: the price rides as a
//     Pedersen commitment, screened by the same gossip proof checker, and
//     only the designated auditor's key can open it afterwards;
//
//  5. with -data-dir, SIGKILL one member mid-run — its process state is
//     abandoned (no shutdown path), the node is rebuilt from its data
//     directory alone (snapshot + WAL tail), and it rejoins the cluster
//     from checkpoint height via headers-first sync;
//
//  6. audit every minted token's lineage on every node — same head, same
//     state root, same AuditLineage report, with ciphertexts resolved
//     cross-node through the transport-backed blob store.
//
//     zkdet-cluster [-nodes 7] [-seed 7] [-drop 0.1] [-latency 500µs]
//     [-data-dir /var/lib/zkdet] [-role archive] [-checkpoint-every 8]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/ct"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/node"
	"github.com/zkdet/zkdet/internal/p2p"
	"github.com/zkdet/zkdet/internal/snapshot"
	"github.com/zkdet/zkdet/internal/storage"
)

type clusterConfig struct {
	size            int
	seed            int64
	drop            float64
	latency         time.Duration
	timeout         time.Duration
	dataDir         string // "" = in-memory cluster, no crash phase
	role            string
	checkpointEvery uint64
}

func main() {
	var cfg clusterConfig
	flag.IntVar(&cfg.size, "nodes", 7, "cluster size")
	flag.Int64Var(&cfg.seed, "seed", 7, "transport randomness seed")
	flag.Float64Var(&cfg.drop, "drop", 0.10, "per-message drop rate after degradation")
	flag.DurationVar(&cfg.latency, "latency", 500*time.Microsecond, "base link latency after degradation")
	flag.DurationVar(&cfg.timeout, "timeout", 5*time.Minute, "overall demo deadline")
	flag.StringVar(&cfg.dataDir, "data-dir", "", "persist each member under <dir>/node-<i> and run the crash-recovery phase")
	flag.StringVar(&cfg.role, "role", "archive", "durable node role: archive|full")
	flag.Uint64Var(&cfg.checkpointEvery, "checkpoint-every", 8, "blocks between snapshot checkpoints (durable mode)")
	flag.Parse()
	if err := run(cfg); err != nil {
		fmt.Fprintln(os.Stderr, "zkdet-cluster:", err)
		os.Exit(1)
	}
}

func run(cfg clusterConfig) error {
	ctx, cancel := context.WithTimeout(context.Background(), cfg.timeout)
	defer cancel()

	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")
	issuer := chain.AddressFromString("issuer")
	// The designated auditor: every member bakes the same public key into
	// its genesis; only the secret below can open committed amounts.
	auditor := ct.AuditorKeyFromSecret(fr.NewElement(0xc1a57e2))
	auditorPub := auditor.PublicKey()

	fmt.Printf("== zkdet-cluster: %d nodes, seed %d ==\n", cfg.size, cfg.seed)
	fmt.Println("-- building shared proving system and per-node deployments")
	sys, err := core.NewTestSystem(1 << 13)
	if err != nil {
		return err
	}
	role, err := snapshot.ParseRole(cfg.role)
	if err != nil {
		return err
	}

	// Every member deploys the identical contract suite (same verifying
	// key, same order) onto its own chain, so all replicas share a genesis
	// state root and replayed blocks hash identically.
	size := cfg.size
	mkts := make([]*core.Marketplace, size)
	durables := make([]*snapshot.DurableStore, size)
	defer func() {
		for _, d := range durables {
			if d != nil {
				d.Close()
			}
		}
	}()

	// buildMember assembles member i's full deployment. In durable mode the
	// same function serves the initial build AND the post-crash restart:
	// open the engine on <data-dir>/node-<i>, recover whatever the
	// directory holds, then attach the durability hook.
	buildMember := func(i int) (p2p.NodeSetup, *snapshot.RecoveryReport, error) {
		var (
			bs  storage.LocalStore = storage.NewStore()
			rep *snapshot.RecoveryReport
			d   *snapshot.DurableStore
		)
		if cfg.dataDir != "" {
			opts := snapshot.Options{
				Dir:             filepath.Join(cfg.dataDir, fmt.Sprintf("node-%d", i)),
				Role:            role,
				CheckpointEvery: cfg.checkpointEvery,
			}
			eng, err := snapshot.Open(opts)
			if err != nil {
				return p2p.NodeSetup{}, nil, err
			}
			d = eng
			bs = d.Blobs(storage.NewStore())
		}
		c := chain.New()
		c.Faucet(alice, 1_000_000)
		c.Faucet(bob, 1_000_000)
		c.Faucet(issuer, 1_000_000)
		m, _, err := core.NewMarketplaceWith(sys, c, bs)
		if err != nil {
			return p2p.NodeSetup{}, nil, err
		}
		// Part of genesis like the rest of the suite: identical issuer and
		// auditor key on every member, so replicas stay bit-identical.
		if _, err := m.EnableConfidential(issuer, auditorPub); err != nil {
			return p2p.NodeSetup{}, nil, err
		}
		m.AttachIndexer() // before Recover: the indexer re-sees restored blocks
		if d != nil {
			if rep, err = d.Recover(c); err != nil {
				return p2p.NodeSetup{}, nil, err
			}
			if err := d.Attach(c); err != nil {
				return p2p.NodeSetup{}, nil, err
			}
		}
		if old := durables[i]; old != nil {
			old.Close()
		}
		durables[i] = d
		mkts[i] = m
		return p2p.NodeSetup{
			Inner:     node.New(c, node.Config{}),
			Validator: m.ProofChecker(), // batch proof screen at every gossip hop
			Store:     bs,
		}, rep, nil
	}
	tune := func(i int, nc *p2p.Config) {
		nc.SealInterval = 5 * time.Millisecond
		nc.StatusInterval = 25 * time.Millisecond
		nc.RebroadcastInterval = 50 * time.Millisecond
	}

	cl, err := p2p.NewCluster(p2p.ClusterSpec{
		Size: size,
		Seed: cfg.seed,
		Link: p2p.LinkProfile{Latency: 100 * time.Microsecond}, // pristine at first
		Build: func(i int, id p2p.NodeID) (p2p.NodeSetup, error) {
			setup, rep, err := buildMember(i)
			if err == nil && rep != nil && rep.Head > 0 {
				fmt.Printf("   node %d: recovered height %d from %s\n", i, rep.Head, cfg.dataDir)
			}
			return setup, err
		},
		Tune: tune,
	})
	if err != nil {
		return err
	}
	// Swap each marketplace's store for the cluster-wide one: URIs minted
	// anywhere now resolve everywhere over the transport.
	for i, m := range mkts {
		m.Store = cl.Nodes[i].NetStore()
	}
	// The driver talks to node 0; its transactions are admitted there,
	// gossiped to the rotation leader, and the wait resolves when the
	// sealed block comes back through sync.
	driver := mkts[0]
	driver.Submitter = func(tx chain.Transaction) (*chain.Receipt, error) {
		res, err := cl.Nodes[0].SubmitAndWait(ctx, tx, true)
		if err != nil {
			return nil, err
		}
		return res.Receipt, nil
	}
	if err := cl.Start(); err != nil {
		return err
	}
	defer cl.Stop()

	reg := core.NewProofRegistry()
	data := func(base uint64) core.Dataset {
		d := make(core.Dataset, 2)
		for i := range d {
			d[i] = fr.NewElement(base + uint64(i))
		}
		return d
	}

	fmt.Println("-- phase 1: mint two assets over a pristine network")
	a1, err := driver.MintAsset(alice, "alice", data(100), fr.MustRandom())
	if err != nil {
		return fmt.Errorf("mint a1: %w", err)
	}
	reg.PublishAsset(a1)
	a2, err := driver.MintAsset(alice, "alice", data(200), fr.MustRandom())
	if err != nil {
		return fmt.Errorf("mint a2: %w", err)
	}
	reg.PublishAsset(a2)
	fmt.Printf("   minted tokens #%d and #%d\n", a1.TokenID, a2.TokenID)

	fmt.Printf("-- phase 2: degrade every link (latency %v, jitter, %.0f%% drop) and transform\n",
		cfg.latency, cfg.drop*100)
	cl.Net.Plan().SetDefault(p2p.LinkProfile{
		Latency:  cfg.latency,
		Jitter:   cfg.latency,
		DropRate: cfg.drop,
	})
	agg, err := driver.Aggregate(alice, "alice", []*core.Asset{a1, a2})
	if err != nil {
		return fmt.Errorf("aggregate: %w", err)
	}
	reg.PublishTransform(agg, nil)
	fmt.Printf("   aggregated into token #%d despite losses\n", agg.Assets[0].TokenID)

	fmt.Println("-- phase 3: partition 3|4 with a mint in flight")
	members := p2p.MemberIDs(size)
	split := size / 2
	if split > 3 {
		split = 3
	}
	cl.Net.Plan().Partition(members[:split], members[split:])

	mintDone := make(chan error, 1)
	var a3 *core.Asset
	go func() {
		var err error
		a3, err = driver.MintAsset(alice, "alice", data(300), fr.MustRandom())
		mintDone <- err
	}()

	time.Sleep(1500 * time.Millisecond)
	printHeights(cl, "   heights during partition (production stalls — safety over liveness):")
	select {
	case err := <-mintDone:
		// Legal if the stall happened after this mint's block; the proofs
		// dominate latency, so usually the partition catches it.
		if err != nil {
			return fmt.Errorf("mint during partition: %w", err)
		}
		fmt.Println("   (mint squeezed in before the rotation stalled)")
	default:
		fmt.Println("   mint is blocked waiting for the partition to heal ...")
	}

	fmt.Println("-- phase 4: heal; sync reconciles, rotation resumes")
	cl.Net.Plan().Heal()
	if err := <-mintDone; err != nil {
		return fmt.Errorf("mint across heal: %w", err)
	}
	reg.PublishAsset(a3)
	fmt.Printf("   mint completed after heal: token #%d\n", a3.TokenID)

	fmt.Println("-- phase 5: escrow sale (settle carries π_k through every gossip hop)")
	bought, err := driver.SellViaEscrow(1, alice, bob, a3, core.TruePredicate{}, 500)
	if err != nil {
		return fmt.Errorf("escrow sale: %w", err)
	}
	if len(bought) != len(a3.Data) || !bought[0].Equal(&a3.Data[0]) {
		return fmt.Errorf("escrow sale delivered wrong plaintext")
	}
	fmt.Printf("   bob bought token #%d and decrypted %d elements\n", a3.TokenID, len(bought))

	fmt.Println("-- phase 5b: confidential sale (Pedersen-committed price, auditable by key)")
	payNotes, err := driver.ConfidentialMint([]core.ConfPayment{{Value: 7500, To: bob}})
	if err != nil {
		return fmt.Errorf("confidential mint: %w", err)
	}
	boughtConf, err := driver.SellConfidential(2, alice, bob, a1, core.RangePredicate{Bits: 16}, payNotes[0])
	if err != nil {
		return fmt.Errorf("confidential sale: %w", err)
	}
	if len(boughtConf) != len(a1.Data) || !boughtConf[0].Equal(&a1.Data[0]) {
		return fmt.Errorf("confidential sale delivered wrong plaintext")
	}
	note, err := contracts.ReadCTNote(driver.Chain, contracts.ConfidentialTokenName, payNotes[0].ID)
	if err != nil {
		return err
	}
	dig := note.Comm.Digest()
	fmt.Printf("   bob paid with note #%d — on-chain only the commitment %x… is visible\n",
		payNotes[0].ID, dig[:6])

	if cfg.dataDir != "" {
		if err := crashPhase(ctx, cl, cfg, buildMember, tune, durables, mkts); err != nil {
			return err
		}
	}

	fmt.Println("-- final phase: cluster-wide convergence and lineage audit")
	head, err := cl.WaitConverged(ctx, 0)
	if err != nil {
		return err
	}
	h0 := cl.Nodes[0].Head()
	fmt.Printf("   converged: height %d, head %s\n", h0.Number, head)
	for i, n := range cl.Nodes {
		h := n.Head()
		if h.Hash() != head || h.StateRoot != h0.StateRoot {
			return fmt.Errorf("node %d diverged: head %s root %s", i, h.Hash(), h.StateRoot)
		}
	}
	fmt.Println("   state roots identical on every node")

	tokens := []uint64{a1.TokenID, a2.TokenID, agg.Assets[0].TokenID, a3.TokenID}
	for _, id := range tokens {
		want := ""
		for i, m := range mkts {
			rep, err := m.AuditLineage(reg, id)
			if err != nil {
				return fmt.Errorf("node %d audit of token #%d: %w", i, id, err)
			}
			got := fmt.Sprintf("%v/e%d/t%d", rep.Tokens, rep.EncryptionProofs, rep.TransformProofs)
			if i == 0 {
				want = got
			} else if got != want {
				return fmt.Errorf("token #%d: node %d audit %s != node 0 audit %s", id, i, got, want)
			}
		}
		fmt.Printf("   token #%d: identical AuditLineage on all %d nodes\n", id, size)
	}

	// Auditor-mode audit on every node: the designated key opens the
	// confidential payment behind exchange #2 — same opened amount on every
	// replica, while plain audits (above) never saw a value.
	for i, m := range mkts {
		rep, err := m.AuditLineage(reg, a1.TokenID, core.WithAuditorKey(auditor))
		if err != nil {
			return fmt.Errorf("node %d auditor-mode audit: %w", i, err)
		}
		if len(rep.ConfidentialPayments) != 1 || rep.ConfidentialPayments[0].Value != 7500 {
			return fmt.Errorf("node %d auditor opening mismatch: %+v", i, rep.ConfidentialPayments)
		}
	}
	fmt.Printf("   auditor key opens the hidden price (7500) identically on all %d nodes\n", size)

	printHeights(cl, "-- final state:")
	sent, delivered, dropped, bytes := cl.Net.Stats()
	fmt.Printf("-- transport: %d sent, %d delivered, %d dropped (%.1f%%), %.1f MiB offered\n",
		sent, delivered, dropped, 100*float64(dropped)/float64(sent), float64(bytes)/(1<<20))
	fmt.Println("== ok ==")
	return nil
}

// crashPhase SIGKILLs the highest-index member (never the driver): the node
// drops off the network and its durable engine is abandoned mid-state — no
// checkpoint, no WAL flush beyond what was already acknowledged. The member
// is then rebuilt from its data directory alone and rejoins the cluster
// from checkpoint height via headers-first sync.
func crashPhase(
	ctx context.Context,
	cl *p2p.Cluster,
	cfg clusterConfig,
	buildMember func(int) (p2p.NodeSetup, *snapshot.RecoveryReport, error),
	tune func(int, *p2p.Config),
	durables []*snapshot.DurableStore,
	mkts []*core.Marketplace,
) error {
	victim := cfg.size - 1
	victimID := cl.Nodes[victim].ID()
	fmt.Printf("-- phase 6: SIGKILL node %d (no shutdown path) and restart from %s\n",
		victim, filepath.Join(cfg.dataDir, fmt.Sprintf("node-%d", victim)))

	preCrash := cl.Nodes[0].Head().Number
	restart := cl.Net.Plan().KillAndRestart(victimID)
	cl.Nodes[victim].Stop()
	durables[victim].Crash()
	fmt.Printf("   node %d killed at cluster height %d\n", victim, preCrash)

	start := time.Now()
	setup, rep, err := buildMember(victim)
	if err != nil {
		return fmt.Errorf("rebuild node %d from data dir: %w", victim, err)
	}
	if rep == nil || rep.Head == 0 {
		return fmt.Errorf("node %d recovered nothing from its data dir", victim)
	}
	fmt.Printf("   recovered in %v: snapshot height %d, %d blocks + %d blobs replayed from WAL, head %d\n",
		time.Since(start).Round(time.Millisecond),
		rep.SnapshotHeight, rep.BlocksReplayed, rep.BlobsReplayed, rep.Head)

	nc := p2p.Config{ID: victimID, Members: p2p.MemberIDs(cfg.size), Validator: setup.Validator, Store: setup.Store}
	tune(victim, &nc)
	reborn, err := p2p.NewNode(nc, setup.Inner, cl.Net)
	if err != nil {
		return err
	}
	cl.Nodes[victim] = reborn
	mkts[victim].Store = reborn.NetStore()
	restart()
	if err := reborn.Start(); err != nil {
		return err
	}
	if got := reborn.Head().Number; got < rep.Head {
		return fmt.Errorf("reborn node started at height %d, below its recovered %d", got, rep.Head)
	}
	fmt.Printf("   node %d rejoined from height %d (not genesis); syncing the missed suffix\n",
		victim, reborn.Head().Number)
	if _, err := cl.WaitConverged(ctx, preCrash); err != nil {
		return fmt.Errorf("cluster did not reconverge after restart: %w", err)
	}
	return nil
}

func printHeights(cl *p2p.Cluster, label string) {
	fmt.Println(label)
	for i, n := range cl.Nodes {
		s := n.Stats()
		ns := n.Inner().Stats()
		fmt.Printf("   node %d: height %-3d sealed %-2d imported %-3d pool %-2d gossip-in %d\n",
			i, n.Head().Number, s.BlocksSealed, ns.BlocksImported, ns.PoolSize, s.TxsAccepted)
	}
}
