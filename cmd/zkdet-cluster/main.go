// Command zkdet-cluster runs the multi-node demo: N replicas of the full
// ZKDET deployment (chain + contract suite + blob store) connected by the
// simulated p2p transport, with faults injected mid-run.
//
// The script exercises the whole networking subsystem:
//
//  1. mint and transform data assets through one node — transactions
//     gossip to the rotation leader, blocks replicate back by sync;
//  2. degrade every link (latency, jitter, drops) and keep going;
//  3. partition the cluster 3|4 while a mint is in flight — block
//     production stalls (rotation trades liveness for fork-freedom) and
//     the mint completes only after the heal;
//  4. sell an asset through the on-chain escrow, whose settle transaction
//     carries a π_k that every hop batch-verifies before re-gossip;
//  5. audit every minted token's lineage on every node — same head, same
//     state root, same AuditLineage report, with ciphertexts resolved
//     cross-node through the transport-backed blob store.
//
//	zkdet-cluster [-nodes 7] [-seed 7] [-drop 0.1] [-latency 500µs]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"time"

	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/fr"
	"github.com/zkdet/zkdet/internal/node"
	"github.com/zkdet/zkdet/internal/p2p"
	"github.com/zkdet/zkdet/internal/storage"
)

func main() {
	nodes := flag.Int("nodes", 7, "cluster size")
	seed := flag.Int64("seed", 7, "transport randomness seed")
	drop := flag.Float64("drop", 0.10, "per-message drop rate after degradation")
	latency := flag.Duration("latency", 500*time.Microsecond, "base link latency after degradation")
	timeout := flag.Duration("timeout", 5*time.Minute, "overall demo deadline")
	flag.Parse()
	if err := run(*nodes, *seed, *drop, *latency, *timeout); err != nil {
		fmt.Fprintln(os.Stderr, "zkdet-cluster:", err)
		os.Exit(1)
	}
}

func run(size int, seed int64, drop float64, latency, timeout time.Duration) error {
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()

	alice := chain.AddressFromString("alice")
	bob := chain.AddressFromString("bob")

	fmt.Printf("== zkdet-cluster: %d nodes, seed %d ==\n", size, seed)
	fmt.Println("-- building shared proving system and per-node deployments")
	sys, err := core.NewTestSystem(1 << 13)
	if err != nil {
		return err
	}

	// Every member deploys the identical contract suite (same verifying
	// key, same order) onto its own chain, so all replicas share a genesis
	// state root and replayed blocks hash identically.
	mkts := make([]*core.Marketplace, size)
	cl, err := p2p.NewCluster(p2p.ClusterSpec{
		Size: size,
		Seed: seed,
		Link: p2p.LinkProfile{Latency: 100 * time.Microsecond}, // pristine at first
		Build: func(i int, id p2p.NodeID) (p2p.NodeSetup, error) {
			c := chain.New()
			c.Faucet(alice, 1_000_000)
			c.Faucet(bob, 1_000_000)
			st := storage.NewStore()
			m, _, err := core.NewMarketplaceWith(sys, c, st)
			if err != nil {
				return p2p.NodeSetup{}, err
			}
			m.AttachIndexer()
			mkts[i] = m
			return p2p.NodeSetup{
				Inner:     node.New(c, node.Config{}),
				Validator: m.ProofChecker(), // batch proof screen at every gossip hop
				Store:     st,
			}, nil
		},
		Tune: func(i int, cfg *p2p.Config) {
			cfg.SealInterval = 5 * time.Millisecond
			cfg.StatusInterval = 25 * time.Millisecond
			cfg.RebroadcastInterval = 50 * time.Millisecond
		},
	})
	if err != nil {
		return err
	}
	// Swap each marketplace's store for the cluster-wide one: URIs minted
	// anywhere now resolve everywhere over the transport.
	for i, m := range mkts {
		m.Store = cl.Nodes[i].NetStore()
	}
	// The driver talks to node 0; its transactions are admitted there,
	// gossiped to the rotation leader, and the wait resolves when the
	// sealed block comes back through sync.
	driver := mkts[0]
	driver.Submitter = func(tx chain.Transaction) (*chain.Receipt, error) {
		res, err := cl.Nodes[0].SubmitAndWait(ctx, tx, true)
		if err != nil {
			return nil, err
		}
		return res.Receipt, nil
	}
	if err := cl.Start(); err != nil {
		return err
	}
	defer cl.Stop()

	reg := core.NewProofRegistry()
	data := func(base uint64) core.Dataset {
		d := make(core.Dataset, 2)
		for i := range d {
			d[i] = fr.NewElement(base + uint64(i))
		}
		return d
	}

	fmt.Println("-- phase 1: mint two assets over a pristine network")
	a1, err := driver.MintAsset(alice, "alice", data(100), fr.MustRandom())
	if err != nil {
		return fmt.Errorf("mint a1: %w", err)
	}
	reg.PublishAsset(a1)
	a2, err := driver.MintAsset(alice, "alice", data(200), fr.MustRandom())
	if err != nil {
		return fmt.Errorf("mint a2: %w", err)
	}
	reg.PublishAsset(a2)
	fmt.Printf("   minted tokens #%d and #%d\n", a1.TokenID, a2.TokenID)

	fmt.Printf("-- phase 2: degrade every link (latency %v, jitter, %.0f%% drop) and transform\n",
		latency, drop*100)
	cl.Net.Plan().SetDefault(p2p.LinkProfile{
		Latency:  latency,
		Jitter:   latency,
		DropRate: drop,
	})
	agg, err := driver.Aggregate(alice, "alice", []*core.Asset{a1, a2})
	if err != nil {
		return fmt.Errorf("aggregate: %w", err)
	}
	reg.PublishTransform(agg, nil)
	fmt.Printf("   aggregated into token #%d despite losses\n", agg.Assets[0].TokenID)

	fmt.Println("-- phase 3: partition 3|4 with a mint in flight")
	members := p2p.MemberIDs(size)
	split := size / 2
	if split > 3 {
		split = 3
	}
	cl.Net.Plan().Partition(members[:split], members[split:])

	mintDone := make(chan error, 1)
	var a3 *core.Asset
	go func() {
		var err error
		a3, err = driver.MintAsset(alice, "alice", data(300), fr.MustRandom())
		mintDone <- err
	}()

	time.Sleep(1500 * time.Millisecond)
	printHeights(cl, "   heights during partition (production stalls — safety over liveness):")
	select {
	case err := <-mintDone:
		// Legal if the stall happened after this mint's block; the proofs
		// dominate latency, so usually the partition catches it.
		if err != nil {
			return fmt.Errorf("mint during partition: %w", err)
		}
		fmt.Println("   (mint squeezed in before the rotation stalled)")
	default:
		fmt.Println("   mint is blocked waiting for the partition to heal ...")
	}

	fmt.Println("-- phase 4: heal; sync reconciles, rotation resumes")
	cl.Net.Plan().Heal()
	if err := <-mintDone; err != nil {
		return fmt.Errorf("mint across heal: %w", err)
	}
	reg.PublishAsset(a3)
	fmt.Printf("   mint completed after heal: token #%d\n", a3.TokenID)

	fmt.Println("-- phase 5: escrow sale (settle carries π_k through every gossip hop)")
	bought, err := driver.SellViaEscrow(1, alice, bob, a3, core.TruePredicate{}, 500)
	if err != nil {
		return fmt.Errorf("escrow sale: %w", err)
	}
	if len(bought) != len(a3.Data) || !bought[0].Equal(&a3.Data[0]) {
		return fmt.Errorf("escrow sale delivered wrong plaintext")
	}
	fmt.Printf("   bob bought token #%d and decrypted %d elements\n", a3.TokenID, len(bought))

	fmt.Println("-- phase 6: cluster-wide convergence and lineage audit")
	head, err := cl.WaitConverged(ctx, 0)
	if err != nil {
		return err
	}
	h0 := cl.Nodes[0].Head()
	fmt.Printf("   converged: height %d, head %s\n", h0.Number, head)
	for i, n := range cl.Nodes {
		h := n.Head()
		if h.Hash() != head || h.StateRoot != h0.StateRoot {
			return fmt.Errorf("node %d diverged: head %s root %s", i, h.Hash(), h.StateRoot)
		}
	}
	fmt.Println("   state roots identical on every node")

	tokens := []uint64{a1.TokenID, a2.TokenID, agg.Assets[0].TokenID, a3.TokenID}
	for _, id := range tokens {
		want := ""
		for i, m := range mkts {
			rep, err := m.AuditLineage(reg, id)
			if err != nil {
				return fmt.Errorf("node %d audit of token #%d: %w", i, id, err)
			}
			got := fmt.Sprintf("%v/e%d/t%d", rep.Tokens, rep.EncryptionProofs, rep.TransformProofs)
			if i == 0 {
				want = got
			} else if got != want {
				return fmt.Errorf("token #%d: node %d audit %s != node 0 audit %s", id, i, got, want)
			}
		}
		fmt.Printf("   token #%d: identical AuditLineage on all %d nodes\n", id, size)
	}

	printHeights(cl, "-- final state:")
	sent, delivered, dropped, bytes := cl.Net.Stats()
	fmt.Printf("-- transport: %d sent, %d delivered, %d dropped (%.1f%%), %.1f MiB offered\n",
		sent, delivered, dropped, 100*float64(dropped)/float64(sent), float64(bytes)/(1<<20))
	fmt.Println("== ok ==")
	return nil
}

func printHeights(cl *p2p.Cluster, label string) {
	fmt.Println(label)
	for i, n := range cl.Nodes {
		s := n.Stats()
		ns := n.Inner().Stats()
		fmt.Printf("   node %d: height %-3d sealed %-2d imported %-3d pool %-2d gossip-in %d\n",
			i, n.Head().Number, s.BlocksSealed, ns.BlocksImported, ns.PoolSize, s.TxsAccepted)
	}
}
