// Command zkdet-lint runs the repo's static-analysis suite: five analyzers
// enforcing invariants the type system cannot see — canonical crypto
// comparisons, ceremony-secret hygiene, gas-metered state writes, annotated
// lock discipline, and panic-free library code. See DESIGN.md §9.
//
// Usage:
//
//	zkdet-lint [-only analyzer[,analyzer]] [packages]
//
// Packages default to ./... relative to the enclosing module. The exit
// status is 0 when clean, 1 when findings are reported, 2 on load errors.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/zkdet/zkdet/cmd/zkdet-lint/internal/lint"
)

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers and exit")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}
	if *only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(*only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fatalf("zkdet-lint: unknown analyzer %q", name)
		}
		analyzers = filtered
	}

	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}

	cwd, err := os.Getwd()
	if err != nil {
		fatalf("zkdet-lint: %v", err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatalf("zkdet-lint: %v", err)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatalf("zkdet-lint: %v", err)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, "")
		if err != nil {
			fatalf("zkdet-lint: %v", err)
		}
		pkgs = append(pkgs, pkg)
	}

	diags := lint.RunAnalyzers(pkgs, analyzers)
	for _, d := range diags {
		fmt.Println(d)
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "zkdet-lint: %d finding(s) in %d package(s)\n", len(diags), len(pkgs))
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
