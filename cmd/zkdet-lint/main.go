// Command zkdet-lint runs the repo's static-analysis suite: seven analyzers
// enforcing invariants the type system cannot see — canonical crypto
// comparisons, ceremony-secret hygiene, gas-metered state writes, annotated
// lock discipline, panic-free library code, and consensus-replay
// determinism — plus the circuit soundness auditor over every registered
// application circuit. See DESIGN.md §9 and §16.
//
// Usage:
//
//	zkdet-lint [-only analyzer[,analyzer]] [-json] [packages]
//	zkdet-lint -audit [-json]
//
// Packages default to ./... relative to the enclosing module. With -audit
// the source analyzers are skipped and every circuit in the audit registry
// is built and audited instead; findings are positioned as
// "circuit:<name>".
//
// Exit status:
//
//	0  clean
//	1  findings from more than one analyzer
//	2  load or usage error
//	3+ findings from exactly one analyzer — its dedicated code (see -list)
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strings"

	"github.com/zkdet/zkdet/cmd/zkdet-lint/internal/lint"
	"github.com/zkdet/zkdet/internal/circuit/audit"
	"github.com/zkdet/zkdet/internal/circuit/audit/registry"
)

// exitCodes maps each analyzer to its dedicated exit status, so CI jobs
// and scripts can tell *which* invariant failed without parsing output.
// Codes 0–2 are reserved (clean, mixed findings, load error).
var exitCodes = map[string]int{
	"cryptocompare": 3,
	"errcompare":    4,
	"secretscope":   5,
	"gaspurity":     6,
	"lockguard":     7,
	"panicfree":     8,
	"detreplay":     9,
	"audit":         10,
	"lint":          11, // malformed //lint:ignore directives
}

// jsonDiag is the machine-readable rendering of one finding.
type jsonDiag struct {
	File     string `json:"file"`
	Line     int    `json:"line"`
	Analyzer string `json:"analyzer"`
	Rule     string `json:"rule,omitempty"` // audit findings only
	Message  string `json:"message"`
}

func main() {
	only := flag.String("only", "", "comma-separated analyzer names to run (default: all)")
	list := flag.Bool("list", false, "list analyzers with their exit codes and exit")
	asJSON := flag.Bool("json", false, "emit findings as a JSON array on stdout")
	runAudit := flag.Bool("audit", false, "audit every registered circuit instead of running source analyzers")
	flag.Parse()

	analyzers := lint.All()
	if *list {
		for _, a := range analyzers {
			fmt.Printf("%-14s exit %-2d %s\n", a.Name, exitCodes[a.Name], a.Doc)
		}
		fmt.Printf("%-14s exit %-2d %s\n", "audit", exitCodes["audit"],
			"circuit soundness auditor over the registered application circuits (-audit)")
		return
	}

	var diags []jsonDiag
	if *runAudit {
		diags = auditCircuits()
	} else {
		diags = lintPackages(analyzers, *only, flag.Args())
	}

	render(diags, *asJSON)
	os.Exit(exitStatus(diags))
}

// lintPackages runs the source analyzers over the requested packages.
func lintPackages(analyzers []*lint.Analyzer, only string, patterns []string) []jsonDiag {
	if only != "" {
		keep := map[string]bool{}
		for _, name := range strings.Split(only, ",") {
			keep[strings.TrimSpace(name)] = true
		}
		var filtered []*lint.Analyzer
		for _, a := range analyzers {
			if keep[a.Name] {
				filtered = append(filtered, a)
				delete(keep, a.Name)
			}
		}
		for name := range keep {
			fatalf("zkdet-lint: unknown analyzer %q", name)
		}
		analyzers = filtered
	}

	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	cwd, err := os.Getwd()
	if err != nil {
		fatalf("zkdet-lint: %v", err)
	}
	loader, err := lint.NewLoader(cwd)
	if err != nil {
		fatalf("zkdet-lint: %v", err)
	}
	dirs, err := loader.Expand(patterns)
	if err != nil {
		fatalf("zkdet-lint: %v", err)
	}
	var pkgs []*lint.Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, "")
		if err != nil {
			fatalf("zkdet-lint: %v", err)
		}
		pkgs = append(pkgs, pkg)
	}

	var out []jsonDiag
	for _, d := range lint.RunAnalyzers(pkgs, analyzers) {
		out = append(out, jsonDiag{
			File:     d.Pos.Filename,
			Line:     d.Pos.Line,
			Analyzer: d.Analyzer,
			Message:  d.Message,
		})
	}
	return out
}

// auditCircuits builds every registry entry and audits its constraint
// system. A circuit that fails to build is itself a finding (the builder
// error would otherwise hide whatever the auditor might have said).
func auditCircuits() []jsonDiag {
	var out []jsonDiag
	for _, e := range registry.Entries() {
		info, err := e.Build()
		if err != nil {
			out = append(out, jsonDiag{
				File:     "circuit:" + e.Name,
				Analyzer: "audit",
				Rule:     audit.RuleBuilderError,
				Message:  err.Error(),
			})
			continue
		}
		for _, f := range audit.Circuit(info).Findings {
			out = append(out, jsonDiag{
				File:     "circuit:" + e.Name,
				Analyzer: "audit",
				Rule:     f.Rule,
				Message:  f.String(),
			})
		}
	}
	return out
}

// render prints the findings, as text lines or one JSON array.
func render(diags []jsonDiag, asJSON bool) {
	if asJSON {
		if diags == nil {
			diags = []jsonDiag{} // emit [] rather than null
		}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(diags); err != nil {
			fatalf("zkdet-lint: %v", err)
		}
		return
	}
	for _, d := range diags {
		if d.Line > 0 {
			fmt.Printf("%s:%d: %s: %s\n", d.File, d.Line, d.Analyzer, d.Message)
		} else {
			fmt.Printf("%s: %s: %s\n", d.File, d.Analyzer, d.Message)
		}
	}
	if len(diags) > 0 {
		fmt.Fprintf(os.Stderr, "zkdet-lint: %d finding(s)\n", len(diags))
	}
}

// exitStatus picks the process exit code: 0 when clean, the offending
// analyzer's dedicated code when exactly one analyzer reported, 1 when
// several did.
func exitStatus(diags []jsonDiag) int {
	if len(diags) == 0 {
		return 0
	}
	names := map[string]bool{}
	for _, d := range diags {
		names[d.Analyzer] = true
	}
	if len(names) == 1 {
		for name := range names {
			if code, ok := exitCodes[name]; ok {
				return code
			}
		}
	}
	return 1
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(2)
}
