// Package fixture exercises the detreplay analyzer: consensus-replay
// determinism. Each `// want` comment marks an expected finding; the
// unannotated code is the calibrated order-independent idiom set that
// must stay silent.
package fixture

import (
	"sort"
	"time"
)

type state struct {
	balances map[string]uint64
	events   []string
	now      func() time.Time
}

// --- map iteration order -------------------------------------------------

func appendUnsorted(s *state) []string {
	var out []string
	for k := range s.balances {
		out = append(out, k) // want "append to out accumulates in map iteration order"
	}
	return out
}

func appendThenSort(s *state) []string {
	var out []string
	for k := range s.balances {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

func lastWriteWins(s *state) string {
	var winner string
	for k := range s.balances {
		winner = k + "!" // want "assignment to winner inside a map range is last-write-wins"
	}
	return winner
}

func keyedWritesAreFine(s *state, dst map[string]uint64) {
	for k, v := range s.balances {
		dst[k] = v + 1
	}
}

func commutativeFoldIsFine(s *state) uint64 {
	var total uint64
	for _, v := range s.balances {
		total += v
	}
	return total
}

func constantStoreIsFine(s *state) bool {
	found := false
	for _, v := range s.balances {
		if v == 0 {
			found = true
		}
	}
	return found
}

func loopLocalIsFine(s *state, dst map[string][]byte) {
	for k, v := range s.balances {
		buf := make([]byte, 8)
		buf[0] = byte(v)
		dst[k] = buf
	}
}

func deleteIsFine(s *state) {
	for k, v := range s.balances {
		if v == 0 {
			delete(s.balances, k)
		}
	}
}

func iterationDependentReturn(s *state) string {
	for k, v := range s.balances {
		if v > 100 {
			return k // want "returning an iteration-dependent value from a map range"
		}
	}
	return ""
}

func closureCallInMapRange(s *state) {
	var log []string
	record := func(e string) { log = append(log, e) }
	for k := range s.balances {
		record(k) // want "closure record called from a map range"
	}
}

// --- wall clock and randomness ------------------------------------------

func rawClock(s *state) int64 {
	return time.Now().Unix() // want "direct time.Now"
}

func injectedClockIsFine() *state {
	return &state{now: time.Now} // wiring the default clock is the sanctioned idiom
}

func usingInjectedClockIsFine(s *state) int64 {
	return s.now().Unix()
}

// --- goroutine completion order ------------------------------------------

func goroutineAppend(s *state, done chan struct{}) {
	for i := 0; i < 4; i++ {
		go func() {
			s.events = append(s.events, "tick") // want "append to captured s.events from a goroutine"
			done <- struct{}{}
		}()
	}
}

func goroutineIndexedWriteIsFine(out []uint64, done chan struct{}) {
	for i := 0; i < len(out); i++ {
		i := i
		go func() {
			out[i] = uint64(i) // disjoint indices: order-independent
			done <- struct{}{}
		}()
	}
}

func suppressedWithJustification(s *state) string {
	var winner string
	for k := range s.balances {
		//lint:ignore detreplay fixture: demonstrates a justified suppression
		winner = k
	}
	return winner
}
