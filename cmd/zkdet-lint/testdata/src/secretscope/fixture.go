// Package kzg (fixture) seeds positive and negative cases for the
// secretscope analyzer, which only fires inside the trusted-setup package.
package kzg

import (
	"crypto/rand"

	"github.com/zkdet/zkdet/internal/fr"
)

// Updater mimics a ceremony accumulator.
type Updater struct {
	stash fr.Element
}

// leakByReturn derives a secret and returns it: the classic toxic-waste
// leak.
func leakByReturn() fr.Element {
	tau := fr.MustRandom()
	return tau // want `ceremony secret "tau" is returned`
}

// leakByStore parks the secret in a long-lived struct.
func (u *Updater) leakByStore() {
	s := fr.MustRandom()
	u.stash = s // want `ceremony secret "s" escapes`
}

// neverZeroized uses the secret and silently drops it on the floor — the
// frame (and any spilled copy) still holds it.
func neverZeroized(base *fr.Element) fr.Element {
	s := fr.MustRandom() // want `ceremony secret "s" is never zeroized`
	var out fr.Element
	out.Mul(base, &s)
	return out
}

// errPathSecret covers the two-value fr.Random form.
func errPathSecret() error {
	s, err := fr.Random(rand.Reader) // want `ceremony secret "s" is never zeroized`
	if err != nil {
		return err
	}
	var sink fr.Element
	sink.Add(&sink, &s)
	return nil
}

// powersAreSecret propagates secrecy through fr.Powers.
func powersAreSecret() {
	s := fr.MustRandom()
	ps := fr.Powers(&s, 8) // want `ceremony secret "ps" is never zeroized`
	_ = ps
	s.SetZero()
}

// markedToxic shows the annotation route for indirectly-derived secrets.
func markedToxic(entropy []byte) {
	// toxic: hashed contributor entropy
	s := fr.FromBytes(entropy) // want `ceremony secret "s" is never zeroized`
	var sink fr.Element
	sink.Add(&sink, &s)
}

// Negative cases.

// cleanUpdate derives, uses and destroys the secret: the required shape.
func cleanUpdate(base *fr.Element) fr.Element {
	s := fr.MustRandom()
	defer s.SetZero()
	var out fr.Element
	out.Mul(base, &s)
	return out
}

// cleanViaHelper destroys the secret through a zeroize helper.
func cleanViaHelper() {
	s := fr.MustRandom()
	ps := fr.Powers(&s, 4)
	zeroizeScalars(ps)
	s.SetZero()
}

// zeroizeScalars wipes a secret-bearing slice.
func zeroizeScalars(xs []fr.Element) {
	for i := range xs {
		xs[i].SetZero()
	}
}

// publicRandomness outside package kzg would not be checked at all; here it
// still must be zeroized, proving the analyzer keys on derivation, not
// variable names.
func publicRandomness() {
	combiner := fr.MustRandom()
	defer combiner.SetZero()
	var acc fr.Element
	acc.Mul(&acc, &combiner)
}
