// Package fixture seeds positive and negative cases for the lockguard
// analyzer: fields annotated "guarded by mu" must be accessed under the
// named mutex.
package fixture

import "sync"

// Counter is the annotated struct under test.
type Counter struct {
	mu sync.Mutex
	// guarded by mu
	n int
	// guarded by mu
	names map[string]int

	unguarded int
}

// RW exercises RWMutex and a trailing-comment annotation.
type RW struct {
	mu   sync.RWMutex
	data []int // guarded by mu
}

// badRead reads a guarded field lock-free.
func badRead(c *Counter) int {
	return c.n // want "c.n is guarded by c.mu"
}

// badWrite writes one lock-free.
func badWrite(c *Counter) {
	c.n++ // want "c.n is guarded by c.mu"
}

// badAfterUnlock touches the field after releasing.
func badAfterUnlock(c *Counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.names["x"]++ // want "c.names is guarded by c.mu"
}

// badBranchLeak releases in one arm and still falls through to an access.
func badBranchLeak(c *Counter, cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
	} else {
		c.n++
	}
	c.n++ // want "c.n is guarded by c.mu"
	c.mu.Unlock()
}

// badGoroutine captures the receiver into an unlocked goroutine.
func badGoroutine(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "c.n is guarded by c.mu"
	}()
}

// Negative cases.

// goodLocked holds the lock across the access.
func goodLocked(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// goodEarlyReturn unlocks on the bail-out path only; the fall-through still
// holds the lock.
func goodEarlyReturn(c *Counter, stop bool) {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

// goodRLock accepts a read lock for reads.
func goodRLock(r *RW) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.data)
}

// bumpLocked is exempt by naming convention: the caller holds c.mu.
func bumpLocked(c *Counter) {
	c.n++
}

// bumpDocumented is exempt by doc convention; caller holds c.mu.
func bumpDocumented(c *Counter) {
	c.n++
}

// NewCounter initializes guarded fields before the value is shared.
func NewCounter() *Counter {
	c := &Counter{names: make(map[string]int)}
	c.n = 1
	return c
}

// unguardedAccess is free to touch unannotated fields.
func unguardedAccess(c *Counter) int {
	return c.unguarded
}

// goodClosureLocks shows a literal that takes the lock for itself.
func goodClosureLocks(c *Counter) func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}

// Commit-phase cases, modeled on the chain's parallel batch executor:
// speculation workers run lock-free over frozen pre-state, then a single
// commit phase applies effects under the engine lock, leaning on the two
// annotation escapes ("Locked" suffix, "caller holds" doc) for its helpers.

// Engine is the two-phase executor shape: both maps belong to the commit
// phase and carry commit-phase locking annotations.
type Engine struct {
	mu sync.Mutex
	// guarded by mu; written only by the commit phase, in batch order
	state map[string]int
	// guarded by mu; effects awaiting commit-time validation
	pending []int
}

// badSpeculativeCommit applies an effect without entering the commit phase.
func badSpeculativeCommit(e *Engine) {
	e.state["x"] = 1 // want "e.state is guarded by e.mu"
}

// badWorkerLeak is the bug the commit-phase convention exists to prevent: a
// speculation worker (a goroutine literal, analyzed lock-free) touching
// commit-phase state directly instead of its own overlay.
func badWorkerLeak(e *Engine) {
	go func() {
		e.pending = nil // want "e.pending is guarded by e.mu"
	}()
}

// applyLocked is the commit-phase helper convention: the "Locked" suffix
// asserts the caller already holds e.mu, so its accesses pass unflagged.
func applyLocked(e *Engine, k string, v int) {
	e.state[k] = v
	e.pending = e.pending[:0]
}

// validateEffect runs inside the commit loop; caller holds e.mu for the
// whole validate-and-apply sequence.
func validateEffect(e *Engine, i int) bool {
	return i < len(e.pending)
}

// goodCommitPhase drives the canonical sequence: one lock acquisition spans
// validation, Locked helpers, and direct writes; workers spawned after the
// commit re-lock for themselves.
func goodCommitPhase(e *Engine, ks []string) {
	e.mu.Lock()
	for i, k := range ks {
		if !validateEffect(e, i) {
			continue
		}
		applyLocked(e, k, i)
		e.state[k] = i
	}
	e.mu.Unlock()
	go func() {
		e.mu.Lock()
		e.state["sealed"] = 1
		e.mu.Unlock()
	}()
}

// txOverlay is the per-transaction view shape: it reaches the engine's
// guarded maps through a stored pointer, so its accesses are two-level
// selectors (v.e.state) outside lockguard's single-receiver scope. The
// engine documents those paths with "caller holds" comments instead; this
// pins that the analyzer stays silent rather than guessing.
type txOverlay struct{ e *Engine }

// baseRead reads through to committed state; caller holds e.mu (documented,
// not analyzable — the access below must not be flagged).
func (v *txOverlay) baseRead(k string) int {
	return v.e.state[k]
}
