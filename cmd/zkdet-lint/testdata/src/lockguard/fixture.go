// Package fixture seeds positive and negative cases for the lockguard
// analyzer: fields annotated "guarded by mu" must be accessed under the
// named mutex.
package fixture

import "sync"

// Counter is the annotated struct under test.
type Counter struct {
	mu sync.Mutex
	// guarded by mu
	n int
	// guarded by mu
	names map[string]int

	unguarded int
}

// RW exercises RWMutex and a trailing-comment annotation.
type RW struct {
	mu   sync.RWMutex
	data []int // guarded by mu
}

// badRead reads a guarded field lock-free.
func badRead(c *Counter) int {
	return c.n // want "c.n is guarded by c.mu"
}

// badWrite writes one lock-free.
func badWrite(c *Counter) {
	c.n++ // want "c.n is guarded by c.mu"
}

// badAfterUnlock touches the field after releasing.
func badAfterUnlock(c *Counter) {
	c.mu.Lock()
	c.n++
	c.mu.Unlock()
	c.names["x"]++ // want "c.names is guarded by c.mu"
}

// badBranchLeak releases in one arm and still falls through to an access.
func badBranchLeak(c *Counter, cond bool) {
	c.mu.Lock()
	if cond {
		c.mu.Unlock()
	} else {
		c.n++
	}
	c.n++ // want "c.n is guarded by c.mu"
	c.mu.Unlock()
}

// badGoroutine captures the receiver into an unlocked goroutine.
func badGoroutine(c *Counter) {
	c.mu.Lock()
	defer c.mu.Unlock()
	go func() {
		c.n++ // want "c.n is guarded by c.mu"
	}()
}

// Negative cases.

// goodLocked holds the lock across the access.
func goodLocked(c *Counter) int {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.n++
	return c.n
}

// goodEarlyReturn unlocks on the bail-out path only; the fall-through still
// holds the lock.
func goodEarlyReturn(c *Counter, stop bool) {
	c.mu.Lock()
	if stop {
		c.mu.Unlock()
		return
	}
	c.n++
	c.mu.Unlock()
}

// goodRLock accepts a read lock for reads.
func goodRLock(r *RW) int {
	r.mu.RLock()
	defer r.mu.RUnlock()
	return len(r.data)
}

// bumpLocked is exempt by naming convention: the caller holds c.mu.
func bumpLocked(c *Counter) {
	c.n++
}

// bumpDocumented is exempt by doc convention; caller holds c.mu.
func bumpDocumented(c *Counter) {
	c.n++
}

// NewCounter initializes guarded fields before the value is shared.
func NewCounter() *Counter {
	c := &Counter{names: make(map[string]int)}
	c.n = 1
	return c
}

// unguardedAccess is free to touch unannotated fields.
func unguardedAccess(c *Counter) int {
	return c.unguarded
}

// goodClosureLocks shows a literal that takes the lock for itself.
func goodClosureLocks(c *Counter) func() {
	return func() {
		c.mu.Lock()
		defer c.mu.Unlock()
		c.n++
	}
}
