// Package fixture seeds positive and negative cases for the errcompare
// analyzer. It is excluded from the build (testdata) but must type-check.
package fixture

import (
	"errors"
	"fmt"
	"io"
)

var ErrNotFound = errors.New("not found")

type opError struct{ op string }

func (e *opError) Error() string { return e.op }

func rawSentinelEq(err error) bool {
	return err == ErrNotFound // want "raw == against sentinel ErrNotFound"
}

func rawSentinelNeq(err error) bool {
	if err != ErrNotFound { // want "raw != against sentinel ErrNotFound"
		return true
	}
	return false
}

func rawStdlibSentinel(err error) bool {
	return err == io.EOF // want "raw == against sentinel EOF"
}

func rawSentinelReversed(err error) bool {
	return ErrNotFound == err // want "raw == against sentinel ErrNotFound"
}

func rawErrPair(a, b error) bool {
	return a == b // want "raw == between error values"
}

func rawConcreteVsInterface(err error, oe *opError) bool {
	return err == oe // want "raw == between error values"
}

// Negative cases: the canonical paths and exempt shapes.

func canonicalIs(err error) bool {
	return errors.Is(err, ErrNotFound) // ok: walks the wrap chain
}

func canonicalAs(err error) bool {
	var oe *opError
	return errors.As(err, &oe) // ok
}

func nilPresence(err error) bool {
	return err != nil // ok: idiomatic presence test
}

func nilPresenceReversed(err error) bool {
	return nil == err // ok
}

func wrapped(err error) error {
	return fmt.Errorf("loading: %w", err) // ok: no comparison at all
}

func stringCompare(a, b string) bool {
	return a == b // ok: not error values
}

func concretePtrIdentity(a, b *opError) bool {
	return a == b // want "raw == between error values"
}
