// Package contracts (fixture) seeds positive and negative cases for the
// gaspurity analyzer, which only fires inside the contracts package.
package contracts

import (
	"github.com/zkdet/zkdet/internal/chain"
)

// discardedSet drops the SSTORE error: an out-of-gas would not abort.
func discardedSet(ctx *chain.CallContext) {
	ctx.Store.Set("slot", []byte{1}) // want "discarded error of metered operation Set"
}

// discardedDelete drops the clear error.
func discardedDelete(ctx *chain.CallContext) {
	ctx.Store.Delete("slot") // want "discarded error of metered operation Delete"
}

// blankCharge launders the out-of-gas signal into the blank identifier.
func blankCharge(ctx *chain.CallContext) {
	_ = ctx.Gas.Charge(5000) // want "metered operation Charge assigned to blank"
}

// discardedEmit drops log-gas accounting.
func discardedEmit(ctx *chain.CallContext) {
	ctx.EmitIndexed("Transfer", nil, nil) // want "discarded error of metered operation EmitIndexed"
}

// shadowStore writes outside the meter entirely.
func shadowStore() *chain.Storage {
	s := chain.NewStorage() // want "unmetered store"
	return s
}

// Negative cases: the required shapes.

// properSet checks every metered error.
func properSet(ctx *chain.CallContext) error {
	if err := ctx.Gas.Charge(100); err != nil {
		return err
	}
	if err := ctx.Store.Set("slot", []byte{1}); err != nil {
		return err
	}
	return ctx.Emit("Stored", nil)
}

// readsAreFine ignores a read result only for the value, not the error.
func readsAreFine(ctx *chain.CallContext) ([]byte, error) {
	return ctx.Store.Get("slot")
}
