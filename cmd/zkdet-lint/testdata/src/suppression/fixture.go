// Package fixture exercises the //lint:ignore machinery: a justified
// suppression silences a finding, a bare one is itself reported, and an
// unsuppressed finding still fires.
package fixture

// justified carries a reason, so its panic is silenced.
func justified(n int) int {
	if n < 0 {
		//lint:ignore panicfree exponent sign is a compile-time invariant at every call site
		panic("negative")
	}
	return n
}

// bare has no justification: the directive itself is the finding.
func bare(n int) int {
	if n < 0 {
		//lint:ignore panicfree
		panic("negative")
	}
	return n
}

// unsuppressed still fires normally.
func unsuppressed(n int) int {
	if n < 0 {
		panic("negative")
	}
	return n
}
