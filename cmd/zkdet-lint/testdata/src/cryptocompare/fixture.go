// Package fixture seeds positive and negative cases for the cryptocompare
// analyzer. It is excluded from the build (testdata) but must type-check.
package fixture

import (
	"reflect"

	"github.com/zkdet/zkdet/internal/bn254"
	"github.com/zkdet/zkdet/internal/fr"
)

func rawElementCompare(a, b fr.Element) bool {
	return a == b // want "raw == on fr.Element"
}

func rawElementNotEqual(a, b fr.Element) bool {
	if a != b { // want "raw != on fr.Element"
		return true
	}
	return false
}

func rawPointCompare(p, q bn254.G1Affine) bool {
	return p == q // want "raw == on bn254.G1Affine"
}

func rawZeroCompare(a fr.Element) bool {
	return a == fr.Zero() // want "raw == on fr.Element"
}

func deepEqualElements(a, b []fr.Element) bool {
	return reflect.DeepEqual(a, b) // ok: slice, not a bare protected value
}

func deepEqualElement(a, b fr.Element) bool {
	return reflect.DeepEqual(a, b) // want "reflect.DeepEqual on fr.Element"
}

func deepEqualPointPtr(p, q *bn254.G2Affine) bool {
	return reflect.DeepEqual(p, q) // want "reflect.DeepEqual on bn254.G2Affine"
}

// Negative cases: the canonical paths and non-protected comparisons.

func canonicalCompare(a, b fr.Element) bool {
	return a.Equal(&b) // ok: canonical path
}

func pointerIdentity(a, b *fr.Element) bool {
	return a == b // ok: pointer identity, not value comparison
}

func nilCheck(a *bn254.G1Affine) bool {
	return a == nil // ok
}

func basicCompare(a, b int) bool {
	return a == b // ok: not a protected type
}

func constCompare(n int) bool {
	return n == fr.Bytes // ok: untyped constant from fr, not a struct
}
