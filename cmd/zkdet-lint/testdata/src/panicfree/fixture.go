// Package fixture seeds positive and negative cases for the panicfree
// analyzer: library code returns errors; panics belong to init and Must*
// constructors.
package fixture

import (
	"errors"
	"fmt"
)

var table []int

func init() {
	if len(table) > 0 {
		panic("impossible") // ok: init may panic on programmer error
	}
}

// Decode is library surface reachable from user input.
func Decode(b []byte) (int, error) {
	if len(b) == 0 {
		panic("empty input") // want "panic in library function Decode"
	}
	return int(b[0]), nil
}

// helper panics deep in a call chain; still flagged.
func helper(n int) int {
	switch {
	case n < 0:
		panic(fmt.Sprintf("negative %d", n)) // want "panic in library function helper"
	}
	return n
}

// MustDecode is the documented panicking wrapper: allowed.
func MustDecode(b []byte) int {
	v, err := DecodeSafe(b)
	if err != nil {
		panic(err) // ok: Must* constructor
	}
	return v
}

// mustIndex is the unexported spelling of the same convention.
func mustIndex(n int) int {
	if n < 0 {
		panic("bad index") // ok: must* helper
	}
	return n
}

// DecodeSafe is the required shape.
func DecodeSafe(b []byte) (int, error) {
	if len(b) == 0 {
		return 0, errors.New("empty input")
	}
	return int(b[0]), nil
}
