package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// LockGuard is the annotation-driven lock-discipline checker. Struct fields
// carrying a
//
//	// guarded by <mutexField>
//
// comment (doc or trailing) may only be accessed while the named mutex of
// the same receiver is held. The checker walks each function linearly,
// tracking Lock/RLock/Unlock/RUnlock calls per receiver variable, with
// branch-aware state: an if-branch that returns does not poison the
// fall-through state, loop and case bodies are checked under the state at
// entry, and deferred unlocks keep the lock held to the end of the
// function.
//
// Escape hatches, for helpers that run under a caller's lock:
//   - functions whose name ends in "Locked", and
//   - functions whose doc comment contains "caller holds",
//
// are assumed to be called with the lock held. Function literals are
// analyzed with no locks held (they typically run on other goroutines);
// literals that lock for themselves pass naturally.
var LockGuard = &Analyzer{
	Name: "lockguard",
	Doc:  "fields annotated 'guarded by mu' must only be accessed with the named mutex held",
	Run:  runLockGuard,
}

// guardKey identifies "variable v's mutex named mu".
type guardKey struct {
	obj types.Object
	mu  string
}

type lockState map[guardKey]bool

func (s lockState) clone() lockState {
	c := make(lockState, len(s))
	for k, v := range s {
		c[k] = v
	}
	return c
}

// collectGuardedFields maps annotated field objects to their mutex name.
func collectGuardedFields(pass *Pass) map[types.Object]string {
	guarded := map[types.Object]string{}
	note := func(field *ast.Field, cg *ast.CommentGroup) {
		if cg == nil {
			return
		}
		for _, c := range cg.List {
			idx := strings.Index(c.Text, "guarded by ")
			if idx < 0 {
				continue
			}
			mu := strings.Fields(c.Text[idx+len("guarded by "):])
			if len(mu) == 0 {
				continue
			}
			name := strings.TrimRight(mu[0], ".,;")
			for _, id := range field.Names {
				if obj := pass.Pkg.Info.Defs[id]; obj != nil {
					guarded[obj] = name
				}
			}
		}
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				note(field, field.Doc)
				note(field, field.Comment)
			}
			return true
		})
	}
	return guarded
}

func runLockGuard(pass *Pass) {
	guarded := collectGuardedFields(pass)
	if len(guarded) == 0 {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if strings.HasSuffix(fn.Name.Name, "Locked") {
				continue
			}
			if fn.Doc != nil && strings.Contains(strings.ToLower(fn.Doc.Text()), "caller holds") {
				continue
			}
			w := &lockWalker{pass: pass, guarded: guarded, fn: fn}
			w.walkStmts(fn.Body.List, lockState{})
		}
	}
}

type lockWalker struct {
	pass    *Pass
	guarded map[types.Object]string
	fn      *ast.FuncDecl
}

// lockOp decodes statements of the form v.<mu>.Lock() / RLock / Unlock /
// RUnlock, returning the guard key and whether the op acquires.
func (w *lockWalker) lockOp(call *ast.CallExpr) (guardKey, bool, bool) {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok {
		return guardKey{}, false, false
	}
	var acquire bool
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquire = true
	case "Unlock", "RUnlock":
		acquire = false
	default:
		return guardKey{}, false, false
	}
	muSel, ok := sel.X.(*ast.SelectorExpr)
	if !ok {
		return guardKey{}, false, false
	}
	recv, ok := muSel.X.(*ast.Ident)
	if !ok {
		return guardKey{}, false, false
	}
	obj := w.pass.Pkg.Info.Uses[recv]
	if obj == nil {
		return guardKey{}, false, false
	}
	return guardKey{obj: obj, mu: muSel.Sel.Name}, acquire, true
}

// checkExpr reports guarded-field accesses in expr that happen while the
// required lock is not held. Function literals are skipped here; the
// statement walker analyzes them with a fresh state.
func (w *lockWalker) checkExpr(expr ast.Expr, state lockState) {
	if expr == nil {
		return
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		fieldObj := w.pass.Pkg.Info.Uses[sel.Sel]
		if fieldObj == nil {
			return true
		}
		mu, isGuarded := w.guarded[fieldObj]
		if !isGuarded {
			return true
		}
		recv, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		recvObj := w.pass.Pkg.Info.Uses[recv]
		if recvObj == nil {
			return true
		}
		// A value constructed inside this function is not yet shared;
		// constructors may initialize guarded fields lock-free.
		if within(recvObj.Pos(), w.fn.Body) {
			return true
		}
		if !state[guardKey{obj: recvObj, mu: mu}] {
			w.pass.Reportf(sel.Sel.Pos(), "%s.%s is guarded by %s.%s but accessed without holding it",
				recv.Name, sel.Sel.Name, recv.Name, mu)
		}
		return true
	})
}

// walkFuncLit analyzes a function literal with no locks held.
func (w *lockWalker) walkFuncLit(lit *ast.FuncLit) {
	w.walkStmts(lit.Body.List, lockState{})
}

// funcLits collects the function literals directly inside expr.
func funcLits(expr ast.Expr) []*ast.FuncLit {
	var lits []*ast.FuncLit
	if expr == nil {
		return nil
	}
	ast.Inspect(expr, func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok {
			lits = append(lits, lit)
			return false
		}
		return true
	})
	return lits
}

// walkStmts processes a statement list under state, mutating it as locks
// are taken and released. It returns whether the list definitely
// terminates (ends in return or panic), which lets if-branches that bail
// out early keep the fall-through state clean.
func (w *lockWalker) walkStmts(stmts []ast.Stmt, state lockState) bool {
	terminated := false
	for _, stmt := range stmts {
		if terminated {
			// Unreachable code; stop tracking rather than guess.
			return true
		}
		switch s := stmt.(type) {
		case *ast.ExprStmt:
			if call, ok := s.X.(*ast.CallExpr); ok {
				if key, acquire, isOp := w.lockOp(call); isOp {
					if acquire {
						state[key] = true
					} else {
						delete(state, key)
					}
					continue
				}
				if isPanicCall(call) {
					w.checkExpr(s.X, state)
					terminated = true
					continue
				}
			}
			w.checkExpr(s.X, state)
			for _, lit := range funcLits(s.X) {
				w.walkFuncLit(lit)
			}
		case *ast.AssignStmt:
			for _, e := range s.Rhs {
				w.checkExpr(e, state)
				for _, lit := range funcLits(e) {
					w.walkFuncLit(lit)
				}
			}
			for _, e := range s.Lhs {
				w.checkExpr(e, state)
			}
		case *ast.IncDecStmt:
			w.checkExpr(s.X, state)
		case *ast.DeferStmt:
			// A deferred unlock keeps the lock held through every return
			// below; anything else deferred runs with an unknowable state,
			// so analyze literals conservatively lock-free.
			if _, _, isOp := w.lockOp(s.Call); isOp {
				continue
			}
			for _, lit := range funcLits(s.Call.Fun) {
				w.walkFuncLit(lit)
			}
			for _, arg := range s.Call.Args {
				w.checkExpr(arg, state)
			}
		case *ast.GoStmt:
			for _, lit := range funcLits(s.Call.Fun) {
				w.walkFuncLit(lit)
			}
			for _, arg := range s.Call.Args {
				w.checkExpr(arg, state)
			}
		case *ast.ReturnStmt:
			for _, e := range s.Results {
				w.checkExpr(e, state)
			}
			terminated = true
		case *ast.BlockStmt:
			terminated = w.walkStmts(s.List, state)
		case *ast.IfStmt:
			w.walkIf(s, state)
		case *ast.ForStmt:
			if s.Init != nil {
				w.walkStmts([]ast.Stmt{s.Init}, state)
			}
			w.checkExpr(s.Cond, state)
			w.walkStmts(s.Body.List, state.clone())
		case *ast.RangeStmt:
			w.checkExpr(s.X, state)
			w.walkStmts(s.Body.List, state.clone())
		case *ast.SwitchStmt:
			if s.Init != nil {
				w.walkStmts([]ast.Stmt{s.Init}, state)
			}
			w.checkExpr(s.Tag, state)
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					for _, e := range cc.List {
						w.checkExpr(e, state)
					}
					w.walkStmts(cc.Body, state.clone())
				}
			}
		case *ast.TypeSwitchStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CaseClause); ok {
					w.walkStmts(cc.Body, state.clone())
				}
			}
		case *ast.SelectStmt:
			for _, c := range s.Body.List {
				if cc, ok := c.(*ast.CommClause); ok {
					if cc.Comm != nil {
						w.walkStmts([]ast.Stmt{cc.Comm}, state.clone())
					}
					w.walkStmts(cc.Body, state.clone())
				}
			}
		case *ast.SendStmt:
			w.checkExpr(s.Chan, state)
			w.checkExpr(s.Value, state)
		case *ast.LabeledStmt:
			terminated = w.walkStmts([]ast.Stmt{s.Stmt}, state)
		case *ast.DeclStmt:
			if gd, ok := s.Decl.(*ast.GenDecl); ok {
				for _, spec := range gd.Specs {
					if vs, ok := spec.(*ast.ValueSpec); ok {
						for _, v := range vs.Values {
							w.checkExpr(v, state)
						}
					}
				}
			}
		}
	}
	return terminated
}

// walkIf handles branch state: each arm runs on a copy; an arm that
// terminates (returns/panics) contributes nothing to the fall-through
// state, otherwise the conservative merge keeps only locks held on every
// surviving path.
func (w *lockWalker) walkIf(s *ast.IfStmt, state lockState) {
	if s.Init != nil {
		w.walkStmts([]ast.Stmt{s.Init}, state)
	}
	w.checkExpr(s.Cond, state)
	bodyState := state.clone()
	bodyTerm := w.walkStmts(s.Body.List, bodyState)
	var elseState lockState
	elseTerm := false
	if s.Else != nil {
		elseState = state.clone()
		elseTerm = w.walkStmts([]ast.Stmt{s.Else}, elseState)
	}
	switch {
	case s.Else == nil:
		if !bodyTerm {
			intersect(state, bodyState)
		}
	case bodyTerm && !elseTerm:
		replace(state, elseState)
	case elseTerm && !bodyTerm:
		replace(state, bodyState)
	case !bodyTerm && !elseTerm:
		replace(state, bodyState)
		intersect(state, elseState)
	}
}

func intersect(dst, other lockState) {
	for k := range dst {
		if !other[k] {
			delete(dst, k)
		}
	}
}

func replace(dst, src lockState) {
	for k := range dst {
		delete(dst, k)
	}
	for k, v := range src {
		dst[k] = v
	}
}

func isPanicCall(call *ast.CallExpr) bool {
	id, ok := call.Fun.(*ast.Ident)
	return ok && id.Name == "panic"
}
