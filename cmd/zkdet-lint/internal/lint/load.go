package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Package is one loaded, type-checked package: the unit analyzers run over.
type Package struct {
	// Path is the package's import path (module-relative packages use the
	// full module path; fixtures use a synthetic "fixture/..." path).
	Path string
	// Dir is the directory the source files were read from.
	Dir   string
	Fset  *token.FileSet
	Files []*ast.File
	Types *types.Package
	Info  *types.Info
}

// Loader discovers, parses and type-checks module packages using only the
// standard library: module-internal imports resolve against the go.mod
// module path, everything else (the standard library) goes through the
// go/importer source importer. No GOPATH placement or build cache is needed.
type Loader struct {
	Fset       *token.FileSet
	ModulePath string
	ModuleRoot string

	std    types.Importer
	loaded map[string]*Package
	types  map[string]*types.Package
}

// NewLoader returns a loader rooted at the module containing dir.
func NewLoader(dir string) (*Loader, error) {
	root, modPath, err := findModule(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	return &Loader{
		Fset:       fset,
		ModulePath: modPath,
		ModuleRoot: root,
		std:        importer.ForCompiler(fset, "source", nil),
		loaded:     map[string]*Package{},
		types:      map[string]*types.Package{},
	}, nil
}

// findModule walks up from dir to the enclosing go.mod and returns the
// module root and module path.
func findModule(dir string) (root, modPath string, err error) {
	d, err := filepath.Abs(dir)
	if err != nil {
		return "", "", err
	}
	for {
		data, err := os.ReadFile(filepath.Join(d, "go.mod"))
		if err == nil {
			for _, line := range strings.Split(string(data), "\n") {
				line = strings.TrimSpace(line)
				if rest, ok := strings.CutPrefix(line, "module "); ok {
					return d, strings.TrimSpace(rest), nil
				}
			}
			return "", "", fmt.Errorf("lint: %s/go.mod has no module directive", d)
		}
		parent := filepath.Dir(d)
		if parent == d {
			return "", "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		d = parent
	}
}

// Expand resolves command-line package patterns ("./...", "./internal/kzg")
// into module package directories, skipping testdata, hidden and vendor
// directories.
func (l *Loader) Expand(patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(dir string) {
		if !seen[dir] && hasGoFiles(dir) {
			seen[dir] = true
			dirs = append(dirs, dir)
		}
	}
	for _, pat := range patterns {
		recursive := false
		if rest, ok := strings.CutSuffix(pat, "/..."); ok {
			recursive = true
			pat = rest
		}
		if pat == "." || pat == "./" {
			pat = l.ModuleRoot
		}
		base := pat
		if !filepath.IsAbs(base) {
			base = filepath.Join(l.ModuleRoot, base)
		}
		if !recursive {
			add(base)
			continue
		}
		err := filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") ||
				name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			add(path)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

func hasGoFiles(dir string) bool {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return false
	}
	for _, e := range ents {
		if !e.IsDir() && strings.HasSuffix(e.Name(), ".go") && !strings.HasSuffix(e.Name(), "_test.go") {
			return true
		}
	}
	return false
}

// importPathFor maps a module directory to its import path.
func (l *Loader) importPathFor(dir string) (string, error) {
	rel, err := filepath.Rel(l.ModuleRoot, dir)
	if err != nil {
		return "", err
	}
	if rel == "." {
		return l.ModulePath, nil
	}
	if strings.HasPrefix(rel, "..") {
		return "", fmt.Errorf("lint: %s is outside module %s", dir, l.ModuleRoot)
	}
	return l.ModulePath + "/" + filepath.ToSlash(rel), nil
}

// LoadDir parses and type-checks the package in dir under the given import
// path (pass "" to derive it from the module layout). Results are memoized
// by import path.
func (l *Loader) LoadDir(dir, path string) (*Package, error) {
	if path == "" {
		p, err := l.importPathFor(dir)
		if err != nil {
			return nil, err
		}
		path = p
	}
	if pkg, ok := l.loaded[path]; ok {
		return pkg, nil
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range ents {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(l.Fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("lint: no Go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
		Scopes:     map[ast.Node]*types.Scope{},
	}
	conf := types.Config{Importer: (*lintImporter)(l)}
	tpkg, err := conf.Check(path, l.Fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("lint: type-checking %s: %w", path, err)
	}
	pkg := &Package{Path: path, Dir: dir, Fset: l.Fset, Files: files, Types: tpkg, Info: info}
	l.loaded[path] = pkg
	l.types[path] = tpkg
	return pkg, nil
}

// lintImporter resolves imports during type checking: module-internal paths
// load from source via the Loader, everything else falls back to the
// standard-library source importer.
type lintImporter Loader

func (li *lintImporter) Import(path string) (*types.Package, error) {
	l := (*Loader)(li)
	if tp, ok := l.types[path]; ok {
		return tp, nil
	}
	if path == l.ModulePath || strings.HasPrefix(path, l.ModulePath+"/") {
		rel := strings.TrimPrefix(strings.TrimPrefix(path, l.ModulePath), "/")
		pkg, err := l.LoadDir(filepath.Join(l.ModuleRoot, filepath.FromSlash(rel)), path)
		if err != nil {
			return nil, err
		}
		return pkg.Types, nil
	}
	tp, err := l.std.Import(path)
	if err != nil {
		return nil, err
	}
	l.types[path] = tp
	return tp, nil
}
