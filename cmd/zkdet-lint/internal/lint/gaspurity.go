package lint

import (
	"go/ast"
)

// GasPurity enforces the contracts package's gas-accounting invariant: no
// state write may escape the meter. The chain's metered storage view
// charges SSTORE/SLOAD costs inside Set/Get/Delete and EmitIndexed charges
// log gas, so purity reduces to two checkable rules:
//
//  1. The error of every metered operation (Storage.Set/Delete,
//     GasMeter.Charge, CallContext.Emit/EmitIndexed) must be consumed.
//     Discarding it lets execution continue past an out-of-gas, i.e. a
//     write that was never paid for still lands in state.
//  2. Contract code must never construct its own unmetered root store
//     (chain.NewStorage) — all writes go through the metered ctx.Store.
//
// Table II's gas numbers are only reproducible if both hold.
var GasPurity = &Analyzer{
	Name: "gaspurity",
	Doc:  "contract state writes must stay behind the gas meter: no discarded metered-op errors, no unmetered stores",
	Run:  runGasPurity,
}

// meteredOps lists the (type, method) pairs whose error result carries the
// out-of-gas signal.
var meteredOps = []struct{ typeName, method string }{
	{"Storage", "Set"},
	{"Storage", "Delete"},
	{"GasMeter", "Charge"},
	{"CallContext", "Emit"},
	{"CallContext", "EmitIndexed"},
}

func runGasPurity(pass *Pass) {
	if pass.Pkg.Types.Name() != "contracts" {
		return
	}
	info := pass.Pkg.Info
	isMeteredOp := func(call *ast.CallExpr) bool {
		for _, op := range meteredOps {
			if isMethodCall(info, call, "chain", op.typeName, op.method) {
				return true
			}
		}
		return false
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				// A metered op as a bare statement discards its error.
				if call, ok := n.X.(*ast.CallExpr); ok && isMeteredOp(call) {
					pass.Reportf(n.Pos(), "discarded error of metered operation %s; out-of-gas must abort the write path",
						calleeName(call))
				}
			case *ast.AssignStmt:
				// `_ = ctx.Store.Set(...)` discards it just as hard.
				for i, rhs := range n.Rhs {
					call, ok := rhs.(*ast.CallExpr)
					if !ok || !isMeteredOp(call) {
						continue
					}
					// With a single call rhs, the error is the last lhs.
					lhsIdx := len(n.Lhs) - 1
					if len(n.Rhs) > 1 {
						lhsIdx = i
					}
					if id, ok := n.Lhs[lhsIdx].(*ast.Ident); ok && id.Name == "_" {
						pass.Reportf(n.Pos(), "error of metered operation %s assigned to blank; out-of-gas must abort the write path",
							calleeName(call))
					}
				}
			case *ast.CallExpr:
				if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "NewStorage" {
					if obj := info.Uses[sel.Sel]; obj != nil && obj.Pkg() != nil && obj.Pkg().Name() == "chain" {
						pass.Reportf(n.Pos(), "contracts must not create an unmetered store; write through the metered ctx.Store")
					}
				}
			}
			return true
		})
	}
}
