package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// ErrCompare flags raw == and != comparisons between error values. Identity
// comparison against a sentinel breaks the moment anyone wraps the error
// with fmt.Errorf("...: %w", err) — which the durable-storage and recovery
// paths do deliberately, layering context onto wal.ErrCorrupt and the
// snapshot.Err* sentinels. errors.Is walks the wrap chain and is the
// supported comparison; nil checks (err == nil / err != nil) remain the
// idiomatic control-flow test and are exempt.
var ErrCompare = &Analyzer{
	Name: "errcompare",
	Doc:  "flags ==/!= between error values; use errors.Is so wrapped sentinels still match",
	Run:  runErrCompare,
}

// isErrorValue reports whether t is a non-nil type implementing the builtin
// error interface. Concrete error implementations count too: comparing a
// *MyErr against an error-typed variable has the same wrap-blindness.
func isErrorValue(t types.Type) bool {
	if t == nil {
		return false
	}
	if basic, ok := t.(*types.Basic); ok && basic.Kind() == types.UntypedNil {
		return false
	}
	errIface := types.Universe.Lookup("error").Type().Underlying().(*types.Interface)
	return types.Implements(t, errIface)
}

// sentinelName names the compared sentinel when the operand is a plain
// identifier or a pkg.Ident selector resolving to a package-level variable
// (the Err* convention); it returns "" for anything else.
func sentinelName(info *types.Info, e ast.Expr) string {
	var id *ast.Ident
	switch e := e.(type) {
	case *ast.Ident:
		id = e
	case *ast.SelectorExpr:
		id = e.Sel
	default:
		return ""
	}
	obj := info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok || v.Pkg() == nil || v.Parent() != v.Pkg().Scope() {
		return ""
	}
	return v.Name()
}

func runErrCompare(pass *Pass) {
	isNil := func(e ast.Expr) bool {
		id, ok := e.(*ast.Ident)
		return ok && id.Name == "nil" && pass.Pkg.Info.ObjectOf(id) == types.Universe.Lookup("nil")
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			cmp, ok := n.(*ast.BinaryExpr)
			if !ok || (cmp.Op != token.EQL && cmp.Op != token.NEQ) {
				return true
			}
			if isNil(cmp.X) || isNil(cmp.Y) {
				return true // err == nil is the idiomatic presence test
			}
			if !isErrorValue(pass.TypeOf(cmp.X)) || !isErrorValue(pass.TypeOf(cmp.Y)) {
				return true
			}
			target := sentinelName(pass.Pkg.Info, cmp.Y)
			if target == "" {
				target = sentinelName(pass.Pkg.Info, cmp.X)
			}
			if target != "" {
				pass.Reportf(cmp.OpPos, "raw %s against sentinel %s; use errors.Is so wrapped errors still match",
					cmp.Op, target)
			} else {
				pass.Reportf(cmp.OpPos, "raw %s between error values; use errors.Is so wrapped errors still match",
					cmp.Op)
			}
			return true
		})
	}
}
