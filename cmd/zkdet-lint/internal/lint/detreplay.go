package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"
)

// DetReplay guards the consensus-critical replay path: every node that
// replays the same blocks must reach bit-identical state roots, receipts,
// event order and gas. The Go sources of silent divergence it hunts are
//
//  1. map iteration order escaping into state: a `for ... range m` over a
//     map whose body writes an order-sensitive location (append to an
//     outer slice without a sort afterwards, last-write-wins assignment
//     to an un-keyed outer location, returning an iteration-dependent
//     value, calling an outer closure whose side effects land in map
//     order);
//  2. wall-clock and randomness: direct time.Now() calls and any use of
//     math/rand — block timestamps flow through the injected Chain clock
//     (chain.New wires time.Now as the production default; replay paths
//     take the timestamp from the imported header), so a raw call is
//     always a bug;
//  3. goroutine completion order: appends to a captured slice from inside
//     a `go` statement, which interleave by scheduler whim.
//
// The analyzer is calibrated against the real replay code, so the
// order-INsensitive idioms stay silent: writes keyed by the loop
// variables (`m2[k] = v`, `c.acct(a).balance = bal`), loop-local targets,
// commutative compound assignments (`+=`, `|=`, ...), constant stores
// (`found = true`), delete(), and the collect-keys-then-sort pattern.
//
// Scope: the chain engine (internal/chain, internal/chain/exec) and the
// contract layer (internal/contracts) — plus its own test fixture.
var DetReplay = &Analyzer{
	Name: "detreplay",
	Doc:  "replay determinism: no map-iteration order, wall clock, randomness, or goroutine ordering may reach consensus state",
	Run:  runDetReplay,
}

// detReplayScoped reports whether the package is on the replay path.
func detReplayScoped(path string) bool {
	return strings.Contains(path, "internal/chain") ||
		strings.Contains(path, "internal/contracts") ||
		strings.HasPrefix(path, "fixture/detreplay")
}

func runDetReplay(pass *Pass) {
	if !detReplayScoped(pass.Pkg.Path) {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, imp := range f.Imports {
			p := strings.Trim(imp.Path.Value, `"`)
			if p == "math/rand" || p == "math/rand/v2" {
				pass.Reportf(imp.Pos(), "math/rand on the replay path: consensus state must not depend on randomness")
			}
		}
		sorts := collectSortCalls(pass, f)
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CallExpr:
				if isPkgCall(pass, n, "time", "Now") {
					pass.Reportf(n.Pos(), "direct time.Now() on the replay path: take the timestamp from the injected chain clock or the block header")
				}
			case *ast.GoStmt:
				checkGoroutineAppends(pass, n)
			case *ast.RangeStmt:
				if isMapRange(pass, n) {
					checkMapRange(pass, n, sorts)
				}
			}
			return true
		})
	}
}

// isPkgCall reports whether call is pkg.fn(...) resolved to the named
// standard-library package (a method or field invocation named fn does
// not match — c.now() is the sanctioned clock indirection).
func isPkgCall(pass *Pass, call *ast.CallExpr, pkg, fn string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != fn {
		return false
	}
	obj, ok := pass.Pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && obj.Pkg() != nil && obj.Pkg().Path() == pkg
}

// sortCall is one sort.* invocation: the object it sorts and where.
type sortCall struct {
	obj types.Object
	pos token.Pos
}

// collectSortCalls gathers every sort.*(x) call in the file together with
// x's object, so checkMapRange can recognize the collect-then-sort idiom
// even across nested loops: an accumulator is order-safe if the same
// local is sorted anywhere after the loop (object identity confines the
// match to the declaring function).
func collectSortCalls(pass *Pass, f *ast.File) []sortCall {
	var out []sortCall
	ast.Inspect(f, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		if pkg, ok := sel.X.(*ast.Ident); !ok || pkg.Name != "sort" {
			return true
		}
		for _, arg := range call.Args {
			if id := baseIdent(arg); id != nil {
				if obj := pass.Pkg.Info.ObjectOf(id); obj != nil {
					out = append(out, sortCall{obj: obj, pos: call.Pos()})
				}
			}
		}
		return true
	})
	return out
}

func isMapRange(pass *Pass, rs *ast.RangeStmt) bool {
	t := pass.TypeOf(rs.X)
	if t == nil {
		return false
	}
	_, ok := t.Underlying().(*types.Map)
	return ok
}

// checkMapRange classifies every statement in a map-range body. The body
// may only touch locations that make the final state independent of
// iteration order.
func checkMapRange(pass *Pass, rs *ast.RangeStmt, sorts []sortCall) {
	loopScoped := func(obj types.Object) bool {
		return obj != nil && rs.Pos() <= obj.Pos() && obj.Pos() < rs.End()
	}
	mentionsLoop := func(e ast.Expr) bool {
		found := false
		ast.Inspect(e, func(n ast.Node) bool {
			if id, ok := n.(*ast.Ident); ok {
				if obj := pass.Pkg.Info.ObjectOf(id); loopScoped(obj) {
					found = true
				}
			}
			return !found
		})
		return found
	}

	ast.Inspect(rs.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.ASSIGN {
				// := declares loop-locals; compound ops (+=, |=, ...) are
				// commutative folds, order-independent by construction.
				return true
			}
			for i, lhs := range n.Lhs {
				checkMapRangeAssign(pass, rs, n, i, lhs, loopScoped, mentionsLoop, sorts)
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if mentionsLoop(res) {
					pass.Reportf(n.Pos(), "returning an iteration-dependent value from a map range: which element wins depends on map order")
					break
				}
			}
		case *ast.ExprStmt:
			call, ok := n.X.(*ast.CallExpr)
			if !ok {
				return true
			}
			if id, ok := call.Fun.(*ast.Ident); ok {
				obj := pass.Pkg.Info.ObjectOf(id)
				if v, isVar := obj.(*types.Var); isVar && !loopScoped(v) {
					if _, isFn := v.Type().Underlying().(*types.Signature); isFn {
						pass.Reportf(n.Pos(), "closure %s called from a map range: its side effects land in map iteration order", id.Name)
					}
				}
			}
		}
		return true
	})
}

// checkMapRangeAssign decides whether one plain `=` target inside a map
// range is order-sensitive.
func checkMapRangeAssign(pass *Pass, rs *ast.RangeStmt, n *ast.AssignStmt, i int, lhs ast.Expr,
	loopScoped func(types.Object) bool, mentionsLoop func(ast.Expr) bool, sorts []sortCall) {
	base := baseIdent(lhs)
	if base == nil || base.Name == "_" {
		return
	}
	obj := pass.Pkg.Info.ObjectOf(base)
	if loopScoped(obj) {
		return // loop-local target: rebuilt every iteration
	}
	if mentionsLoop(lhs) {
		return // keyed by the loop variables: distinct location per entry
	}
	rhs := n.Rhs[0]
	if len(n.Rhs) == len(n.Lhs) {
		rhs = n.Rhs[i]
	}
	if isConstantExpr(pass, rhs) {
		return // same value every iteration: idempotent
	}
	if tgt, ok := appendTarget(rhs); ok && pass.Pkg.Info.ObjectOf(tgt) == obj {
		for _, sc := range sorts {
			if sc.obj == obj && sc.pos >= rs.End() {
				return // collect-then-sort: order erased before use
			}
		}
		pass.Reportf(n.Pos(), "append to %s accumulates in map iteration order; sort it after the loop or iterate sorted keys", base.Name)
		return
	}
	pass.Reportf(n.Pos(), "assignment to %s inside a map range is last-write-wins in map iteration order", base.Name)
}

// baseIdent unwraps selectors, indexes, stars and parens to the root
// identifier of an assignable expression.
func baseIdent(e ast.Expr) *ast.Ident {
	for {
		switch x := e.(type) {
		case *ast.Ident:
			return x
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.ParenExpr:
			e = x.X
		default:
			return nil
		}
	}
}

// isConstantExpr reports whether e evaluates to a compile-time constant
// (literals, true/false, consts) — storing one is iteration-independent.
func isConstantExpr(pass *Pass, e ast.Expr) bool {
	tv, ok := pass.Pkg.Info.Types[e]
	return ok && tv.Value != nil
}

// appendTarget matches append(x, ...) and returns x's base identifier.
func appendTarget(e ast.Expr) (*ast.Ident, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return nil, false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "append" {
		return nil, false
	}
	id := baseIdent(call.Args[0])
	return id, id != nil
}

// checkGoroutineAppends flags appends to captured slices from inside a go
// statement's function literal: goroutine completion order decides the
// element order.
func checkGoroutineAppends(pass *Pass, g *ast.GoStmt) {
	fl, ok := g.Call.Fun.(*ast.FuncLit)
	if !ok {
		return
	}
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for _, rhs := range as.Rhs {
			call, ok := rhs.(*ast.CallExpr)
			if !ok || len(call.Args) == 0 {
				continue
			}
			tgt, ok := appendTarget(rhs)
			if !ok {
				continue
			}
			obj := pass.Pkg.Info.ObjectOf(tgt)
			if obj == nil {
				continue
			}
			if obj.Pos() < fl.Pos() || obj.Pos() >= fl.End() {
				pass.Reportf(as.Pos(), "append to captured %s from a goroutine: completion order scrambles the slice",
					types.ExprString(call.Args[0]))
			}
		}
		return true
	})
}
