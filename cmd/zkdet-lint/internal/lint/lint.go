// Package lint is a self-contained static-analysis framework for the zkdet
// repository, built purely on the standard library's go/ast, go/parser,
// go/types and go/token (the repo charter forbids external dependencies).
//
// It mirrors the shape of golang.org/x/tools/go/analysis at a fraction of
// the surface: an Analyzer is a named Run function over a type-checked
// package; the driver loads packages, fans analyzers out in parallel, and
// renders "file:line: analyzer: message" diagnostics.
//
// Suppressions use the conventional staticcheck syntax:
//
//	//lint:ignore analyzer[,analyzer...] reason
//
// placed on the flagged line or the line directly above it. The reason is
// mandatory: a suppression without one is itself reported.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
	"sync"
)

// Analyzer is one named check over a type-checked package.
type Analyzer struct {
	Name string
	Doc  string
	Run  func(*Pass)
}

// All returns the full zkdet analyzer suite in stable order.
func All() []*Analyzer {
	return []*Analyzer{
		CryptoCompare,
		ErrCompare,
		SecretScope,
		GasPurity,
		LockGuard,
		PanicFree,
		DetReplay,
	}
}

// Diagnostic is one finding, positioned in the shared FileSet.
type Diagnostic struct {
	Pos      token.Position
	Analyzer string
	Message  string
}

func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d: %s: %s", d.Pos.Filename, d.Pos.Line, d.Analyzer, d.Message)
}

// Pass carries one analyzer's view of one package.
type Pass struct {
	Analyzer *Analyzer
	Pkg      *Package
	Fset     *token.FileSet

	mu    *sync.Mutex
	diags *[]Diagnostic
}

// Reportf records a diagnostic at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	d := Diagnostic{
		Pos:      p.Fset.Position(pos),
		Analyzer: p.Analyzer.Name,
		Message:  fmt.Sprintf(format, args...),
	}
	p.mu.Lock()
	*p.diags = append(*p.diags, d)
	p.mu.Unlock()
}

// TypeOf returns the type of e, or nil.
func (p *Pass) TypeOf(e ast.Expr) types.Type {
	if tv, ok := p.Pkg.Info.Types[e]; ok {
		return tv.Type
	}
	if id, ok := e.(*ast.Ident); ok {
		if obj := p.Pkg.Info.ObjectOf(id); obj != nil {
			return obj.Type()
		}
	}
	return nil
}

// RunAnalyzers fans the analyzers out over the packages (one goroutine per
// package × analyzer), then filters suppressed findings and returns the
// survivors sorted by position. Suppression directives with an empty reason
// are converted into diagnostics themselves, so every silenced finding
// carries a written justification.
func RunAnalyzers(pkgs []*Package, analyzers []*Analyzer) []Diagnostic {
	var mu sync.Mutex
	var diags []Diagnostic
	var wg sync.WaitGroup
	for _, pkg := range pkgs {
		for _, a := range analyzers {
			wg.Add(1)
			go func(pkg *Package, a *Analyzer) {
				defer wg.Done()
				a.Run(&Pass{Analyzer: a, Pkg: pkg, Fset: pkg.Fset, mu: &mu, diags: &diags})
			}(pkg, a)
		}
	}
	wg.Wait()

	ignores, bad := collectIgnores(pkgs)
	out := bad
	for _, d := range diags {
		if ignores.matches(d) {
			continue
		}
		out = append(out, d)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.Pos.Filename != b.Pos.Filename {
			return a.Pos.Filename < b.Pos.Filename
		}
		if a.Pos.Line != b.Pos.Line {
			return a.Pos.Line < b.Pos.Line
		}
		return a.Analyzer < b.Analyzer
	})
	return out
}

// ignoreKey identifies the scope of one //lint:ignore directive.
type ignoreKey struct {
	file     string
	line     int
	analyzer string
}

type ignoreSet map[ignoreKey]bool

// matches reports whether d is silenced by a directive on its line or the
// line directly above.
func (s ignoreSet) matches(d Diagnostic) bool {
	return s[ignoreKey{d.Pos.Filename, d.Pos.Line, d.Analyzer}] ||
		s[ignoreKey{d.Pos.Filename, d.Pos.Line - 1, d.Analyzer}]
}

// collectIgnores gathers every //lint:ignore directive. A directive applies
// to its own line and the one below it (so it works both as a trailing
// comment and as a comment line above the flagged statement). Directives
// missing a justification are returned as diagnostics.
func collectIgnores(pkgs []*Package) (ignoreSet, []Diagnostic) {
	set := ignoreSet{}
	var bad []Diagnostic
	for _, pkg := range pkgs {
		for _, f := range pkg.Files {
			for _, cg := range f.Comments {
				for _, c := range cg.List {
					text, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
					if !ok {
						continue
					}
					pos := pkg.Fset.Position(c.Pos())
					fields := strings.Fields(text)
					if len(fields) == 0 {
						continue
					}
					if len(fields) < 2 {
						// Still honor the suppression (the intent is clear)
						// but demand the justification.
						bad = append(bad, Diagnostic{
							Pos:      pos,
							Analyzer: "lint",
							Message:  "//lint:ignore needs an analyzer list and a written justification",
						})
					}
					for _, name := range strings.Split(fields[0], ",") {
						// The directive covers its own line (trailing
						// comments) and the next (comment-above style).
						set[ignoreKey{pos.Filename, pos.Line, name}] = true
						set[ignoreKey{pos.Filename, pos.Line + 1, name}] = true
					}
				}
			}
		}
	}
	return set, bad
}

// namedType unwraps t to its *types.Named, looking through pointers and
// aliases; it returns nil for unnamed types.
func namedType(t types.Type) *types.Named {
	switch t := t.(type) {
	case *types.Named:
		return t
	case *types.Pointer:
		return namedType(t.Elem())
	case *types.Alias:
		return namedType(types.Unalias(t))
	}
	return nil
}

// isMethodCall reports whether call invokes a method named method on a
// receiver whose named type is pkgName.typeName (pointer receivers
// included), using type information.
func isMethodCall(info *types.Info, call *ast.CallExpr, pkgName, typeName, method string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != method {
		return false
	}
	selection, ok := info.Selections[sel]
	if !ok {
		return false
	}
	named := namedType(selection.Recv())
	if named == nil || named.Obj().Name() != typeName {
		return false
	}
	p := named.Obj().Pkg()
	return p != nil && p.Name() == pkgName
}

// funcScopePos returns the body extent of the innermost enclosing function
// literal or declaration, used to decide whether a variable is local.
func within(pos token.Pos, node ast.Node) bool {
	return node != nil && node.Pos() <= pos && pos < node.End()
}
