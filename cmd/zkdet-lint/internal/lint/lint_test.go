package lint

import (
	"bufio"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

// fixtureDir locates cmd/zkdet-lint/testdata/src/<name>.
func fixtureDir(t *testing.T, name string) string {
	t.Helper()
	dir, err := filepath.Abs(filepath.Join("..", "..", "testdata", "src", name))
	if err != nil {
		t.Fatal(err)
	}
	if _, err := os.Stat(dir); err != nil {
		t.Fatalf("fixture %s: %v", name, err)
	}
	return dir
}

// wantedDiags parses `// want "substring"` expectations: line → substrings.
func wantedDiags(t *testing.T, dir string) map[string][]string {
	t.Helper()
	want := map[string][]string{}
	ents, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	for _, e := range ents {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := os.Open(filepath.Join(dir, e.Name()))
		if err != nil {
			t.Fatal(err)
		}
		sc := bufio.NewScanner(f)
		line := 0
		for sc.Scan() {
			line++
			text := sc.Text()
			idx := strings.Index(text, `// want `)
			if idx < 0 {
				continue
			}
			rest := text[idx+len(`// want `):]
			if len(rest) < 2 || (rest[0] != '"' && rest[0] != '`') {
				t.Fatalf("%s:%d: malformed want comment", e.Name(), line)
			}
			quote := rest[0]
			rest = rest[1:]
			end := strings.LastIndexByte(rest, quote)
			if end < 0 {
				t.Fatalf("%s:%d: malformed want comment", e.Name(), line)
			}
			key := filepath.Join(dir, e.Name()) + ":" + itoa(line)
			want[key] = append(want[key], rest[:end])
		}
		f.Close()
	}
	return want
}

func itoa(n int) string {
	if n == 0 {
		return "0"
	}
	var b [20]byte
	i := len(b)
	for n > 0 {
		i--
		b[i] = byte('0' + n%10)
		n /= 10
	}
	return string(b[i:])
}

// runFixture loads one fixture package and checks the analyzer's
// diagnostics exactly match the // want expectations.
func runFixture(t *testing.T, analyzer *Analyzer, fixture string) {
	t.Helper()
	dir := fixtureDir(t, fixture)
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/"+fixture)
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{analyzer})

	want := wantedDiags(t, dir)
	matched := map[string]int{}
	for _, d := range diags {
		key := d.Pos.Filename + ":" + itoa(d.Pos.Line)
		subs := want[key]
		found := false
		for _, sub := range subs {
			if strings.Contains(d.Message, sub) {
				found = true
				matched[key]++
				break
			}
		}
		if !found {
			t.Errorf("unexpected diagnostic: %s", d)
		}
	}
	for key, subs := range want {
		if matched[key] < len(subs) {
			t.Errorf("missing diagnostic at %s (want %q, matched %d)", key, subs, matched[key])
		}
	}
}

func TestCryptoCompareFixture(t *testing.T) { runFixture(t, CryptoCompare, "cryptocompare") }
func TestErrCompareFixture(t *testing.T)    { runFixture(t, ErrCompare, "errcompare") }
func TestSecretScopeFixture(t *testing.T)   { runFixture(t, SecretScope, "secretscope") }
func TestGasPurityFixture(t *testing.T)     { runFixture(t, GasPurity, "gaspurity") }
func TestLockGuardFixture(t *testing.T)     { runFixture(t, LockGuard, "lockguard") }
func TestPanicFreeFixture(t *testing.T)     { runFixture(t, PanicFree, "panicfree") }
func TestDetReplayFixture(t *testing.T)     { runFixture(t, DetReplay, "detreplay") }

// TestSuppression proves //lint:ignore silences a finding only when it
// carries a justification.
func TestSuppression(t *testing.T) {
	dir := fixtureDir(t, "suppression")
	loader, err := NewLoader(dir)
	if err != nil {
		t.Fatal(err)
	}
	pkg, err := loader.LoadDir(dir, "fixture/suppression")
	if err != nil {
		t.Fatal(err)
	}
	diags := RunAnalyzers([]*Package{pkg}, []*Analyzer{PanicFree})
	var got []string
	for _, d := range diags {
		got = append(got, d.Analyzer)
	}
	// One unsuppressed panic finding plus one bare-directive complaint; the
	// justified suppression stays silent.
	if len(diags) != 2 {
		t.Fatalf("want 2 diagnostics (panicfree + bare directive), got %d: %v", len(diags), diags)
	}
	seen := map[string]bool{}
	for _, d := range diags {
		seen[d.Analyzer] = true
	}
	if !seen["panicfree"] || !seen["lint"] {
		t.Fatalf("want one panicfree and one lint diagnostic, got %v", got)
	}
}

// TestRepoIsClean runs the full suite over the repository — the same gate
// as `make lint` — so a regression anywhere in internal/ fails the test
// suite, not just the Makefile target.
func TestRepoIsClean(t *testing.T) {
	if testing.Short() {
		t.Skip("full-repo lint is not short")
	}
	loader, err := NewLoader(".")
	if err != nil {
		t.Fatal(err)
	}
	dirs, err := loader.Expand([]string{"./..."})
	if err != nil {
		t.Fatal(err)
	}
	var pkgs []*Package
	for _, dir := range dirs {
		pkg, err := loader.LoadDir(dir, "")
		if err != nil {
			t.Fatalf("loading %s: %v", dir, err)
		}
		pkgs = append(pkgs, pkg)
	}
	for _, d := range RunAnalyzers(pkgs, All()) {
		t.Errorf("%s", d)
	}
}
