package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// SecretScope enforces toxic-waste hygiene in the trusted-setup package
// (package kzg): values derived from fresh randomness during an SRS update
// are ceremony secrets. A secret must not escape the function that derives
// it (no return, no store into a field, global, slice or channel), and it
// must be explicitly destroyed before the function returns — either by
// calling its SetZero method or by passing it to a zeroize helper.
//
// Secrets are discovered two ways:
//   - any local assigned directly from fr.MustRandom() or fr.Random(...),
//   - any local whose declaration is annotated with a "// toxic" comment
//     (for secrets derived indirectly, e.g. hashed entropy),
//
// and secrecy propagates through fr.Powers: the powers of a secret are
// themselves secret.
var SecretScope = &Analyzer{
	Name: "secretscope",
	Doc:  "ceremony secrets in package kzg must be zeroized and must not escape the deriving function",
	Run:  runSecretScope,
}

func runSecretScope(pass *Pass) {
	if pass.Pkg.Types.Name() != "kzg" {
		return
	}
	for _, f := range pass.Pkg.Files {
		toxicLines := map[int]bool{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				body := strings.TrimSpace(strings.TrimPrefix(c.Text, "//"))
				if strings.HasPrefix(body, "toxic") {
					line := pass.Fset.Position(c.Pos()).Line
					// The marker covers its own line (trailing comment) and
					// the next (comment-above style).
					toxicLines[line] = true
					toxicLines[line+1] = true
				}
			}
		}
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			checkSecretScope(pass, fn, toxicLines)
		}
	}
}

// isRandomSource reports whether call is fr.MustRandom(...) or
// fr.Random(...).
func isRandomSource(pass *Pass, call *ast.CallExpr) bool {
	return isFrCall(pass, call, "MustRandom") || isFrCall(pass, call, "Random")
}

// isFrCall reports whether call invokes the package-level function
// fr.<name> (resolved through type information, not the import alias).
func isFrCall(pass *Pass, call *ast.CallExpr, name string) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != name {
		return false
	}
	obj := pass.Pkg.Info.Uses[sel.Sel]
	if obj == nil || obj.Pkg() == nil {
		return false
	}
	return obj.Pkg().Name() == "fr"
}

// mentionsAny reports whether expr references any of the given objects.
func mentionsAny(pass *Pass, expr ast.Expr, secrets map[types.Object]bool) types.Object {
	var found types.Object
	ast.Inspect(expr, func(n ast.Node) bool {
		if id, ok := n.(*ast.Ident); ok {
			if obj := pass.Pkg.Info.Uses[id]; obj != nil && secrets[obj] {
				found = obj
				return false
			}
		}
		return true
	})
	return found
}

func checkSecretScope(pass *Pass, fn *ast.FuncDecl, toxicLines map[int]bool) {
	info := pass.Pkg.Info
	secrets := map[types.Object]bool{}   // vars holding secret material
	declPos := map[types.Object]ast.Expr{}

	addSecret := func(id *ast.Ident) {
		if obj := info.Defs[id]; obj != nil {
			secrets[obj] = true
			declPos[obj] = id
		} else if obj := info.Uses[id]; obj != nil {
			secrets[obj] = true
			if _, ok := declPos[obj]; !ok {
				declPos[obj] = id
			}
		}
	}

	// Pass 1: discover secrets. Iterate to a fixed point so that powers of
	// secrets discovered late still propagate.
	for {
		before := len(secrets)
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			asgn, ok := n.(*ast.AssignStmt)
			if !ok {
				return true
			}
			line := pass.Fset.Position(asgn.Pos()).Line
			for i, rhs := range asgn.Rhs {
				if i >= len(asgn.Lhs) && len(asgn.Lhs) > 0 {
					break
				}
				// With a multi-value rhs (v, err := fr.Random(r)) the secret
				// is the first lhs.
				lhsIdx := i
				if len(asgn.Rhs) == 1 {
					lhsIdx = 0
				}
				id, ok := asgn.Lhs[lhsIdx].(*ast.Ident)
				if !ok {
					continue
				}
				call, isCall := rhs.(*ast.CallExpr)
				switch {
				case toxicLines[line]:
					addSecret(id)
				case isCall && isRandomSource(pass, call):
					addSecret(id)
				case isCall && isFrCall(pass, call, "Powers") && mentionsAny(pass, call, secrets) != nil:
					// Powers of a secret are secret.
					addSecret(id)
				}
			}
			return true
		})
		if len(secrets) == before {
			break
		}
	}
	if len(secrets) == 0 {
		return
	}

	zeroized := map[types.Object]bool{}
	escaped := map[types.Object]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// v.SetZero() destroys the secret.
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "SetZero" {
				if id, ok := sel.X.(*ast.Ident); ok {
					if obj := info.Uses[id]; obj != nil && secrets[obj] {
						zeroized[obj] = true
					}
				}
			}
			// zeroize(&v) / zeroizeScalars(vs) destroy the secret too.
			if fnName := calleeName(n); strings.Contains(strings.ToLower(fnName), "zeroize") {
				for _, arg := range n.Args {
					if obj := mentionsAny(pass, arg, secrets); obj != nil {
						zeroized[obj] = true
					}
				}
			}
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				if obj := mentionsAny(pass, res, secrets); obj != nil && !escaped[obj] {
					escaped[obj] = true
					pass.Reportf(n.Pos(), "ceremony secret %q is returned from %s; secrets must not outlive the update",
						obj.Name(), fn.Name.Name)
				}
			}
		case *ast.AssignStmt:
			// A secret stored through a selector, index or dereference
			// outlives the function frame.
			for i, lhs := range n.Lhs {
				switch lhs.(type) {
				case *ast.SelectorExpr, *ast.IndexExpr, *ast.StarExpr:
					rhsIdx := i
					if len(n.Rhs) == 1 {
						rhsIdx = 0
					}
					if rhsIdx >= len(n.Rhs) {
						continue
					}
					if obj := mentionsAny(pass, n.Rhs[rhsIdx], secrets); obj != nil && !escaped[obj] {
						escaped[obj] = true
						pass.Reportf(n.Pos(), "ceremony secret %q escapes %s through a store; secrets must stay local",
							obj.Name(), fn.Name.Name)
					}
				}
			}
		case *ast.SendStmt:
			if obj := mentionsAny(pass, n.Value, secrets); obj != nil && !escaped[obj] {
				escaped[obj] = true
				pass.Reportf(n.Pos(), "ceremony secret %q escapes %s through a channel send", obj.Name(), fn.Name.Name)
			}
		}
		return true
	})

	for obj := range secrets {
		if !zeroized[obj] && !escaped[obj] {
			pass.Reportf(declPos[obj].Pos(), "ceremony secret %q is never zeroized in %s; call SetZero (or a zeroize helper) before returning",
				obj.Name(), fn.Name.Name)
		}
	}
}

// calleeName returns the bare name of the called function, if syntactically
// evident.
func calleeName(call *ast.CallExpr) string {
	switch f := call.Fun.(type) {
	case *ast.Ident:
		return f.Name
	case *ast.SelectorExpr:
		return f.Sel.Name
	}
	return ""
}
