package lint

import (
	"go/ast"
	"go/token"
	"go/types"
)

// CryptoCompare flags raw ==, != and reflect.DeepEqual comparisons on the
// field-arithmetic and curve types (fr.Element, ff.Element, the bn254 tower
// and point types — these are also the repo's digest types: Poseidon and
// MiMC digests are fr.Elements). Raw comparison bakes in the current memory
// representation (Montgomery form, affine coordinates); the canonical
// .Equal methods are the supported comparison path and keep call sites
// robust to representation changes. The fr/ff/bn254 packages themselves are
// exempt: they implement those canonical paths.
var CryptoCompare = &Analyzer{
	Name: "cryptocompare",
	Doc:  "flags ==/!=/reflect.DeepEqual on field, curve and digest types outside their defining packages",
	Run:  runCryptoCompare,
}

// cryptoCorePkgs are the packages that define the protected types and are
// allowed to compare them directly.
var cryptoCorePkgs = map[string]bool{"fr": true, "ff": true, "bn254": true}

// protectedCompareType reports whether t is a named struct/array type from
// one of the crypto core packages — a type whose comparison must go through
// its Equal method. Pointers are not protected: pointer comparison is
// identity, not value equality.
func protectedCompareType(t types.Type) (*types.Named, bool) {
	if t == nil {
		return nil, false
	}
	if _, isPtr := t.(*types.Pointer); isPtr {
		return nil, false
	}
	named, ok := types.Unalias(t).(*types.Named)
	if !ok {
		return nil, false
	}
	pkg := named.Obj().Pkg()
	if pkg == nil || !cryptoCorePkgs[pkg.Name()] {
		return nil, false
	}
	switch named.Underlying().(type) {
	case *types.Struct, *types.Array:
		return named, true
	}
	return nil, false
}

func runCryptoCompare(pass *Pass) {
	if cryptoCorePkgs[pass.Pkg.Types.Name()] {
		return
	}
	for _, f := range pass.Pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.BinaryExpr:
				if n.Op != token.EQL && n.Op != token.NEQ {
					return true
				}
				for _, operand := range []ast.Expr{n.X, n.Y} {
					if named, ok := protectedCompareType(pass.TypeOf(operand)); ok {
						pass.Reportf(n.OpPos, "raw %s on %s.%s; use the canonical Equal method",
							n.Op, named.Obj().Pkg().Name(), named.Obj().Name())
						break
					}
				}
			case *ast.CallExpr:
				sel, ok := n.Fun.(*ast.SelectorExpr)
				if !ok || sel.Sel.Name != "DeepEqual" {
					return true
				}
				if id, ok := sel.X.(*ast.Ident); !ok || id.Name != "reflect" {
					return true
				}
				for _, arg := range n.Args {
					t := pass.TypeOf(arg)
					if p, isPtr := t.(*types.Pointer); isPtr {
						t = p.Elem() // DeepEqual dereferences pointers
					}
					if named, ok := protectedCompareType(t); ok {
						pass.Reportf(n.Pos(), "reflect.DeepEqual on %s.%s; use the canonical Equal method",
							named.Obj().Pkg().Name(), named.Obj().Name())
						break
					}
				}
			}
			return true
		})
	}
}
