package lint

import (
	"go/ast"
	"strings"
)

// PanicFree keeps library packages panic-free: a panic that is reachable
// from user input (malformed proof bytes, wrong-size domains, bad calldata)
// takes a whole node down instead of failing one request. Library code must
// return errors; panics are allowed only in
//
//   - init functions (programmer-constant setup),
//   - Must*/must* constructors, whose documented contract is to panic, and
//   - package main (CLIs may crash on their own input).
//
// Anything else needs an error return, or a //lint:ignore panicfree
// directive whose justification explains why the condition is a programmer
// invariant rather than reachable input.
var PanicFree = &Analyzer{
	Name: "panicfree",
	Doc:  "library packages must return errors instead of panicking, outside init and Must* constructors",
	Run:  runPanicFree,
}

func runPanicFree(pass *Pass) {
	if pass.Pkg.Types.Name() == "main" {
		return
	}
	for _, f := range pass.Pkg.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			name := fn.Name.Name
			if name == "init" || strings.HasPrefix(name, "Must") || strings.HasPrefix(name, "must") {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isPanicCall(call) {
					return true
				}
				// Only flag panics resolved to the builtin (not a local
				// shadow).
				if id := call.Fun.(*ast.Ident); pass.Pkg.Info.Uses[id] != nil && pass.Pkg.Info.Uses[id].Pkg() != nil {
					return true
				}
				pass.Reportf(call.Pos(), "panic in library function %s; return an error instead", name)
				return true
			})
		}
	}
}
