// Command zkdet-bench regenerates every table and figure of the paper's
// evaluation (§VI) on the local machine and prints them side by side with
// the published numbers.
//
// Usage:
//
//	zkdet-bench -all                 # everything at the default small scale
//	zkdet-bench -fig 5|6|7           # one figure
//	zkdet-bench -table 1|2           # one table
//	zkdet-bench -proofsize           # §VI-B3 constant-proof-size check
//	zkdet-bench -ablation cipher|commitment|decouple
//	zkdet-bench -p2p                 # network layer: gossip propagation, chain sync
//	zkdet-bench -exec                # execution layer: sealed tx/s, serial vs parallel
//	zkdet-bench -ct                  # confidential exchange: prove/verify/batch-verify per shape
//	zkdet-bench -wal                 # durability: WAL appends, durable sealing, recovery time
//	zkdet-bench -scale medium        # larger workloads (slower)
//
// Absolute times are not expected to match the paper (this is a
// from-scratch big-integer Plonk prover, not Snarkjs on the authors'
// i9-11900K); the shapes — linear proving, constant π_k, flat
// verification, gas magnitudes — are the reproduction targets. See
// EXPERIMENTS.md for the recorded comparison.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"time"

	"github.com/zkdet/zkdet/internal/apps/transformer"
	"github.com/zkdet/zkdet/internal/bench"
	"github.com/zkdet/zkdet/internal/core"
)

type scaleConfig struct {
	fig5Sizes    []int
	fig6Sizes    []int
	fig7Sizes    []int
	logregSizes  []int
	transformers []transformer.Config
	sysSize      int
}

func scales() map[string]scaleConfig {
	return map[string]scaleConfig{
		"small": {
			fig5Sizes:   []int{1 << 8, 1 << 9, 1 << 10, 1 << 11, 1 << 12},
			fig6Sizes:   []int{2, 4, 8, 16},
			fig7Sizes:   []int{2, 4, 8, 16},
			logregSizes: []int{4, 8},
			transformers: []transformer.Config{
				{SeqLen: 2, DModel: 2, DK: 2, DFF: 2, DOut: 2},
				{SeqLen: 2, DModel: 4, DK: 2, DFF: 4, DOut: 2},
			},
			sysSize: 1 << 14,
		},
		"medium": {
			fig5Sizes:   []int{1 << 10, 1 << 12, 1 << 14, 1 << 16},
			fig6Sizes:   []int{4, 8, 16, 32, 64},
			fig7Sizes:   []int{4, 16, 64},
			logregSizes: []int{8, 16, 32},
			transformers: []transformer.Config{
				{SeqLen: 3, DModel: 4, DK: 4, DFF: 8, DOut: 4},
				{SeqLen: 4, DModel: 8, DK: 4, DFF: 16, DOut: 8},
			},
			sysSize: 1 << 17,
		},
	}
}

func main() {
	log.SetFlags(0)
	var (
		figFlag      = flag.Int("fig", 0, "regenerate figure 5, 6 or 7")
		tableFlag    = flag.Int("table", 0, "regenerate table 1 or 2")
		proofSize    = flag.Bool("proofsize", false, "check the constant-proof-size claim (§VI-B3)")
		constraints  = flag.Bool("constraints", false, "per-gadget constraint report: classic vs lookup/custom-gate lowering")
		ablationFlag = flag.String("ablation", "", "run an ablation: cipher, commitment or decouple")
		p2pFlag      = flag.Bool("p2p", false, "run the network-layer experiments (gossip, sync)")
		execFlag     = flag.Bool("exec", false, "run the execution-layer experiment (sealed tx/s, serial vs parallel)")
		ctFlag       = flag.Bool("ct", false, "run the confidential-exchange experiment (prove/verify/batch-verify per transfer shape)")
		walFlag      = flag.Bool("wal", false, "run the durability experiments (WAL appends, durable sealing, recovery time)")
		allFlag      = flag.Bool("all", false, "run every experiment")
		scaleFlag    = flag.String("scale", "small", "workload scale: small or medium")
	)
	flag.Parse()

	cfg, ok := scales()[*scaleFlag]
	if !ok {
		log.Fatalf("unknown scale %q (want small or medium)", *scaleFlag)
	}
	if !*allFlag && *figFlag == 0 && *tableFlag == 0 && *ablationFlag == "" && !*proofSize && !*constraints && !*p2pFlag && !*execFlag && !*ctFlag && !*walFlag {
		flag.Usage()
		os.Exit(2)
	}
	fmt.Printf("environment: %s\n", bench.Environment())

	var sys *core.System
	system := func() *core.System {
		if sys == nil {
			fmt.Printf("(building a %s-scale proving system — one-time setup)\n", *scaleFlag)
			var err error
			sys, err = bench.NewSystem(cfg.sysSize)
			if err != nil {
				log.Fatalf("system setup: %v", err)
			}
		}
		return sys
	}

	if *allFlag || *figFlag == 5 {
		runFig5(cfg)
	}
	if *allFlag || *figFlag == 6 {
		runFig6(system(), cfg)
	}
	if *allFlag || *figFlag == 7 {
		runFig7(system(), cfg)
	}
	if *allFlag || *tableFlag == 1 {
		runTable1(system(), cfg)
	}
	if *allFlag || *tableFlag == 2 {
		runTable2(system())
	}
	if *allFlag || *proofSize {
		runProofSize(system())
	}
	if *allFlag || *constraints {
		runConstraints(system())
	}
	if *allFlag || *ablationFlag == "cipher" {
		runAblationCipher()
	}
	if *allFlag || *ablationFlag == "commitment" {
		runAblationCommitment()
	}
	if *allFlag || *ablationFlag == "decouple" {
		runAblationDecouple(system())
	}
	if *allFlag || *p2pFlag {
		runP2P()
	}
	if *allFlag || *execFlag {
		runExec()
	}
	if *allFlag || *ctFlag {
		runCT(system())
	}
	if *allFlag || *walFlag {
		runWAL()
	}
}

func header(title string) {
	fmt.Printf("\n══ %s ══\n", title)
}

func runFig5(cfg scaleConfig) {
	header("Figure 5 — time consumed for circuit setup")
	fmt.Println("paper shape: setup grows ~linearly with constraints; <2 min at 2^20 constraints")
	rows, err := bench.Fig5Setup(cfg.fig5Sizes)
	if err != nil {
		log.Fatalf("fig5: %v", err)
	}
	fmt.Printf("%-14s %-12s %-12s %s\n", "constraints", "SRS", "preprocess", "total")
	for _, r := range rows {
		fmt.Printf("%-14d %-12s %-12s %s\n", r.Constraints,
			bench.FormatSeconds(r.SRSSeconds),
			bench.FormatSeconds(r.PreprocessSeconds),
			bench.FormatSeconds(r.TotalSeconds))
	}
}

func runFig6(sys *core.System, cfg scaleConfig) {
	header("Figure 6 — time consumed for proof generation")
	fmt.Println("paper shape: π_e/π_p linear in data size; π_t ~linear (comparisons); π_k constant ~120ms")
	rows, err := bench.Fig6ProofGen(sys, cfg.fig6Sizes)
	if err != nil {
		log.Fatalf("fig6: %v", err)
	}
	fmt.Printf("%-10s %-10s %-12s %-12s %s\n", "entries", "size", "π_e", "π_t(dup)", "π_k")
	for _, r := range rows {
		fmt.Printf("%-10d %-10s %-12s %-12s %s\n", r.Entries,
			fmt.Sprintf("%.2fKB", r.DataKB),
			bench.FormatSeconds(r.PiESeconds),
			bench.FormatSeconds(r.PiTSeconds),
			bench.FormatSeconds(r.PiKSeconds))
	}
}

func runFig7(sys *core.System, cfg scaleConfig) {
	header("Figure 7 — running time of ZKDET and ZKCP (verification)")
	fmt.Println("paper shape: ZKDET flat (<0.1s, 2 pairings + 18 exps); ZKCP grows with ℓ (3 pairings + ℓ exps)")
	rows, err := bench.Fig7Verify(sys, cfg.fig7Sizes)
	if err != nil {
		log.Fatalf("fig7: %v", err)
	}
	fmt.Printf("%-10s %-14s %s\n", "inputs", "ZKDET verify", "ZKCP verify")
	for _, r := range rows {
		fmt.Printf("%-10d %-14s %s\n", r.Inputs,
			bench.FormatSeconds(r.ZKDETSeconds),
			bench.FormatSeconds(r.ZKCPSeconds))
	}
	// The ZKCP verifier needs no SRS, so its ℓ-linear growth can be shown
	// well past the sizes the π_e circuits above cover.
	fmt.Println("ZKCP verifier extrapolation (3 pairings + ℓ G1 exponentiations):")
	fmt.Printf("%-10s %s\n", "ℓ", "ZKCP verify")
	for _, n := range []int{64, 256, 1024, 4096} {
		start := time.Now()
		core.ZKCPVerifierCost(n)
		fmt.Printf("%-10d %s\n", n, bench.FormatSeconds(time.Since(start).Seconds()))
	}
}

func runTable1(sys *core.System, cfg scaleConfig) {
	header("Table I — proof of transformation for data processing")
	fmt.Println("paper: LR 495→3.11s, 1963→21.73s, 10210→131.44s; Transformer 201k→1m29s, 1M→8m12s; ~2.4KB proofs")
	lr, err := bench.Table1LogReg(sys, cfg.logregSizes)
	if err != nil {
		log.Fatalf("table1 logreg: %v", err)
	}
	tf, err := bench.Table1Transformer(sys, cfg.transformers)
	if err != nil {
		log.Fatalf("table1 transformer: %v", err)
	}
	fmt.Printf("%-22s %-14s %-14s %s\n", "task", "entries/params", "prove", "proof size")
	for _, r := range append(lr, tf...) {
		fmt.Printf("%-22s %-14d %-14s %dB\n", r.Task, r.Size,
			bench.FormatSeconds(r.ProveSeconds), r.ProofBytes)
	}
}

func runTable2(sys *core.System) {
	header("Table II — gas consumption of smart contracts")
	rows, err := bench.Table2Gas(sys)
	if err != nil {
		log.Fatalf("table2: %v", err)
	}
	fmt.Printf("%-34s %-12s %-12s %s\n", "operation", "paper", "measured", "ratio")
	for _, r := range rows {
		fmt.Printf("%-34s %-12d %-12d %.2fx\n", r.Operation, r.PaperGas, r.Gas,
			float64(r.Gas)/float64(r.PaperGas))
	}
}

func runProofSize(sys *core.System) {
	header("§VI-B3 — proof length is constant")
	rows, err := bench.ProofSizeConstant(sys, []int{2, 8, 16})
	if err != nil {
		log.Fatalf("proofsize: %v", err)
	}
	fmt.Printf("%-10s %-10s %s\n", "task", "entries", "proof bytes")
	for _, r := range rows {
		fmt.Printf("%-10s %-10d %d (6B header + 9 G1 + 16 Fr)\n", r.Task, r.Size, r.ProofBytes)
	}
}

func runConstraints(sys *core.System) {
	header("Constraint report — classic vs lookup/custom-gate lowering (DESIGN.md §15)")
	fmt.Println("lookup lowering: 12-bit range table, one lookup row per limb; hash rounds as custom gates")
	fmt.Printf("%-28s %-10s %-10s %-8s %s\n", "gadget", "classic", "lookup", "ratio", "what changes")
	for _, r := range bench.ConstraintReport() {
		fmt.Printf("%-28s %-10d %-10d %-8s %s\n", r.Gadget, r.Classic, r.Lookup,
			fmt.Sprintf("%.1fx", r.Ratio()), r.Note)
	}

	fmt.Println("\nprove wall time — same logreg π_t statement, classic vs lookup lowering:")
	rows, err := bench.LookupProveCompare(sys, 8)
	if err != nil {
		log.Fatalf("lookup prove compare: %v", err)
	}
	fmt.Printf("%-28s %-10s %-12s %s\n", "task", "variant", "constraints", "prove")
	for _, r := range rows {
		fmt.Printf("%-28s %-10s %-12d %.2fs\n", r.Task, r.Variant, r.Constraints, r.ProveSeconds)
	}
}

func runAblationCipher() {
	header("Ablation — cipher choice in-circuit (§IV-C1)")
	for _, r := range bench.AblationCipher() {
		fmt.Printf("%-42s %8d constraints   %s\n", r.Scheme, r.Constraints, r.Note)
	}
}

func runAblationCommitment() {
	header("Ablation — commitment choice in-circuit (§IV-C2)")
	for _, r := range bench.AblationCommitment() {
		fmt.Printf("%-42s %8d constraints   %s\n", r.Scheme, r.Constraints, r.Note)
	}
}

func runAblationDecouple(sys *core.System) {
	header("Ablation — decoupled π_e/π_t vs monolithic π_f (§IV-B)")
	rows, err := bench.AblationDecouple(sys, 8)
	if err != nil {
		log.Fatalf("decouple: %v", err)
	}
	for _, r := range rows {
		fmt.Printf("%-38s %d proofs   %s total\n", r.Strategy, r.Proofs,
			bench.FormatSeconds(r.TotalSeconds))
	}
	fmt.Println("(structurally, the monolithic strategy re-proves the shared ciphertext's encryption on")
	fmt.Println(" every transformation — 2L encryption sub-proofs for an L-step chain vs the decoupled")
	fmt.Println(" strategy's L+1, each reusable. Wall-clock, our π_t re-hashes commitments in-circuit,")
	fmt.Println(" so it costs ~π_e; the paper's CP-NIZK links commitments natively and its π_t is ~18x")
	fmt.Println(" cheaper than π_e, which is where the paper's halving comes from. See EXPERIMENTS.md.)")
}

func runP2P() {
	header("Network layer — gossip propagation latency vs fanout (7 nodes, SimNet)")
	grows, err := bench.GossipPropagation(7, []int{1, 2, 3, 6}, 10)
	if err != nil {
		log.Fatalf("p2p gossip: %v", err)
	}
	fmt.Printf("%-10s %-10s %-16s %s\n", "fanout", "nodes", "propagation", "msgs/tx")
	for _, r := range grows {
		fmt.Printf("%-10d %-10d %-16s %.1f\n", r.Fanout, r.Nodes, r.Propagation.Round(10*time.Microsecond), r.Messages)
	}
	fmt.Println("(low fanout leans on the periodic pooled-tx rebroadcast to finish coverage;")
	fmt.Println(" full fanout floods in one hop and pays for it in messages)")

	header("Network layer — headers-first sync time vs chain length (fresh node, SimNet)")
	srows, err := bench.ChainSync([]int{8, 32, 128}, 4)
	if err != nil {
		log.Fatalf("p2p sync: %v", err)
	}
	fmt.Printf("%-10s %-14s %-16s %s\n", "blocks", "txs/block", "sync time", "blocks/s")
	for _, r := range srows {
		fmt.Printf("%-10d %-14d %-16s %.1f\n", r.Blocks, r.TxsPerBlock, r.SyncTime.Round(100*time.Microsecond), r.BlocksPerS)
	}
	fmt.Println("(throughput rises with length as the per-cluster start-up cost and the first")
	fmt.Println(" status round-trip amortize across more 64-header batches)")
}

func runExec() {
	header("Execution layer — sealed tx/s, serial vs parallel batch execution")
	fmt.Println("workload: DataNFT transfers between disjoint client pairs (conflict-light);")
	fmt.Println("workers=1 is the retained serial reference; blocks are bit-identical across widths")
	rows, err := bench.ExecSweep([]int{100, 1000, 10000}, []int{1, 2, 4, 8})
	if err != nil {
		log.Fatalf("exec: %v", err)
	}
	serialRate := map[int]float64{}
	for _, r := range rows {
		if r.Workers == 1 {
			serialRate[r.Clients] = r.TxPerSec
		}
	}
	fmt.Printf("%-10s %-10s %-8s %-12s %-10s %-12s %-11s %-10s %s\n",
		"clients", "workers", "txs", "tx/s", "speedup", "speculated", "committed", "conflicts", "serial")
	for _, r := range rows {
		fmt.Printf("%-10d %-10d %-8d %-12.0f %-10s %-12d %-11d %-10d %d\n",
			r.Clients, r.Workers, r.Txs, r.TxPerSec,
			fmt.Sprintf("%.2fx", r.TxPerSec/serialRate[r.Clients]),
			r.Speculated, r.Committed, r.Conflicts, r.Serial)
	}
	fmt.Println("(the parallel engine's gain on this box is algorithmic — per-tx effects apply from")
	fmt.Println(" captured write sets instead of the serial path's full balance snapshot, so the")
	fmt.Println(" advantage grows with the client population; on multi-core hardware the group")
	fmt.Println(" speculation additionally spreads across cores)")
}

func runCT(sys *core.System) {
	header("Confidential exchange — prove/verify/batch-verify per transfer shape")
	fmt.Println("shapes are (spent notes → created notes); mint is (0 → n); sigma is the")
	fmt.Println("pairing-free gossip pre-screen; batch folds 16 range proofs into one")
	fmt.Println("pairing check, the seal-time path (ns/proof flattens as folds amortize)")
	rows, err := bench.CTSweep(sys, [][2]int{{0, 1}, {1, 1}, {1, 2}, {2, 2}, {2, 4}}, 16)
	if err != nil {
		log.Fatalf("ct: %v", err)
	}
	fmt.Printf("%-10s %-12s %-12s %-12s %-16s %-12s %s\n",
		"shape", "prove", "verify", "sigma", "batch(16)/proof", "proof size", "sigma gas")
	for _, r := range rows {
		fmt.Printf("%d→%-8d %-12s %-12s %-12s %-16s %-12s %d\n",
			r.Inputs, r.Outputs,
			bench.FormatSeconds(r.ProveSeconds),
			bench.FormatSeconds(r.VerifySeconds),
			bench.FormatSeconds(r.SigmaSeconds),
			fmt.Sprintf("%.2fms", r.BatchPerProofSecs*1000),
			fmt.Sprintf("%dB", r.ProofBytes),
			r.SigmaGas)
	}
	fmt.Println("(the public token path carries no proof at all — confidentiality costs one")
	fmt.Println(" π_ct per created note plus the sigma relations; amounts never appear on-chain)")
}

func runWAL() {
	dirFor := func() string {
		d, err := os.MkdirTemp("", "zkdet-bench-wal-")
		if err != nil {
			log.Fatalf("wal: %v", err)
		}
		return d
	}
	var dirs []string
	track := func() string { d := dirFor(); dirs = append(dirs, d); return d }
	defer func() {
		for _, d := range dirs {
			os.RemoveAll(d)
		}
	}()

	header("Durability layer — WAL append throughput by sync policy (4 KiB records)")
	fmt.Println("group commit's point: concurrent AppendSync callers share one fsync, so")
	fmt.Println("fsyncs << records while every acknowledged record is still durable")
	arows, err := bench.WALAppendSweep(track, []string{"sync-each", "group-commit", "nosync"}, []int{1, 4, 16}, 2048, 4096)
	if err != nil {
		log.Fatalf("wal append: %v", err)
	}
	fmt.Printf("%-14s %-9s %-10s %-12s %-10s %s\n", "mode", "writers", "records", "rec/s", "MB/s", "fsyncs")
	for _, r := range arows {
		fmt.Printf("%-14s %-9d %-10d %-12.0f %-10.1f %d\n",
			r.Mode, r.Writers, r.Records, r.RecPerSec, r.MBPerSec, r.Syncs)
	}

	header("Durability layer — durable vs in-memory sealed tx/s (acceptance: ≤2x at default group commit)")
	fmt.Printf("%-16s %-10s %-8s %-12s %-12s %-9s %s\n", "mode", "clients", "txs", "tx/s", "slowdown", "fsyncs", "checkpoints")
	for _, clients := range []int{100, 1000} {
		rounds := 4096 / clients
		drows, err := bench.DurableExecCompare(track, clients, 4, rounds)
		if err != nil {
			log.Fatalf("wal durable: %v", err)
		}
		for _, r := range drows {
			fmt.Printf("%-16s %-10d %-8d %-12.0f %-12s %-9d %d\n",
				r.Mode, r.Clients, r.Txs, r.TxPerSec,
				fmt.Sprintf("%.2fx", r.Slowdown), r.Syncs, r.Checkpoints)
		}
	}

	header("Durability layer — crash-recovery time vs chain length (100 clients, 50 tx/block)")
	fmt.Println("WAL-only replays every block through the execution engine; a checkpoint")
	fmt.Println("shifts the prefix into a state-root-verified snapshot restore")
	rrows, err := bench.RecoverySweep(track, []int{16, 64, 256}, 100, 4)
	if err != nil {
		log.Fatalf("wal recovery: %v", err)
	}
	fmt.Printf("%-10s %-12s %-16s %-12s %-14s %s\n", "blocks", "txs/block", "snapshot-height", "wal-blocks", "recovery", "blocks/s replay")
	for _, r := range rrows {
		fmt.Printf("%-10d %-12d %-16d %-12d %-14s %.0f\n",
			r.Blocks, r.TxsPerBlock, r.SnapshotHeight, r.WALBlocks,
			bench.FormatSeconds(r.Seconds), r.BlocksPerSec)
	}
}
