// Command modeltrading demonstrates §IV-E1: computational delegation on the
// data marketplace. Alice owns a labelled dataset; she trains a logistic
// regression model on it and mints the model as a *derived* data asset
// whose NFT carries a zero-knowledge proof that the parameters genuinely
// converged on the committed training data — without revealing that data.
package main

import (
	"fmt"
	"log"

	"github.com/zkdet/zkdet"
	"github.com/zkdet/zkdet/internal/apps/logreg"
)

func main() {
	log.SetFlags(0)

	sys, err := zkdet.NewSystem(1 << 15)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	m, _, err := zkdet.NewMarketplace(sys, 8)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	alice := zkdet.AddressFromString("alice")

	// A small labelled dataset: y = 1 iff the two features are large.
	samples := []logreg.Sample{
		{X: []float64{0.1, 0.2}, Y: 0},
		{X: []float64{0.2, 0.1}, Y: 0},
		{X: []float64{0.3, 0.3}, Y: 0},
		{X: []float64{0.2, 0.4}, Y: 0},
		{X: []float64{0.9, 0.8}, Y: 1},
		{X: []float64{0.8, 0.9}, Y: 1},
		{X: []float64{1.0, 0.7}, Y: 1},
		{X: []float64{0.7, 1.0}, Y: 1},
	}
	data, err := logreg.EncodeSamples(samples)
	if err != nil {
		log.Fatalf("encode: %v", err)
	}
	asset, err := m.MintAsset(alice, "alice", data, zkdet.RandomKey())
	if err != nil {
		log.Fatalf("mint: %v", err)
	}
	fmt.Printf("• training data minted as token #%d (plaintext stays private)\n", asset.TokenID)

	// Train + prove: the Processor's circuit asserts ‖∇J(β)‖∞ ≤ ε over
	// the committed samples, the §IV-E1 convergence predicate.
	trainer := &logreg.Trainer{
		N: len(samples), K: 2,
		Step: 0.5, Lambda: 0.05, MaxIters: 5000, Epsilon: 0.02,
	}
	fmt.Println("• training the model and proving convergence in zero knowledge…")
	result, err := m.Process(alice, "alice", asset, trainer)
	if err != nil {
		log.Fatalf("process: %v", err)
	}
	modelAsset := result.Assets[0]
	fmt.Printf("• model minted as derived token #%d (prevIds → #%d)\n",
		modelAsset.TokenID, asset.TokenID)

	// Any third party verifies the training proof against the public
	// commitments — this is what a model buyer checks before paying.
	if err := m.Sys.VerifyTransform(result.Proof, trainer); err != nil {
		log.Fatalf("training proof rejected: %v", err)
	}
	fmt.Println("• π_t(processing) verified: the committed model converged on the committed data")

	// The model owner can decode and use it.
	model, err := logreg.DecodeModel(modelAsset.Data)
	if err != nil {
		log.Fatalf("decode model: %v", err)
	}
	fmt.Printf("• model: bias=%.3f weights=%.3f,%.3f\n", model.Bias, model.Weights[0], model.Weights[1])
	fmt.Printf("  predict(0.1,0.1)=%.2f  predict(0.9,0.9)=%.2f\n",
		model.Predict([]float64{0.1, 0.1}), model.Predict([]float64{0.9, 0.9}))

	// The model is a first-class asset: trace shows its provenance.
	lineage, err := m.Trace(modelAsset.TokenID)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	fmt.Printf("• provenance of token #%d:\n", modelAsset.TokenID)
	for _, tok := range lineage {
		fmt.Printf("    #%d  %-11s prev=%v\n", tok.ID, tok.Kind, tok.PrevIDs)
	}
}
