// Command ceremony demonstrates the trust story behind ZKDET's universal
// setup: a multi-party Powers-of-Tau ceremony (standing in for the
// Perpetual Powers of Tau the paper uses) where the final SRS is trustworthy
// as long as a single contributor destroyed their secret — and where anyone
// can verify the public contribution chain.
package main

import (
	"fmt"
	"log"

	"github.com/zkdet/zkdet"
	"github.com/zkdet/zkdet/internal/kzg"
)

func main() {
	log.SetFlags(0)

	const size = 1 << 13 // enough SRS powers for the π_k and small π_e circuits
	fmt.Printf("• starting a Powers-of-Tau ceremony for an SRS of %d powers\n", size)
	cer, err := kzg.NewCeremony(size)
	if err != nil {
		log.Fatalf("ceremony: %v", err)
	}

	// Three independent parties contribute entropy in sequence. Each
	// multiplies every power by its own secret and publishes only the
	// update proof ([s]G1, [s]G2, new power-1 element).
	for _, party := range []string{"research-lab", "data-coop", "auditor"} {
		if err := cer.Contribute([]byte(party)); err != nil {
			log.Fatalf("contribute(%s): %v", party, err)
		}
		fmt.Printf("• %s contributed (secret destroyed, update proof published)\n", party)
	}

	// Anyone can verify the full chain: each update's G1/G2 halves agree
	// (pairing check) and each links the previous SRS to the next.
	srs, err := cer.SRS()
	if err != nil {
		log.Fatalf("finalize: %v", err)
	}
	if err := kzg.VerifyChain(cer.Contributions(), srs); err != nil {
		log.Fatalf("public chain verification failed: %v", err)
	}
	fmt.Printf("• contribution chain verified: %d updates, all linked\n", len(cer.Contributions()))

	// The SRS serializes with structural validation: a tampered file can
	// never deserialize into a usable-but-wrong SRS.
	blob := srs.Bytes()
	fmt.Printf("• serialized SRS: %d bytes\n", len(blob))
	restored, err := kzg.SRSFromBytes(blob)
	if err != nil {
		log.Fatalf("deserialize: %v", err)
	}
	blob[200] ^= 0xff
	if _, err := kzg.SRSFromBytes(blob); err == nil {
		log.Fatal("tampered SRS accepted!")
	}
	fmt.Println("• tampered SRS rejected at load time (power-chain pairing check)")

	// And the ceremony output drives the real system.
	sys, err := zkdet.NewSystemFromCeremony(cer)
	if err != nil {
		log.Fatalf("system: %v", err)
	}
	_ = restored
	m, _, err := zkdet.NewMarketplace(sys, 4)
	if err != nil {
		log.Fatalf("marketplace: %v", err)
	}
	alice := zkdet.AddressFromString("alice")
	asset, err := m.MintAsset(alice, "alice", zkdet.EncodeBytes([]byte("hi")), zkdet.RandomKey())
	if err != nil {
		log.Fatalf("mint: %v", err)
	}
	if err := m.Sys.VerifyEncryption(asset.Statement, asset.EncProof); err != nil {
		log.Fatalf("π_e under ceremony SRS: %v", err)
	}
	fmt.Println("• proofs generated and verified under the ceremony's SRS — no trusted party needed")
}
