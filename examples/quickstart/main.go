// Command quickstart is the five-minute ZKDET tour: set up the proof
// system, deploy a marketplace, mint a dataset as an NFT with a proof of
// encryption, and verify everything as a third party would.
package main

import (
	"fmt"
	"log"

	"github.com/zkdet/zkdet"
)

func main() {
	log.SetFlags(0)

	// 1. Universal setup: one SRS for every circuit up to 2^13 gates.
	fmt.Println("• running universal setup (Plonk/KZG over BN254)…")
	sys, err := zkdet.NewSystem(1 << 13)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}

	// 2. Deploy the marketplace: chain + contracts + storage network.
	m, gas, err := zkdet.NewMarketplace(sys, 8)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	fmt.Printf("• contracts deployed — NFT %d gas, verifier %d gas\n", gas.DataNFT, gas.Verifier)

	// 3. Alice packages a dataset, encrypts it, proves the encryption and
	//    mints the NFT. The plaintext never leaves her machine.
	alice := zkdet.AddressFromString("alice")
	raw := []byte("2026-07-01,42.1\n2026-07-02,43.7\n2026-07-03,41.9")
	data := zkdet.EncodeBytes(raw)
	asset, err := m.MintAsset(alice, "alice", data, zkdet.RandomKey())
	if err != nil {
		log.Fatalf("mint: %v", err)
	}
	fmt.Printf("• minted token #%d, ciphertext stored at URI %s…\n", asset.TokenID, asset.URI.String()[:16])

	// 4. Anyone can verify the proof of encryption π_e against the public
	//    statement (ciphertext + commitments) — no plaintext needed.
	if err := m.Sys.VerifyEncryption(asset.Statement, asset.EncProof); err != nil {
		log.Fatalf("π_e rejected: %v", err)
	}
	fmt.Println("• π_e verified: the published ciphertext encrypts the committed dataset")

	// 5. Anyone can fetch the encrypted bytes from the storage network —
	//    and only the key holder can read them.
	ct, err := m.FetchCiphertext(asset.URI)
	if err != nil {
		log.Fatalf("fetch: %v", err)
	}
	plain := ct.Decrypt(asset.Key)
	back, err := zkdet.DecodeBytes(plain)
	if err != nil {
		log.Fatalf("decode: %v", err)
	}
	fmt.Printf("• owner decrypts %d bytes: %q\n", len(back), back[:23])

	// 6. The chain seals a block and its hash links hold.
	m.Chain.SealBlock()
	if err := m.Chain.VerifyIntegrity(); err != nil {
		log.Fatalf("chain integrity: %v", err)
	}
	fmt.Println("• block sealed, chain integrity verified — done")
}
