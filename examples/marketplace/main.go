// Command marketplace runs the paper's full data-exchange story (§IV-F):
// a seller lists an encrypted dataset with a predicate proof, a buyer
// validates it with zero knowledge, payment is locked in the on-chain
// escrow, and the key-secure two-phase protocol settles the trade without
// ever publishing the encryption key.
package main

import (
	"fmt"
	"log"

	"github.com/zkdet/zkdet"
	"github.com/zkdet/zkdet/internal/contracts"
	"github.com/zkdet/zkdet/internal/fr"
)

func main() {
	log.SetFlags(0)

	sys, err := zkdet.NewSystem(1 << 13)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	m, _, err := zkdet.NewMarketplace(sys, 8)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}

	alice := zkdet.AddressFromString("alice") // seller
	bob := zkdet.AddressFromString("bob")     // buyer
	m.Chain.Faucet(alice, 10_000)
	m.Chain.Faucet(bob, 100_000)

	// Alice mints a dataset of sensor readings, all 16-bit values — the
	// predicate she will prove to buyers.
	readings := zkdet.Dataset{
		fr.NewElement(4211), fr.NewElement(4370),
		fr.NewElement(4190), fr.NewElement(4405),
	}
	asset, err := m.MintAsset(alice, "alice", readings, zkdet.RandomKey())
	if err != nil {
		log.Fatalf("mint: %v", err)
	}
	fmt.Printf("• alice minted token #%d (4 readings, encrypted, in public storage)\n", asset.TokenID)

	fmt.Printf("  balances: alice=%d bob=%d\n", m.Chain.BalanceOf(alice), m.Chain.BalanceOf(bob))

	// The whole §IV-F protocol: π_p validation, escrow lock with h_v,
	// π_k settlement, buyer-side decryption.
	pred := zkdet.RangePredicate{Bits: 16}
	fmt.Println("• running the key-secure exchange (π_p validation → escrow lock → π_k settlement)…")
	got, err := m.SellViaEscrow(1, alice, bob, asset, pred, 25_000)
	if err != nil {
		log.Fatalf("exchange: %v", err)
	}
	fmt.Printf("• bob received %d plaintext entries; first reading = %s\n", len(got), got[0].String())
	fmt.Printf("  balances: alice=%d bob=%d\n", m.Chain.BalanceOf(alice), m.Chain.BalanceOf(bob))

	// Ownership moved on-chain.
	tok, err := contracts.ReadToken(m.Chain, asset.TokenID)
	if err != nil {
		log.Fatalf("read token: %v", err)
	}
	fmt.Printf("• token #%d owner is now bob: %v\n", tok.ID, tok.Owner == bob)

	// Key secrecy: the only key-related value on chain is k_c = k + k_v.
	kc, err := contracts.ReadSettledKc(m.Chain, contracts.EscrowName, 1)
	if err != nil {
		log.Fatalf("read kc: %v", err)
	}
	kcEl, err := fr.FromBytesCanonical(kc)
	if err != nil {
		log.Fatalf("decode kc: %v", err)
	}
	ct, err := m.FetchCiphertext(asset.URI)
	if err != nil {
		log.Fatalf("fetch: %v", err)
	}
	eavesdropped := ct.Decrypt(kcEl)
	fmt.Printf("• an eavesdropper decrypting with on-chain k_c gets garbage: %v\n",
		!eavesdropped[0].Equal(&readings[0]))

	// Contrast with the ZKCP baseline, where Open publishes k itself and
	// the same eavesdropper wins (§III-C / Figure 7 motivation).
	fmt.Println("• ZKCP baseline comparison: after its Open phase the key is public —")
	fmt.Println("  see internal/core's TestZKCPFlowAndLeak for the executable demonstration.")
}
