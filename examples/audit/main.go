// Command audit runs the buyer's due diligence on a derived data asset: it
// walks the token's on-chain lineage, fetches every ancestor's ciphertext
// from storage, and verifies every published proof of encryption and
// transformation against the on-chain commitments — then shows the audit
// catching a forged lineage.
package main

import (
	"fmt"
	"log"

	"github.com/zkdet/zkdet"
)

func main() {
	log.SetFlags(0)

	sys, err := zkdet.NewSystem(1 << 13)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	m, _, err := zkdet.NewMarketplace(sys, 8)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	alice := zkdet.AddressFromString("alice")
	reg := zkdet.NewProofRegistry()

	// Alice builds a small data pipeline, publishing proofs as she goes.
	a1, err := m.MintAsset(alice, "alice", zkdet.EncodeBytes([]byte("plant-A telemetry")), zkdet.RandomKey())
	if err != nil {
		log.Fatalf("mint: %v", err)
	}
	reg.PublishAsset(a1)
	a2, err := m.MintAsset(alice, "alice", zkdet.EncodeBytes([]byte("plant-B telemetry")), zkdet.RandomKey())
	if err != nil {
		log.Fatalf("mint: %v", err)
	}
	reg.PublishAsset(a2)

	agg, err := m.Aggregate(alice, "alice", []*zkdet.Asset{a1, a2})
	if err != nil {
		log.Fatalf("aggregate: %v", err)
	}
	reg.PublishTransform(agg, nil)
	dup, err := m.Duplicate(alice, "alice", agg.Assets[0])
	if err != nil {
		log.Fatalf("duplicate: %v", err)
	}
	reg.PublishTransform(dup, nil)
	target := dup.Assets[0]
	fmt.Printf("• pipeline built: #%d, #%d → aggregate #%d → replica #%d\n",
		a1.TokenID, a2.TokenID, agg.Assets[0].TokenID, target.TokenID)

	// The buyer audits the replica before trusting it.
	report, err := m.AuditLineage(reg, target.TokenID)
	if err != nil {
		log.Fatalf("audit: %v", err)
	}
	fmt.Printf("• audit PASSED: %d tokens walked, %d π_e verified, %d π_t verified\n",
		len(report.Tokens), report.EncryptionProofs, report.TransformProofs)

	// Now a forgery: republish the replica's proofs with a π_t derived from
	// unrelated data. The audit must refuse.
	other := zkdet.EncodeBytes([]byte("unrelated data"))
	co, oo := other.Commit()
	forged, _, err := m.Sys.ProveDuplication(other, co, oo)
	if err != nil {
		log.Fatalf("forge: %v", err)
	}
	reg.Publish(target.TokenID, &zkdet.TokenProofs{
		Encryption:      target.Statement,
		EncryptionProof: target.EncProof,
		Transform:       forged,
	})
	if _, err := m.AuditLineage(reg, target.TokenID); err != nil {
		fmt.Printf("• forged lineage REJECTED: %v\n", err)
	} else {
		log.Fatal("audit accepted a forged lineage!")
	}
}
