// Command provenance reproduces Figure 2: a web of aggregations,
// partitions and duplications whose every step is recorded in prevIds[]
// and proven with π_t, then traced back to its sources on-chain.
package main

import (
	"fmt"
	"log"
	"sort"

	"github.com/zkdet/zkdet"
	"github.com/zkdet/zkdet/internal/chain"
	"github.com/zkdet/zkdet/internal/contracts"
)

func main() {
	log.SetFlags(0)

	sys, err := zkdet.NewSystem(1 << 13)
	if err != nil {
		log.Fatalf("setup: %v", err)
	}
	m, _, err := zkdet.NewMarketplace(sys, 8)
	if err != nil {
		log.Fatalf("deploy: %v", err)
	}
	alice := zkdet.AddressFromString("alice")

	// Two source datasets.
	d1 := zkdet.EncodeBytes([]byte("region-north"))
	d2 := zkdet.EncodeBytes([]byte("region-south"))
	a1, err := m.MintAsset(alice, "alice", d1, zkdet.RandomKey())
	if err != nil {
		log.Fatalf("mint 1: %v", err)
	}
	a2, err := m.MintAsset(alice, "alice", d2, zkdet.RandomKey())
	if err != nil {
		log.Fatalf("mint 2: %v", err)
	}
	fmt.Printf("• sources: #%d, #%d\n", a1.TokenID, a2.TokenID)

	// Aggregate → partition → duplicate, proving each step.
	agg, err := m.Aggregate(alice, "alice", []*zkdet.Asset{a1, a2})
	if err != nil {
		log.Fatalf("aggregate: %v", err)
	}
	fmt.Printf("• aggregation: #%d + #%d → #%d (π_t verified: %v)\n",
		a1.TokenID, a2.TokenID, agg.Assets[0].TokenID,
		m.Sys.VerifyTransform(agg.Proof, nil) == nil)

	n := len(agg.Assets[0].Data)
	part, err := m.Partition(alice, "alice", agg.Assets[0], []int{n / 2, n - n/2})
	if err != nil {
		log.Fatalf("partition: %v", err)
	}
	fmt.Printf("• partition: #%d → #%d, #%d (π_t verified: %v)\n",
		agg.Assets[0].TokenID, part.Assets[0].TokenID, part.Assets[1].TokenID,
		m.Sys.VerifyTransform(part.Proof, nil) == nil)

	dup, err := m.Duplicate(alice, "alice", part.Assets[0])
	if err != nil {
		log.Fatalf("duplicate: %v", err)
	}
	fmt.Printf("• duplication: #%d → #%d (π_t verified: %v)\n",
		part.Assets[0].TokenID, dup.Assets[0].TokenID,
		m.Sys.VerifyTransform(dup.Proof, nil) == nil)

	// Provenance query: trace the replica to the two original sources.
	lineage, err := m.Trace(dup.Assets[0].TokenID)
	if err != nil {
		log.Fatalf("trace: %v", err)
	}
	sort.Slice(lineage, func(i, j int) bool { return lineage[i].ID < lineage[j].ID })
	fmt.Printf("• lineage of #%d:\n", dup.Assets[0].TokenID)
	for _, tok := range lineage {
		fmt.Printf("    #%d  %-11s prev=%v uri=%x…\n", tok.ID, tok.Kind, tok.PrevIDs, tok.URI[:6])
	}

	// The chained proofs validate end-to-end: aggregation feeds partition.
	proofChain := zkdet.ProofChain{agg.Proof, part.Proof}
	if err := m.Sys.VerifyChain(proofChain, nil); err != nil {
		log.Fatalf("proof chain: %v", err)
	}
	fmt.Println("• proof chain (aggregation → partition) verified: continuous validation from sources")

	// Burned tokens stay traceable.
	if _, err := m.Chain.Submit(chain.Transaction{
		From:     alice,
		Contract: contracts.DataNFTName,
		Method:   "burn",
		Args:     contracts.EncodeArgs(contracts.U64(a1.TokenID)),
		Nonce:    m.Chain.NonceOf(alice),
	}); err != nil {
		log.Fatalf("burn: %v", err)
	}
	lineage2, err := m.Trace(dup.Assets[0].TokenID)
	if err != nil {
		log.Fatalf("trace after burn: %v", err)
	}
	for _, tok := range lineage2 {
		if tok.ID == a1.TokenID && tok.Burned {
			fmt.Printf("• source #%d burned, still present in lineage — history is immutable\n", tok.ID)
		}
	}
}
