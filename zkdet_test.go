package zkdet

import (
	"bytes"
	"sync"
	"testing"

	"github.com/zkdet/zkdet/internal/core"
	"github.com/zkdet/zkdet/internal/kzg"
)

// The public-API smoke test: everything a downstream user touches in the
// README quickstart must work through the exported surface alone.

var apiSys = sync.OnceValue(func() *System {
	// Deterministic system for speed; NewSystem (random SRS) is covered by
	// TestNewSystemRandom.
	s, err := core.NewTestSystem(1 << 13)
	if err != nil {
		panic(err)
	}
	return s
})

func TestNewSystemRandom(t *testing.T) {
	sys, err := NewSystem(64)
	if err != nil {
		t.Fatal(err)
	}
	if sys.SRS().MaxDegree() < 64 {
		t.Fatal("SRS too small")
	}
}

func TestNewSystemFromCeremony(t *testing.T) {
	cer, err := kzg.NewCeremony(32)
	if err != nil {
		t.Fatal(err)
	}
	if err := cer.Contribute([]byte("party-1")); err != nil {
		t.Fatal(err)
	}
	if err := cer.Contribute([]byte("party-2")); err != nil {
		t.Fatal(err)
	}
	sys, err := NewSystemFromCeremony(cer)
	if err != nil {
		t.Fatal(err)
	}
	if sys == nil {
		t.Fatal("nil system")
	}
	// A ceremony with no contributions must fail.
	empty, err := kzg.NewCeremony(32)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := NewSystemFromCeremony(empty); err == nil {
		t.Fatal("empty ceremony accepted")
	}
}

func TestPublicAPIEndToEnd(t *testing.T) {
	if testing.Short() {
		t.Skip("end-to-end skipped in -short mode")
	}
	sys := apiSys()
	m, gas, err := NewMarketplace(sys, 4)
	if err != nil {
		t.Fatal(err)
	}
	if gas.DataNFT == 0 || gas.Verifier == 0 {
		t.Fatal("no deployment gas recorded")
	}

	alice := AddressFromString("alice")
	bob := AddressFromString("bob")
	m.Chain.Faucet(bob, 100_000)

	raw := []byte("readings: 3 5 8 13 21")
	data := EncodeBytes(raw)
	asset, err := m.MintAsset(alice, "alice", data, RandomKey())
	if err != nil {
		t.Fatal(err)
	}

	// Sell it through the escrow; bob ends up with the exact bytes.
	got, err := m.SellViaEscrow(1, alice, bob, asset, TruePredicate{}, 1234)
	if err != nil {
		t.Fatal(err)
	}
	back, err := DecodeBytes(got)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(back, raw) {
		t.Fatalf("buyer decoded %q", back)
	}
}

func TestScalarHelpers(t *testing.T) {
	a := NewScalar(7)
	b := NewScalar(7)
	if !a.Equal(&b) {
		t.Fatal("NewScalar not deterministic")
	}
	k1, k2 := RandomKey(), RandomKey()
	if k1.Equal(&k2) {
		t.Fatal("random keys repeat")
	}
}

func TestEncodeDecodeBytesAPI(t *testing.T) {
	in := []byte("api round trip")
	out, err := DecodeBytes(EncodeBytes(in))
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(in, out) {
		t.Fatal("byte round trip failed")
	}
}
